"""What-if study: the same training plan across GPU generations.

One of vTrain's selling points over fixed analytical models (Table V
discussion) is that its profiling pipeline is device-agnostic: point the
device model at different hardware and every downstream number — kernel
times, collective latencies, iteration time, cost — follows. This
example re-prices a 39.1B-parameter training run on V100, A100 and H100
class systems.

Run:
    python examples/hardware_whatif.py
"""

from repro import Granularity, ParallelismConfig, TrainingConfig, VTrain
from repro.config.presets import MEGATRON_39_1B
from repro.config.system import multi_node
from repro.cost.pricing import PricingModel
from repro.hardware.gpu import A100_80GB, H100_80GB, V100_32GB

#: Rough on-demand $/GPU-hour by generation (A100 = the paper's $5).
PRICES = {V100_32GB.name: 3.06, A100_80GB.name: 5.00, H100_80GB.name: 12.29}

PLAN = ParallelismConfig(tensor=8, data=32, pipeline=2, micro_batch_size=4)
TRAINING = TrainingConfig(global_batch_size=1536,
                          total_tokens=780_000_000_000)  # ~20 x params


def main() -> None:
    print(f"Workload: {MEGATRON_39_1B.describe()}")
    print(f"Plan:     {PLAN.describe()} on {PLAN.total_gpus} GPUs, "
          f"{TRAINING.total_tokens / 1e9:.0f}B tokens\n")
    header = (f"{'GPU':<16} {'iter (s)':>9} {'util %':>7} {'days':>7} "
              f"{'$/hr':>8} {'total $M':>9}")
    print(header)
    print("-" * len(header))
    rows = {}
    for gpu in (V100_32GB, A100_80GB, H100_80GB):
        system = multi_node(PLAN.total_gpus // 8, gpu=gpu)
        vtrain = VTrain(system, granularity=Granularity.STAGE,
                        check_memory_feasibility=False)
        estimate = vtrain.estimate_training(
            MEGATRON_39_1B, PLAN, TRAINING,
            pricing=PricingModel(PRICES[gpu.name]))
        rows[gpu.name] = estimate
        print(f"{gpu.name:<16} {estimate.iteration_time:>9.2f} "
              f"{100 * estimate.gpu_compute_utilization:>7.1f} "
              f"{estimate.total_days:>7.1f} "
              f"{estimate.dollars_per_hour:>8,.0f} "
              f"{estimate.dollars_total / 1e6:>9.2f}")

    a100 = rows[A100_80GB.name]
    h100 = rows[H100_80GB.name]
    speedup = a100.iteration_time / h100.iteration_time
    print(f"\nH100 runs {speedup:.1f}x faster per iteration; whether it is "
          "cheaper end-to-end depends on the rate you pay for it — "
          "exactly the time-vs-cost trade-off the paper's case study #1 "
          "navigates. Note the utilization drop on H100: the same model "
          "shards feed proportionally wider tensor cores, so comm and "
          "memory-bound kernels claim a bigger share (the profiling "
          "pipeline captures this without any refitting).")


if __name__ == "__main__":
    main()
