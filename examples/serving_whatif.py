"""What-if study: tensor parallelism vs replicas for GPT-3 serving.

The same 16 A100s can serve GPT-3 as one 16-way tensor-parallel engine,
two 8-way replicas, or four 4-way replicas — the classic vLLM
deployment question. This example predicts each layout's serving
metrics from the prefill/decode phase graphs (TTFT, TPOT, aggregate
tokens/s, cost per million output tokens), prints the trade-off table,
and exports the middle layout's prefill and decode timelines as Chrome
traces (phase names ride as event categories — open them in
https://ui.perfetto.dev).

Run:
    python examples/serving_whatif.py [trace-prefix]
"""

import sys

from repro import Granularity, ParallelismConfig, VTrain, multi_node
from repro.config.presets import GPT3_175B
from repro.cost.pricing import DEFAULT_PRICING
from repro.obs.export import combined_trace, write_trace
from repro.workload import InferenceWorkload

NUM_GPUS = 16
WORKLOAD = InferenceWorkload(batch_size=16, prompt_len=512, gen_len=128,
                             continuous_batching=True)

#: Three ways to spend 16 GPUs: latency-first, pipelined, and
#: throughput-first. (A 4-way-TP 4-replica split would be cheaper still
#: per replica, but 174.6B FP16 weights over 4 GPUs need ~87 GiB each —
#: the KV-cache memory model rejects it, so it is not a layout at all.)
LAYOUTS = [
    ParallelismConfig(tensor=16, data=1, pipeline=1, micro_batch_size=16),
    ParallelismConfig(tensor=8, data=1, pipeline=2, micro_batch_size=16),
    ParallelismConfig(tensor=8, data=2, pipeline=1, micro_batch_size=16),
]

DEFAULT_PREFIX = "gpt3_serving"


def main() -> None:
    prefix = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_PREFIX
    system = multi_node(num_nodes=NUM_GPUS // 8)
    vtrain = VTrain(system, granularity=Granularity.STAGE)

    print(f"Workload: {GPT3_175B.describe()}")
    print(f"          batch={WORKLOAD.batch_size}/replica "
          f"prompt={WORKLOAD.prompt_len} gen={WORKLOAD.gen_len} "
          f"(continuous batching)\n")
    header = (f"{'layout':<18} {'TTFT (ms)':>10} {'TPOT (ms)':>10} "
              f"{'tok/s':>8} {'$/Mtok':>8}")
    print(header)
    print("-" * len(header))
    predictions = {}
    for plan in LAYOUTS:
        prediction = vtrain.predict_inference(GPT3_175B, plan, WORKLOAD)
        predictions[plan.way] = prediction
        rate = DEFAULT_PRICING.dollars_per_hour(prediction.num_gpus)
        layout = (f"t={plan.tensor} p={plan.pipeline} "
                  f"x{plan.data} repl")
        print(f"{layout:<18} {1e3 * prediction.time_to_first_token:>10.1f} "
              f"{1e3 * prediction.time_per_output_token:>10.2f} "
              f"{prediction.tokens_per_second:>8.0f} "
              f"{prediction.cost_per_million_tokens(rate):>8.2f}")

    latency_first = predictions[(16, 1, 1)]
    throughput_first = predictions[(8, 2, 1)]
    tpot_gain = (throughput_first.time_per_output_token
                 / latency_first.time_per_output_token)
    tput_gain = (throughput_first.tokens_per_second
                 / latency_first.tokens_per_second)
    print(f"\nFull tensor parallelism answers each token {tpot_gain:.1f}x "
          f"sooner; splitting into replicas serves {tput_gain:.1f}x more "
          "tokens per second from the same hardware. Neither layout "
          "dominates — which wins depends on whether the SLO bounds "
          "latency or cost, exactly the trade-off `repro dse --workload "
          "inference` sweeps.")

    # Export the balanced layout's two phase timelines. The compute
    # tasks' kinds are the phase names, so the traces arrive in
    # Perfetto pre-categorised as `prefill` / `decode`.
    balanced = vtrain.predict_inference(GPT3_175B, LAYOUTS[1], WORKLOAD,
                                        record_timeline=True)
    for phase, simulation in (("prefill", balanced.prefill_simulation),
                              ("decode", balanced.decode_simulation)):
        payload = combined_trace(
            simulation,
            metadata={"model": GPT3_175B.describe(),
                      "plan": LAYOUTS[1].describe(),
                      "workload": "inference", "phase": phase})
        path = write_trace(f"{prefix}_{phase}_trace.json", payload)
        print(f"{phase} trace: {len(payload['traceEvents']):,} events "
              f"-> {path}")


if __name__ == "__main__":
    main()
