"""Serving tier in action: N concurrent clients against one daemon.

Starts a `repro serve` daemon in-process, then drives it from several
concurrent client threads the way a hyperparameter service or a
cluster scheduler would: a burst of *identical* requests (showing
in-flight dedup collapse them onto one simulation), a spread of
*distinct* plans (micro-batched into vectorized sweeps), and a repeat
wave (answered from the shared prediction cache). Finishes with the
daemon's own stats: req/s, latency quantiles, and hit rates.

Run:
    python examples/serve_clients.py
"""

import threading
import time

from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.serve import PredictionService, ServeClient, ServeDaemon

NUM_CLIENTS = 6


def build_requests() -> list[dict]:
    """Distinct feasible plans for a small model on one 8-GPU node."""
    model = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                        num_heads=8, vocab_size=32_000, name="tiny")
    system = single_node()
    training = TrainingConfig(global_batch_size=16)
    plans = [(2, 2, 2, 2), (1, 4, 2, 1), (4, 2, 1, 2),
             (2, 4, 1, 1), (1, 2, 4, 2), (8, 1, 1, 1)]
    return [InputDescription(
        model=model, system=system,
        plan=ParallelismConfig(tensor=t, data=d, pipeline=p,
                               micro_batch_size=m),
        training=training).to_dict()
        for t, d, p, m in plans]


def run_wave(label: str, address: tuple, per_client) -> None:
    """One wave: every client thread opens its own connection and runs
    ``per_client(client, index)`` simultaneously."""
    host, port = address
    barrier = threading.Barrier(NUM_CLIENTS)
    outputs: list = [None] * NUM_CLIENTS

    def worker(slot: int) -> None:
        with ServeClient.connect(host, port, timeout=10.0) as client:
            barrier.wait()
            outputs[slot] = per_client(client, slot)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(NUM_CLIENTS)]
    tick = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - tick
    times = sorted({f"{out['iteration_time'] * 1e3:.4f} ms"
                    for out in outputs if out})
    print(f"  {label}: {NUM_CLIENTS} clients in {elapsed * 1e3:.1f} ms; "
          f"distinct answers: {times}")


def main() -> None:
    service = PredictionService()
    daemon = ServeDaemon(service, port=0)
    daemon.start()
    address = daemon.address
    print(f"Daemon listening on {address[0]}:{address[1]}")
    requests = build_requests()

    try:
        print("\nWave 1 — identical concurrent predicts (in-flight dedup):")
        run_wave("identical burst", address,
                 lambda client, slot: client.predict(
                     description=requests[0], granularity="stage"))
        simulations = sum(v.num_predictions
                          for v in service._vtrains.values())
        print(f"  simulations actually run: {simulations} "
              f"(the other {NUM_CLIENTS - 1} coalesced)")

        print("\nWave 2 — distinct plans (micro-batched replay):")
        run_wave("distinct plans", address,
                 lambda client, slot: client.predict(
                     description=requests[slot % len(requests)],
                     granularity="stage"))

        print("\nWave 3 — everything again (prediction-cache serves):")
        run_wave("repeat wave", address,
                 lambda client, slot: client.predict(
                     description=requests[slot % len(requests)],
                     granularity="stage"))

        with ServeClient.connect(*address, timeout=10.0) as client:
            stats = client.stats()
        requests_stats = stats["requests"]
        dedup = stats["dedup"]
        batch = stats["batch"]
        latency = stats["latency"]["predict_s"]
        print("\nDaemon stats:")
        print(f"  requests        : {requests_stats['total']} "
              f"({requests_stats['per_second']:.0f} req/s lifetime)")
        print(f"  predict latency : p50 {latency['p50'] * 1e3:.2f} ms, "
              f"p99 {latency['p99'] * 1e3:.2f} ms")
        print(f"  dedup           : {dedup['leaders']} computed, "
              f"{dedup['coalesced']} coalesced, "
              f"{dedup['cache_served']} cache-served")
        print(f"  batching        : {batch['jobs']} jobs in "
              f"{batch['flushes']} flushes")
        print(f"  structure cache : "
              f"{stats['structure_cache']['entries']} entries, "
              f"{stats['structure_cache']['hits']} hits")
    finally:
        daemon.stop()
        service.close()
    print("\nOne resident process, many callers: the warm caches and the "
          "dedup/batching admission path are what a scheduler or notebook "
          "fleet shares through `repro serve`.")


if __name__ == "__main__":
    main()
