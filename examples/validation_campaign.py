"""Reproduce the Figure 9 validation study (predicted vs measured).

Runs a slice of the single-node campaign (the paper's 1,440-point p4d
study) and of the multi-node campaign (116 points, up to 512 GPUs)
against the testbed emulator, then prints the paper's two accuracy
metrics — MAPE and R^2 — plus a small sample of the scatter.

Run:
    python examples/validation_campaign.py            # quick slice
    python examples/validation_campaign.py --full     # all points
"""

import sys

from repro.validation import (multi_node_points, run_campaign,
                              single_node_points)


def main() -> None:
    full = "--full" in sys.argv
    single_stride = 1 if full else 8
    multi_stride = 1 if full else 4

    print("Single-node campaign (Figure 9a)...")
    points = single_node_points()[::single_stride]
    result = run_campaign(points)
    print(f"  {result.accuracy.describe()}")
    print("  paper: 1,440 points, MAPE 8.37 %, R^2 = 0.9896\n")

    print("Sample of (measured, predicted) seconds:")
    for measured, predicted in result.scatter()[:6]:
        print(f"  measured {measured:7.4f}  predicted {predicted:7.4f}  "
              f"({100 * (predicted / measured - 1):+.1f} %)")

    print("\nMulti-node campaign (Figure 9b)...")
    points = multi_node_points()[::multi_stride]
    result = run_campaign(points)
    print(f"  {result.accuracy.describe()}")
    print("  paper: 116 points, MAPE 14.73 %, R^2 = 0.9887")
    print("\nBoth campaigns underestimate (negative bias): vTrain profiles "
          "NCCL in isolation, while collectives run ~30 % slower during "
          "real training — the paper's main acknowledged error source.")


if __name__ == "__main__":
    main()
