"""What-if study: the MT-NLG training plan across cluster fabrics.

The paper models the inter-node network as one flat ``alpha * Bmax``
pipe, so it can ask "what if the links were slower" but not "what if the
*fabric* were shaped differently". The ``repro.network`` subsystem can:
it routes every collective over an explicit topology graph and charges
per-link contention. This example re-runs the MT-NLG 530B baseline plan
(t=8, p=35, d=8 — 2,240 GPUs) on a rail-optimized SuperPOD-style fabric
and on 2-level fat trees with increasing uplink oversubscription, and
shows where the data-parallel All-Reduce lands on each.

Run:
    python examples/topology_whatif.py
"""

from repro import Granularity, VTrain, multi_node
from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING)
from repro.hardware.interconnect import LinkType
from repro.network.model import TopologyAwareNcclModel

MIB = float(1 << 20)
PLAN = MT_NLG_BASELINE_PLANS[0]  # t=8, d=8, p=35
NETWORKS = ("flat", "rail", "fat-tree", "fat-tree:4", "fat-tree:8")
PROBE_BYTES = 256 * MIB  # a gradient-bucket-sized All-Reduce


def main() -> None:
    nodes = PLAN.total_gpus // 8
    print(f"Workload: {MT_NLG_530B.describe()}")
    print(f"Plan:     {PLAN.describe()} on {PLAN.total_gpus} GPUs "
          f"({nodes} nodes)\n")
    header = (f"{'network':<12} {'iter (s)':>9} {'vs flat':>8} "
              f"{'DP-AR 256MiB (ms)':>18}  algorithm")
    print(header)
    print("-" * len(header))
    baseline = None
    for network in NETWORKS:
        system = multi_node(nodes, network=network)
        vtrain = VTrain(system, granularity=Granularity.STAGE,
                        check_memory_feasibility=False)
        prediction = vtrain.predict(MT_NLG_530B, PLAN, MT_NLG_TRAINING)
        if network == "flat":
            probe = vtrain.nccl.allreduce_time(PROBE_BYTES, PLAN.data,
                                               LinkType.INTER_NODE)
            algorithm = "flat ring (Eq. 1)"
        else:
            assert isinstance(vtrain.nccl, TopologyAwareNcclModel)
            info = vtrain.nccl.explain(PROBE_BYTES, PLAN.data)
            probe, algorithm = info["time"], info["algorithm"]
        if baseline is None:
            baseline = prediction.iteration_time
        delta = 100 * (prediction.iteration_time / baseline - 1)
        print(f"{network:<12} {prediction.iteration_time:>9.4f} "
              f"{delta:>+7.3f}% "
              f"{1e3 * probe:>18.2f}  {algorithm}")

    print("\nThe flat pipe and the rail-optimized fabric agree closely — "
          "rails keep every HCA on its own non-blocking switch, which is "
          "exactly the assumption Equation 1 bakes in. Oversubscribing "
          "the fat-tree uplinks starves the inter-node rings, and the "
          "topology model surfaces the slowdown the flat model cannot "
          "see (plus the switch-hop latency every real fabric pays).")


if __name__ == "__main__":
    main()
