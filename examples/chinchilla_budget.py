"""Case study #3: compute-optimal LLM sizing under a real budget.

"What is the best LLM one can develop within 30 days using 3,360 A100
GPUs?" — Section V-C. First the naive Chinchilla answer (assumes 100 %
GPU utility), then vTrain's realistic answer, which accounts for the
utilization the best 3D-parallel plan actually achieves (Table IV).

Run:
    python examples/chinchilla_budget.py
"""

from repro.config.system import multi_node
from repro.hardware.gpu import A100_80GB
from repro.scaling.chinchilla import (compute_budget_flops,
                                      compute_optimal_search,
                                      naive_chinchilla_point)

NUM_GPUS = 3360
BUDGET_DAYS = 30.0


def main() -> None:
    budget = compute_budget_flops(NUM_GPUS, BUDGET_DAYS,
                                  A100_80GB.peak_fp16_flops)
    naive_params, naive_tokens = naive_chinchilla_point(budget)
    print(f"Compute budget: {NUM_GPUS} A100s x {BUDGET_DAYS:.0f} days "
          f"= {budget:.2e} FLOPs (at 100 % utility)")
    print(f"Naive Chinchilla point: {naive_params / 1e9:.1f}B parameters, "
          f"{naive_tokens / 1e9:.0f}B tokens")
    print("(paper: 145.61B parameters / 2,912B tokens)\n")

    print("Evaluating candidate architectures with vTrain "
          "(best (t, d, p) plan per candidate)...")
    system = multi_node(NUM_GPUS // 8)
    rows, best = compute_optimal_search(NUM_GPUS, BUDGET_DAYS, system)

    header = (f"{'h':>6} {'L':>4} {'params(B)':>10} {'tokens(B)':>10} "
              f"{'opt (t,d,p)':>14} {'util %':>7} {'days':>6}")
    print("\n" + header)
    print("-" * len(header))
    for row in rows:
        mark = " <- fits budget" if row.training_days <= BUDGET_DAYS else ""
        print(f"{row.model.hidden_size:>6} {row.model.num_layers:>4} "
              f"{row.parameters_billion:>10.2f} {row.tokens_billion:>10.0f} "
              f"{str(row.plan.way):>14} {100 * row.utilization:>7.1f} "
              f"{row.training_days:>6.1f}{mark}")

    naive_row = rows[0]
    print(f"\nThe naive {naive_row.parameters_billion:.1f}B point would "
          f"actually take {naive_row.training_days:.0f} days — "
          f"{naive_row.training_days / BUDGET_DAYS:.1f}x the budget "
          "(paper: 85 days, ~3x).")
    if best is not None:
        shrink = 100 * (1 - best.parameters_billion
                        / naive_row.parameters_billion)
        print(f"Realistic compute-optimal model: "
              f"{best.parameters_billion:.1f}B parameters trained on "
              f"{best.tokens_billion:.0f}B tokens in "
              f"{best.training_days:.1f} days — a {shrink:.0f}% smaller "
              "model than naively estimated (paper: 76.04B, 48% smaller).")


if __name__ == "__main__":
    main()
