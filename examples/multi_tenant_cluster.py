"""Case study #2: vTrain-enabled multi-tenant GPU cluster scheduling.

Replays one synthetic workload trace (Table III models, ITP-style
arrivals) on a 1,024-GPU cluster twice: once with the baseline
ElasticFlow scheduler (throughput profiles restricted to data-parallel
scaling) and once with vTrain-optimal profiles — the Section V-B
experiment on a single trace.

Run:
    python examples/multi_tenant_cluster.py
"""

from repro.cluster import (ClusterSimulator, ElasticFlowScheduler,
                           average_jct, completed_fraction,
                           deadline_satisfactory_ratio,
                           elasticflow_throughput_profile, synthesize_trace,
                           vtrain_throughput_profile)
from repro.config.presets import TABLE_III_MODELS

TOTAL_GPUS = 1024
NUM_JOBS = 64
TRACE_ID = 1


def main() -> None:
    print("Building throughput profiles for the Table III models...")
    elasticflow_profiles = {}
    vtrain_profiles = {}
    for spec in TABLE_III_MODELS:
        elasticflow_profiles[spec.model.name] = \
            elasticflow_throughput_profile(spec)
        vtrain_profiles[spec.model.name] = vtrain_throughput_profile(spec)
        ef = elasticflow_profiles[spec.model.name]
        vt = vtrain_profiles[spec.model.name]
        gain = vt.rate(ef.min_gpus) / ef.rate(ef.min_gpus)
        print(f"  {spec.model.name}: min alloc {ef.min_gpus} GPUs, "
              f"vTrain plan {100 * (gain - 1):.0f} % faster at that size")

    jobs = synthesize_trace(TRACE_ID, NUM_JOBS, elasticflow_profiles)
    print(f"\nTrace {TRACE_ID}: {NUM_JOBS} jobs over "
          f"{jobs[-1].arrival_time / 3600:.0f} hours, deadlines at "
          "lambda x duration (lambda ~ U[0.5, 1.5])")

    print(f"\n{'system':<14} {'deadline ratio':>15} {'completed':>10} "
          f"{'avg JCT (h)':>12} {'cluster util':>13}")
    for label, profiles in (("ElasticFlow", elasticflow_profiles),
                            ("vTrain", vtrain_profiles)):
        scheduler = ElasticFlowScheduler(profiles, TOTAL_GPUS)
        result = ClusterSimulator(scheduler).run(jobs)
        jct_hours = (average_jct(result) / 3600
                     if completed_fraction(result) > 0 else float("nan"))
        print(f"{label:<14} {deadline_satisfactory_ratio(result):>15.3f} "
              f"{completed_fraction(result):>10.3f} {jct_hours:>12.1f} "
              f"{result.cluster_utilization():>13.2f}")

    print("\nThe vTrain-enabled system schedules with knowledge of the "
          "optimal (t, d, p, m) plan at every allocation size, so it "
          "satisfies at least as many deadlines as the DP-only baseline "
          "(paper: 1.09x / 1.23x average improvement at 64 / 128 jobs).")


if __name__ == "__main__":
    main()
