"""Export one simulated MT-NLG training iteration as a Chrome trace.

Runs the paper's flagship scenario — MT-NLG 530B under its published
(8, 8, 35)-way plan — with observability enabled, then writes a single
Chrome Trace Event Format file holding two timelines side by side:

* the *simulated cluster*: one process per pipeline stage (pid 1000+),
  one thread per stream, every compute/communication task as a span;
* the *engine itself*: where the prediction's wall time went
  (builder init, structure build or duration fill, replay).

Open the file in https://ui.perfetto.dev or chrome://tracing.

Run:
    python examples/trace_iteration.py [out.json]
"""

import sys

from repro import Granularity, ParallelismConfig, VTrain, multi_node, obs
from repro.config.presets import MT_NLG_530B, MT_NLG_TRAINING
from repro.obs.export import combined_trace, write_trace

DEFAULT_OUTPUT = "mtnlg_iteration_trace.json"


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_OUTPUT
    obs.enable()

    # Stage granularity keeps the timeline readable (one span per
    # pipeline-stage task rather than per operator) and the file small.
    plan = ParallelismConfig(tensor=8, data=8, pipeline=35)
    system = multi_node(num_nodes=plan.total_gpus // 8)
    vtrain = VTrain(system, granularity=Granularity.STAGE)
    prediction = vtrain.predict(MT_NLG_530B, plan, MT_NLG_TRAINING,
                                record_timeline=True)
    print(f"Predicted iteration time : {prediction.iteration_time:.2f} s")

    payload = combined_trace(
        prediction.simulation,
        engine_events=obs.tracer.chrome_trace(),
        metadata={"model": MT_NLG_530B.describe(),
                  "plan": plan.describe(),
                  "granularity": Granularity.STAGE.value})
    path = write_trace(output, payload)
    events = payload["traceEvents"]
    devices = len({e["pid"] for e in events if e["pid"] >= 1000})
    print(f"Trace file               : {path}")
    print(f"Events exported          : {len(events):,} "
          f"({devices} simulated devices + engine spans)")
    print("Open in https://ui.perfetto.dev or chrome://tracing.")

    print("\nWhere the engine's wall time went:")
    for span in sorted(obs.tracer.spans, key=lambda s: s.start_s):
        if span.depth <= 1:
            indent = "  " * (span.depth + 1)
            print(f"{indent}{span.name:<16} {span.duration_s * 1e3:9.2f} ms")


if __name__ == "__main__":
    main()
