"""Quickstart: predict the training time and cost of one LLM plan.

Builds the paper's flagship scenario — MT-NLG 530B under its published
(8, 8, 35)-way 3D-parallel plan on 2,240 A100 GPUs — and walks through
everything vTrain reports for it: single-iteration time, GPU compute
utilization, per-GPU memory, end-to-end days, and dollars.

Run:
    python examples/quickstart.py
"""

from repro import (Granularity, InputDescription, ParallelismConfig, VTrain,
                   multi_node)
from repro.config.presets import MT_NLG_530B, MT_NLG_TRAINING

GIB = float(1 << 30)


def main() -> None:
    # 1. Describe the experiment (the paper's "input description file").
    plan = ParallelismConfig(tensor=8, data=8, pipeline=35)
    system = multi_node(num_nodes=plan.total_gpus // 8)
    description = InputDescription(model=MT_NLG_530B, system=system,
                                   plan=plan, training=MT_NLG_TRAINING)
    description.validate()
    print("Model: ", MT_NLG_530B.describe())
    print("System:", system.describe())
    print("Plan:  ", plan.describe())
    print()

    # 2. Predict one training iteration.
    vtrain = VTrain(system, granularity=Granularity.OPERATOR)
    prediction = vtrain.predict(MT_NLG_530B, plan, MT_NLG_TRAINING)
    print(f"Predicted iteration time : {prediction.iteration_time:.2f} s")
    print(f"GPU compute utilization  : "
          f"{100 * prediction.gpu_compute_utilization:.2f} %")
    print(f"Achieved per-GPU FLOPS   : "
          f"{prediction.achieved_flops_per_gpu / 1e12:.1f} TFLOP/s")
    print(f"Peak memory per GPU      : "
          f"{prediction.memory_per_gpu / GIB:.1f} GiB")
    print()

    # 3. Extrapolate to the full 270B-token run and price it.
    estimate = vtrain.estimate_training(MT_NLG_530B, plan, MT_NLG_TRAINING)
    print(f"Iterations to train      : {estimate.num_iterations:,}")
    print(f"End-to-end training time : {estimate.total_days:.1f} days")
    print(f"Cluster burn rate        : ${estimate.dollars_per_hour:,.0f}/hour")
    print(f"Total training cost      : ${estimate.dollars_total / 1e6:.2f}M")
    print()
    print("Paper's Table I row for (8, 8, 35): 42.59 s/iter, 33.52 days, "
          "42.67 % utilization, $9.01M.")

    # 4. Where does the time go?
    breakdown = prediction.simulation.breakdown()
    total = sum(breakdown.values())
    print("\nAggregate busy-time breakdown across pipeline stages:")
    for kind, seconds in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        if seconds > 0:
            print(f"  {kind:<15} {seconds:8.1f} GPU-s "
                  f"({100 * seconds / total:.1f} %)")


if __name__ == "__main__":
    main()
