"""Case study #1: find a cost-effective MT-NLG training plan (Section V-A).

Performs the paper's design-space exploration around the published
MT-NLG plans: sweep (t, d, p, m) configurations near the baseline's GPU
budget, then compare the best cost-effective plan vTrain uncovers against
the published heuristic plan — the Table I experiment in miniature.

Run:
    python examples/mtnlg_training_plan.py
"""

import time

from repro import Granularity, ParallelismConfig, VTrain, multi_node
from repro.config.presets import (MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING)
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import SearchSpace, enumerate_plans


def estimate_row(plan: ParallelismConfig) -> dict:
    system = multi_node(plan.total_gpus // 8)
    vtrain = VTrain(system, granularity=Granularity.STAGE)
    estimate = vtrain.estimate_training(MT_NLG_530B, plan, MT_NLG_TRAINING)
    return {"plan": plan.way, "m": plan.micro_batch_size,
            "iter_s": estimate.iteration_time,
            "days": estimate.total_days,
            "util_pct": 100 * estimate.gpu_compute_utilization,
            "gpus": estimate.num_gpus,
            "cost_m": estimate.dollars_total / 1e6}


def main() -> None:
    baseline = MT_NLG_BASELINE_PLANS[0]  # (8, 8, 35) on 2,240 GPUs
    base_row = estimate_row(baseline)
    print(f"Baseline MT-NLG plan {base_row['plan']}: "
          f"{base_row['iter_s']:.2f} s/iter, {base_row['days']:.1f} days, "
          f"{base_row['util_pct']:.1f} %, ${base_row['cost_m']:.2f}M on "
          f"{base_row['gpus']} GPUs")

    # Sweep the t=8 slice of the design space near the baseline budget,
    # exactly how Figure 11 frames the search.
    print("\nExploring the t=8 design space near the baseline GPU budget...")
    space = SearchSpace(max_tensor=8, max_data=32, max_pipeline=105,
                        micro_batch_sizes=(1, 2))
    explorer = DesignSpaceExplorer(MT_NLG_530B, MT_NLG_TRAINING)
    start = time.time()
    plans = [plan for plan in enumerate_plans(
                 MT_NLG_530B, MT_NLG_TRAINING, space=space,
                 max_gpus=baseline.total_gpus)
             if plan.tensor == 8 and plan.total_gpus >= 1600]
    result = explorer.explore(plans=plans)
    elapsed = time.time() - start
    print(f"Evaluated {len(result.points)} plans "
          f"({result.num_feasible} feasible) in {elapsed:.0f} s")

    best = result.best_by_cost()
    best_row = estimate_row(best.plan.replaced())
    print(f"\nMost cost-effective uncovered plan {best_row['plan']} "
          f"(m={best_row['m']}):")
    print(f"  {best_row['iter_s']:.2f} s/iter, {best_row['days']:.1f} days, "
          f"{best_row['util_pct']:.1f} %, ${best_row['cost_m']:.2f}M on "
          f"{best_row['gpus']} GPUs")

    savings = base_row["cost_m"] - best_row["cost_m"]
    print(f"\nTraining cost saving vs the published plan: ${savings:.2f}M "
          f"({100 * savings / base_row['cost_m']:.1f} %)")
    print("Paper's corresponding finding: (8, 12, 21) saves $0.39M (9.01 -> "
          "8.62).")

    print("\nPareto frontier (iteration time vs cost/iteration):")
    for point in result.pareto_frontier()[:8]:
        print(f"  {point.plan.way} m={point.plan.micro_batch_size}: "
              f"{point.iteration_time:.2f} s/iter, "
              f"{100 * point.utilization:.1f} %, {point.num_gpus} GPUs")


if __name__ == "__main__":
    main()
