"""Parallel, cache-aware design-space sweep engine.

The paper's headline capability is sweeping the entire MT-NLG
parallelization space "in under 200 seconds". Plan evaluations are
independent of each other — embarrassingly parallel — so this module
fans them out over a :class:`concurrent.futures.ProcessPoolExecutor` in
chunked work units, while a :class:`~repro.dse.cache.PredictionCache`
short-circuits plans whose prediction is already known (warm caches,
repeated sweeps, or a checkpoint left by an interrupted run).

Determinism contract: the merged :class:`~repro.dse.explorer.DSEResult`
lists points in the original plan order and is bit-identical to what the
serial :class:`~repro.dse.explorer.DesignSpaceExplorer` produces — the
workers run exactly the same evaluation code on the same deterministic
analytical device model, and results are merged by index.

Each worker process hosts one long-lived
:class:`~repro.dse.explorer.DesignSpaceExplorer`, so per-worker
profiling state (the necessary-operator lookup table) warms once and is
reused across every chunk that worker pulls. The compiled-structure
cache (:func:`repro.graph.builder.structure_cache_stats`) is likewise
per-process: plans that share a structural fingerprint — same pipeline
depth, schedule, micro-batch count, and bucket layout — reuse one
compiled topology inside each worker and only refill durations, while
predictions stay bit-identical to the serial sweep (and to pre-split
releases, so persisted :class:`PredictionCache` files remain valid).
"""

from __future__ import annotations

import concurrent.futures
import os
from pathlib import Path
from typing import Any, Callable, Iterable

from repro import obs
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import SystemConfig
from repro.dse.cache import PredictionCache, fingerprint
from repro.dse.explorer import DesignPoint, DesignSpaceExplorer, DSEResult
from repro.dse.space import SearchSpace, enumerate_plans
from repro.errors import ConfigError
from repro.graph.builder import Granularity

#: Chunks are sized so each worker sees roughly this many chunks over a
#: sweep — large enough to amortise IPC, small enough to balance load.
_CHUNKS_PER_WORKER = 4

#: Upper bound on plans per work unit, so huge sweeps still checkpoint
#: and report progress at a reasonable cadence.
_MAX_CHUNK_SIZE = 64

# ---------------------------------------------------------------------------
# Worker-process machinery (module-level so it pickles under spawn/fork)
# ---------------------------------------------------------------------------

_WORKER_EXPLORER: DesignSpaceExplorer | None = None


def _init_worker(model_dict: dict[str, Any], training_dict: dict[str, Any],
                 gpus_per_node: int, granularity_value: str, network: str,
                 system_factory: Callable[[int], SystemConfig] | None,
                 zero_stage: int,
                 ) -> None:
    """Build this worker's long-lived explorer from serialized configs."""
    global _WORKER_EXPLORER
    _WORKER_EXPLORER = DesignSpaceExplorer(
        ModelConfig.from_dict(model_dict),
        TrainingConfig.from_dict(training_dict),
        gpus_per_node=gpus_per_node,
        granularity=Granularity(granularity_value),
        network=network,
        system_factory=system_factory,
        zero_stage=zero_stage)


def _evaluate_chunk(chunk: list[tuple[int, dict[str, Any]]],
                    ) -> list[tuple[int, dict[str, Any]]]:
    """Evaluate one work unit: [(index, plan dict)] -> [(index, point dict)].

    The whole chunk goes through
    :meth:`DesignSpaceExplorer.evaluate_batch`, so plans that share a
    compiled structure — chunks are cut in affinity order, making that
    the common case — replay in one vectorized sweep per worker.
    """
    assert _WORKER_EXPLORER is not None, "worker initializer did not run"
    plans = [ParallelismConfig.from_dict(plan_dict)
             for _, plan_dict in chunk]
    # Observability state is per-process: a worker's spans/metrics stay
    # in the worker. Counters the parent cares about (cache hits) are
    # re-counted when it absorbs results through its own cache.
    with obs.span("dse.chunk", category="dse", plans=len(plans)):
        points = _WORKER_EXPLORER.evaluate_batch(plans)
    return [(index, point.to_dict())
            for (index, _), point in zip(chunk, points)]


class ParallelExplorer:
    """Fan a design-space sweep out over worker processes, with caching.

    Drop-in alternative to :class:`DesignSpaceExplorer.explore` for large
    sweeps (``DesignSpaceExplorer.explore(workers=...)`` delegates here).

    Args:
        model: Target LLM.
        training: Batch/token recipe.
        workers: Worker processes. ``1`` evaluates in-process (still
            cache-aware); ``None`` uses the machine's CPU count.
        gpus_per_node: Node size used to derive per-plan systems.
        granularity: Graph granularity (STAGE recommended for sweeps).
        network: Inter-node fabric spec for derived systems (``flat``,
            ``rail`` or ``fat-tree:<ratio>``); ignored when a custom
            ``system_factory`` is given.
        system_factory: Override how a plan's GPU count becomes a
            :class:`SystemConfig`. Must be picklable (a module-level
            function) when ``workers > 1``.
        zero_stage: ZeRO sharding stage (0-3) assumed by the memory
            feasibility filter; enters the cache fingerprint when
            non-default.
        cache: Prediction cache consulted before evaluating and updated
            after; omit to create a private one (exposed as ``.cache``).
        checkpoint_path: JSON file the cache is saved to every
            ``checkpoint_every`` completed chunks and at sweep end. If it
            already exists it is loaded first, so an interrupted sweep
            resumes from where it stopped.
        checkpoint_every: Checkpoint cadence, in completed chunks.
        chunk_size: Plans per work unit (default: sized so each worker
            receives a handful of chunks).
        progress: Callback ``progress(completed, total)`` invoked after
            the cache scan and as chunks finish.
    """

    def __init__(self, model: ModelConfig, training: TrainingConfig, *,
                 workers: int | None = None,
                 gpus_per_node: int = 8,
                 granularity: Granularity = Granularity.STAGE,
                 network: str = "flat",
                 system_factory: Callable[[int], SystemConfig] | None = None,
                 zero_stage: int = 1,
                 cache: PredictionCache | None = None,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 8,
                 chunk_size: int | None = None,
                 progress: Callable[[int, int], None] | None = None,
                 ) -> None:
        if workers is not None and workers < 1:
            raise ConfigError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        if checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        self.model = model
        self.training = training
        self.workers = workers if workers is not None else (os.cpu_count()
                                                            or 1)
        self.gpus_per_node = gpus_per_node
        self.granularity = granularity
        self.network = network
        self.zero_stage = zero_stage
        self.cache = cache if cache is not None else PredictionCache()
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self.chunk_size = chunk_size
        self.progress = progress
        self._system_factory = system_factory
        # Serial twin: derives per-plan systems for fingerprinting and
        # evaluates in-process when workers == 1.
        self._serial = DesignSpaceExplorer(
            model, training, gpus_per_node=gpus_per_node,
            granularity=granularity, network=network,
            system_factory=system_factory, zero_stage=zero_stage)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def explore(self, *, space: SearchSpace = SearchSpace(),
                num_gpus: int | None = None, max_gpus: int | None = None,
                plans: Iterable[ParallelismConfig] | None = None,
                ) -> DSEResult:
        """Sweep the space; returns points in enumeration order."""
        if plans is None:
            plans = enumerate_plans(self.model, self.training, space=space,
                                    num_gpus=num_gpus, max_gpus=max_gpus)
        plan_list = list(plans)
        total = len(plan_list)
        with obs.span("dse.sweep", category="dse", plans=total,
                      workers=self.workers):
            return self._explore_plans(plan_list, total)

    def _explore_plans(self, plan_list: list[ParallelismConfig],
                       total: int) -> DSEResult:
        self._load_checkpoint()

        points: list[DesignPoint | None] = [None] * total
        pending: list[tuple[int, ParallelismConfig, str]] = []
        for index, plan in enumerate(plan_list):
            key = self.fingerprint_for(plan)
            cached = self.cache.get(key)
            if cached is not None:
                points[index] = cached
            else:
                pending.append((index, plan, key))
        # Chunk in structure-affinity order: plans sharing a compiled
        # graph topology land in the same work unit, so each worker
        # compiles a structure once and re-times it for the rest of the
        # group. Results are merged back by index, so the returned
        # point order (and every prediction) is unchanged.
        from repro.graph.builder import structure_affinity
        pending.sort(key=lambda entry: (
            structure_affinity(self.model, entry[1], self.training,
                               self.granularity) or "~", entry[0]))
        self._report(total - len(pending), total)

        if pending:
            chunks = self._chunk(pending)
            if self.workers > 1:
                self._run_pool(chunks, points, total)
            else:
                self._run_serial(chunks, points, total)
            self._save_checkpoint()

        assert all(point is not None for point in points)
        return DSEResult(model=self.model, training=self.training,
                         points=points)

    def fingerprint_for(self, plan: ParallelismConfig) -> str:
        """Cache key of one plan under this sweep's model/system/detail."""
        return fingerprint(self.model, plan, self.training,
                           self._serial.system_for(plan.total_gpus),
                           self.granularity, zero_stage=self.zero_stage)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _chunk(self, pending: list[tuple[int, ParallelismConfig, str]],
               ) -> list[list[tuple[int, ParallelismConfig, str]]]:
        size = self.chunk_size
        if size is None:
            per_worker = -(-len(pending) // (self.workers
                                             * _CHUNKS_PER_WORKER))
            size = max(1, min(_MAX_CHUNK_SIZE, per_worker))
        return [pending[start:start + size]
                for start in range(0, len(pending), size)]

    def _absorb(self, chunk_keys: dict[int, str],
                results: list[tuple[int, DesignPoint]],
                points: list[DesignPoint | None]) -> None:
        for index, point in results:
            points[index] = point
            self.cache.put(chunk_keys[index], point)

    def _run_pool(self, chunks, points, total) -> None:
        init_args = (self.model.to_dict(), self.training.to_dict(),
                     self.gpus_per_node, self.granularity.value,
                     self.network, self._system_factory, self.zero_stage)
        max_workers = min(self.workers, len(chunks))
        done = total - sum(len(chunk) for chunk in chunks)
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers, initializer=_init_worker,
                initargs=init_args) as pool:
            futures = {}
            for chunk in chunks:
                payload = [(index, plan.to_dict()) for index, plan, _ in chunk]
                future = pool.submit(_evaluate_chunk, payload)
                futures[future] = {index: key for index, _, key in chunk}
            completed_chunks = 0
            for future in concurrent.futures.as_completed(futures):
                results = [(index, DesignPoint.from_dict(payload))
                           for index, payload in future.result()]
                self._absorb(futures[future], results, points)
                completed_chunks += 1
                done += len(results)
                self._report(done, total)
                if completed_chunks % self.checkpoint_every == 0:
                    self._save_checkpoint()

    def _run_serial(self, chunks, points, total) -> None:
        done = total - sum(len(chunk) for chunk in chunks)
        for completed_chunks, chunk in enumerate(chunks, start=1):
            evaluated = self._serial.evaluate_batch(
                [plan for _, plan, _ in chunk])
            results = [(index, point) for (index, _, _), point
                       in zip(chunk, evaluated)]
            self._absorb({index: key for index, _, key in chunk},
                         results, points)
            done += len(results)
            self._report(done, total)
            if completed_chunks % self.checkpoint_every == 0:
                self._save_checkpoint()

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    def _load_checkpoint(self) -> None:
        if self.checkpoint_path is not None and self.checkpoint_path.exists():
            self.cache.merge(PredictionCache.load(self.checkpoint_path))

    def _save_checkpoint(self) -> None:
        if self.checkpoint_path is not None:
            self.cache.save(self.checkpoint_path)
