"""Design-space exploration driver (Section V-A, Figures 10/11, Table I).

Evaluates every plan in a search space with one shared vTrain instance
(so each necessary operator is profiled once across the whole sweep) and
collects :class:`DesignPoint` rows: iteration time, utilization, memory,
GPUs, and cost rates. Helpers select the paper's headline artefacts —
fastest plan, most cost-effective plan under a GPU budget, the Pareto
frontier of (iteration time, cost), and the Figure-10 heatmap grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, TYPE_CHECKING

from repro import obs
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import SystemConfig, multi_node
from repro.cost.pricing import DEFAULT_PRICING, PricingModel
from repro.errors import ConfigError, InfeasibleConfigError
from repro.graph.builder import Granularity
from repro.dse.space import (SearchSpace, enumerate_plans,
                             enumerate_serving_plans)
from repro.sim.estimator import VTrain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dse.cache import PredictionCache

#: Upper bound on plans per batched replay: bounds the transient
#: ``(tasks x N)`` duration matrix while keeping the vectorized sweep's
#: per-column amortisation (throughput is flat past a few dozen columns).
_MAX_EVAL_BATCH = 64


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated plan in the design space.

    Training rows (the default, ``workload == "training"``) populate
    ``iteration_time``/``utilization``; serving rows
    (``workload == "inference"``) additionally carry the serving
    metrics — ``ttft_s`` (time to first token), ``tpot_s`` (time per
    output token, also mirrored into ``iteration_time`` so generic
    time-sorted views stay meaningful), and ``tokens_per_s`` (aggregate
    output throughput across the plan's ``d`` replicas).
    """

    plan: ParallelismConfig
    feasible: bool
    iteration_time: float = float("inf")
    utilization: float = 0.0
    memory_gib: float = 0.0
    infeasible_reason: str = ""
    workload: str = "training"
    tokens_per_s: float = 0.0
    ttft_s: float = 0.0
    tpot_s: float = 0.0

    @property
    def num_gpus(self) -> int:
        """GPUs the plan occupies."""
        return self.plan.total_gpus

    def cost_per_iteration(self,
                           pricing: PricingModel = DEFAULT_PRICING) -> float:
        """Dollar cost of one iteration under the pricing model."""
        if not self.feasible:
            return float("inf")
        return pricing.cost(self.num_gpus, self.iteration_time)

    def cost_per_million_tokens(
            self, pricing: PricingModel = DEFAULT_PRICING) -> float:
        """Serving cost per million output tokens (inference rows)."""
        if not self.feasible or self.tokens_per_s <= 0:
            return float("inf")
        return (pricing.dollars_per_hour(self.num_gpus) / 3600.0
                / self.tokens_per_s * 1e6)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation.

        Non-finite iteration times (infeasible rows) are stored as
        ``None`` so the payload stays strict JSON. The serving fields
        (``workload``, ``tokens_per_s``, ``ttft_s``, ``tpot_s``) are
        omitted for training rows, so payloads written before the
        workload abstraction — and the prediction-cache fingerprints
        built over them — remain byte-identical.
        """
        payload = {
            "plan": self.plan.to_dict(),
            "feasible": self.feasible,
            "iteration_time": (self.iteration_time
                               if math.isfinite(self.iteration_time)
                               else None),
            "utilization": self.utilization,
            "memory_gib": self.memory_gib,
            "infeasible_reason": self.infeasible_reason,
        }
        if self.workload != "training":
            payload["workload"] = self.workload
            payload["tokens_per_s"] = self.tokens_per_s
            payload["ttft_s"] = self.ttft_s
            payload["tpot_s"] = self.tpot_s
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DesignPoint":
        """Inverse of :meth:`to_dict`; raises ConfigError on bad input."""
        raw = dict(payload)
        try:
            plan = ParallelismConfig.from_dict(raw.pop("plan"))
        except KeyError as exc:
            raise ConfigError("design point payload missing plan") from exc
        if raw.get("iteration_time") is None:
            raw["iteration_time"] = float("inf")
        try:
            return cls(plan=plan, **raw)
        except TypeError as exc:
            raise ConfigError(f"invalid design point: {exc}") from exc


@dataclass
class DSEResult:
    """All evaluated points plus selection helpers.

    ``training`` is ``None`` for serving sweeps, which are shaped by an
    :class:`~repro.workload.InferenceWorkload` instead.
    """

    model: ModelConfig
    training: TrainingConfig | None
    points: list[DesignPoint] = field(default_factory=list)

    @property
    def feasible_points(self) -> list[DesignPoint]:
        """Points that passed structural and memory checks."""
        return [point for point in self.points if point.feasible]

    @property
    def num_feasible(self) -> int:
        """Count of feasible points."""
        return len(self.feasible_points)

    def best_by_iteration_time(self, *, num_gpus: int | None = None,
                               max_gpus: int | None = None,
                               tensor: int | None = None) -> DesignPoint:
        """Fastest feasible plan, optionally constrained."""
        candidates = self._filter(num_gpus=num_gpus, max_gpus=max_gpus,
                                  tensor=tensor)
        return min(candidates, key=lambda point: point.iteration_time)

    def best_by_cost(self, *, pricing: PricingModel = DEFAULT_PRICING,
                     num_gpus: int | None = None,
                     max_gpus: int | None = None,
                     tensor: int | None = None) -> DesignPoint:
        """Cheapest-per-token feasible plan, optionally constrained.

        Each candidate's cost is priced exactly once (O(n) pricing
        evaluations), not once per comparison.
        """
        candidates = self._filter(num_gpus=num_gpus, max_gpus=max_gpus,
                                  tensor=tensor)
        costs = [point.cost_per_iteration(pricing) for point in candidates]
        return candidates[min(range(len(candidates)),
                              key=costs.__getitem__)]

    def best_micro_batch_per_way(self) -> dict[tuple[int, int, int],
                                               DesignPoint]:
        """Collapse micro-batch choices: best point per (t, d, p)."""
        best: dict[tuple[int, int, int], DesignPoint] = {}
        for point in self.feasible_points:
            way = point.plan.way
            if way not in best or (point.iteration_time
                                   < best[way].iteration_time):
                best[way] = point
        return best

    def pareto_frontier(self, *, pricing: PricingModel = DEFAULT_PRICING,
                        ) -> list[DesignPoint]:
        """Points not dominated in (iteration time, cost/iteration).

        Each point is priced exactly once (O(n) pricing evaluations);
        the sort compares the precomputed (time, cost) pairs.
        """
        costed = [(point, point.cost_per_iteration(pricing))
                  for point in self.feasible_points]
        costed.sort(key=lambda entry: (entry[0].iteration_time, entry[1]))
        frontier: list[DesignPoint] = []
        best_cost = float("inf")
        for point, cost in costed:
            if cost < best_cost:
                frontier.append(point)
                best_cost = cost
        return frontier

    def serving_pareto_frontier(
            self, *, pricing: PricingModel = DEFAULT_PRICING,
            ) -> list[DesignPoint]:
        """Serving points not dominated in (tokens/s, cost per Mtok).

        The vLLM-style trade-off surface: raising tensor parallelism
        buys latency (and with it per-replica throughput) at a worse
        cost rate, while adding replicas buys throughput at an unchanged
        rate — the frontier exposes which plans are worth either trade.
        Sorted by descending throughput.
        """
        costed = [(point, point.cost_per_million_tokens(pricing))
                  for point in self.feasible_points
                  if point.workload == "inference"]
        costed.sort(key=lambda entry: (-entry[0].tokens_per_s, entry[1]))
        frontier: list[DesignPoint] = []
        best_cost = float("inf")
        for point, cost in costed:
            if cost < best_cost:
                frontier.append(point)
                best_cost = cost
        return frontier

    def best_by_throughput(self, *, max_gpus: int | None = None,
                           ) -> DesignPoint:
        """Highest-throughput feasible serving point."""
        candidates = [p for p in self.feasible_points
                      if p.workload == "inference"]
        if max_gpus is not None:
            candidates = [p for p in candidates if p.num_gpus <= max_gpus]
        if not candidates:
            raise InfeasibleConfigError(
                "no feasible serving points match the constraints")
        return max(candidates, key=lambda point: point.tokens_per_s)

    def heatmap(self, metric: str = "iteration_time",
                ) -> dict[tuple[int, int, int], float]:
        """Figure-10 style grid: (t, d, p) -> metric (best micro-batch).

        ``metric`` is ``iteration_time`` or ``utilization``.
        """
        if metric not in ("iteration_time", "utilization"):
            raise ConfigError(f"unknown heatmap metric {metric!r}")
        return {way: getattr(point, metric)
                for way, point in self.best_micro_batch_per_way().items()}

    def _filter(self, *, num_gpus: int | None, max_gpus: int | None,
                tensor: int | None) -> list[DesignPoint]:
        candidates = self.feasible_points
        if tensor is not None:
            candidates = [p for p in candidates if p.plan.tensor == tensor]
        if num_gpus is not None:
            candidates = [p for p in candidates if p.num_gpus == num_gpus]
        if max_gpus is not None:
            candidates = [p for p in candidates if p.num_gpus <= max_gpus]
        if not candidates:
            raise InfeasibleConfigError(
                "no feasible design points match the constraints")
        return candidates


class DesignSpaceExplorer:
    """Sweeps plans for one model/training recipe.

    A single profiling stack (device model, CUPTI tracer, lookup table,
    NCCL tables) is shared across the sweep, so the whole exploration
    profiles each necessary operator exactly once — the property that
    makes the paper's "full design space in under 200 seconds" possible.

    Args:
        model: Target LLM.
        training: Batch/token recipe.
        gpus_per_node: Node size used to derive per-plan systems.
        granularity: Graph granularity (STAGE recommended for sweeps).
        network: Inter-node fabric spec for derived systems (``flat``,
            ``rail`` or ``fat-tree:<ratio>``); ``flat`` reproduces the
            paper's Equation-1 model exactly. Ignored when a custom
            ``system_factory`` is given.
        system_factory: Override how a plan's GPU count becomes a
            :class:`SystemConfig` (e.g. to change interconnects).
        zero_stage: ZeRO sharding stage (0-3) assumed by the memory
            feasibility filter (default 1, ZeRO-1 optimizer sharding).
        workload: An :class:`~repro.workload.InferenceWorkload` turns
            the sweep into a serving exploration — plans come from
            :func:`repro.dse.space.enumerate_serving_plans`, each is
            evaluated by :meth:`VTrain.predict_inference`, and
            ``training`` may be ``None``.
    """

    def __init__(self, model: ModelConfig,
                 training: TrainingConfig | None, *,
                 gpus_per_node: int = 8,
                 granularity: Granularity = Granularity.STAGE,
                 network: str = "flat",
                 system_factory: Callable[[int], SystemConfig] | None = None,
                 zero_stage: int = 1,
                 workload=None,
                 ) -> None:
        if training is None and workload is None:
            raise ConfigError(
                "DesignSpaceExplorer needs a training recipe or a workload")
        self.model = model
        self.training = training
        self.workload = workload
        self.gpus_per_node = gpus_per_node
        self.granularity = granularity
        self.network = network
        self.zero_stage = zero_stage
        self.has_custom_system_factory = system_factory is not None
        self._system_factory = system_factory or self._default_system
        self._simulators: dict[int, VTrain] = {}

    def _default_system(self, num_gpus: int) -> SystemConfig:
        nodes = max(1, -(-num_gpus // self.gpus_per_node))
        return multi_node(nodes, gpus_per_node=self.gpus_per_node,
                          network=self.network)

    def system_for(self, num_gpus: int) -> SystemConfig:
        """The system a plan occupying ``num_gpus`` GPUs runs on (the
        plan's node count rounded up to whole nodes)."""
        nodes = max(1, -(-num_gpus // self.gpus_per_node))
        return self._system_factory(nodes * self.gpus_per_node)

    def _simulator_for(self, num_gpus: int) -> VTrain:
        nodes = max(1, -(-num_gpus // self.gpus_per_node))
        simulator = self._simulators.get(nodes)
        if simulator is None:
            simulator = VTrain(self.system_for(num_gpus),
                               granularity=self.granularity,
                               zero_stage=self.zero_stage)
            self._simulators[nodes] = simulator
        return simulator

    def evaluate(self, plan: ParallelismConfig) -> DesignPoint:
        """Evaluate a single plan into a DesignPoint (never raises for
        infeasible or structurally invalid plans — both become
        ``feasible=False`` rows, so one bad plan cannot abort a sweep)."""
        if self.workload is not None:
            return self._evaluate_serving(plan)
        simulator = self._simulator_for(plan.total_gpus)
        try:
            prediction = simulator.predict(self.model, plan, self.training)
        except (InfeasibleConfigError, ConfigError) as exc:
            return DesignPoint(plan=plan, feasible=False,
                               infeasible_reason=str(exc))
        return DesignPoint(
            plan=plan, feasible=True,
            iteration_time=prediction.iteration_time,
            utilization=prediction.gpu_compute_utilization,
            memory_gib=prediction.memory_per_gpu / float(1 << 30))

    def _evaluate_serving(self, plan: ParallelismConfig) -> DesignPoint:
        """Evaluate one serving plan against the inference workload."""
        simulator = self._simulator_for(plan.total_gpus)
        try:
            prediction = simulator.predict_inference(self.model, plan,
                                                     self.workload)
        except (InfeasibleConfigError, ConfigError) as exc:
            return DesignPoint(plan=plan, feasible=False,
                               infeasible_reason=str(exc),
                               workload="inference")
        return DesignPoint(
            plan=plan, feasible=True,
            iteration_time=prediction.decode_step_time,
            memory_gib=prediction.memory_per_gpu / float(1 << 30),
            workload="inference",
            tokens_per_s=prediction.tokens_per_second,
            ttft_s=prediction.prefill_time,
            tpot_s=prediction.decode_step_time)

    def evaluate_batch(self, plans: list[ParallelismConfig],
                       ) -> list[DesignPoint]:
        """Evaluate several plans, replaying shared structures in batch.

        The batched counterpart of :meth:`evaluate`: infeasible and
        structurally invalid plans still become ``feasible=False`` rows,
        while the survivors are prepared up front and handed to
        :meth:`VTrain.predict_prepared`, which stacks runs sharing one
        compiled structure into a single vectorized
        :func:`~repro.sim.engine.simulate_retimed_batch` sweep. Points
        come back in ``plans`` order, bit-identical to
        ``[self.evaluate(p) for p in plans]``.
        """
        points: list[DesignPoint | None] = [None] * len(plans)
        survivors: dict[int, tuple[VTrain, list[int], list]] = {}
        with obs.span("dse.evaluate_batch", category="dse",
                      plans=len(plans)):
            for position, plan in enumerate(plans):
                simulator = self._simulator_for(plan.total_gpus)
                try:
                    footprint, prepared = simulator.prepare_checked(
                        self.model, plan, self.training)
                except (InfeasibleConfigError, ConfigError) as exc:
                    points[position] = DesignPoint(
                        plan=plan, feasible=False,
                        infeasible_reason=str(exc))
                    obs.count("dse.plans_infeasible")
                    continue
                _, positions, entries = survivors.setdefault(
                    id(simulator), (simulator, [], []))
                positions.append(position)
                entries.append((plan, footprint, prepared))
            for simulator, positions, entries in survivors.values():
                predictions = simulator.predict_prepared(
                    self.model, self.training, entries)
                for position, prediction in zip(positions, predictions):
                    points[position] = DesignPoint(
                        plan=plans[position], feasible=True,
                        iteration_time=prediction.iteration_time,
                        utilization=prediction.gpu_compute_utilization,
                        memory_gib=prediction.memory_per_gpu
                        / float(1 << 30))
        obs.count("dse.plans_evaluated", len(plans))
        return points

    def explore(self, *, space: SearchSpace = SearchSpace(),
                num_gpus: int | None = None, max_gpus: int | None = None,
                plans: Iterable[ParallelismConfig] | None = None,
                workers: int | None = None,
                cache: "PredictionCache | None" = None,
                checkpoint_path: Any = None,
                progress: Callable[[int, int], None] | None = None,
                ) -> DSEResult:
        """Evaluate a plan iterable (or the enumerated search space).

        Args:
            space / num_gpus / max_gpus / plans: What to sweep (see
                :func:`repro.dse.space.enumerate_plans`).
            workers: Evaluate plans on this many worker processes
                (``> 1`` fans out via :class:`repro.dse.parallel.
                ParallelExplorer`; results are merged back into plan
                order, bit-identical to the serial sweep).
            cache: A :class:`~repro.dse.cache.PredictionCache`; plans
                whose fingerprint is already cached skip simulation.
            checkpoint_path: JSON file the sweep's cache is periodically
                saved to, and resumed from when it already exists.
            progress: Callback ``progress(completed, total)`` invoked as
                the sweep advances.
        """
        if self.workload is not None:
            return self._explore_serving(space=space, num_gpus=num_gpus,
                                         max_gpus=max_gpus, plans=plans,
                                         cache=cache,
                                         checkpoint_path=checkpoint_path,
                                         progress=progress)
        if (workers is not None and workers > 1) or cache is not None \
                or checkpoint_path is not None or progress is not None:
            from repro.dse.parallel import ParallelExplorer
            engine = ParallelExplorer(
                self.model, self.training,
                workers=workers if workers is not None else 1,
                gpus_per_node=self.gpus_per_node,
                granularity=self.granularity,
                network=self.network,
                system_factory=(self._system_factory
                                if self.has_custom_system_factory else None),
                zero_stage=self.zero_stage,
                cache=cache, checkpoint_path=checkpoint_path,
                progress=progress)
            return engine.explore(space=space, num_gpus=num_gpus,
                                  max_gpus=max_gpus, plans=plans)
        if plans is None:
            plans = enumerate_plans(self.model, self.training, space=space,
                                    num_gpus=num_gpus, max_gpus=max_gpus)
        plan_list = list(plans)
        result = DSEResult(model=self.model, training=self.training,
                           points=[None] * len(plan_list))
        # Evaluate in structure-affinity groups: plans sharing a
        # compiled graph topology run together, so each group compiles
        # once and replays every member in one vectorized batch
        # (predictions are order-independent, and results are restored
        # to plan order below).
        for group in self._affinity_groups(plan_list):
            evaluated = self.evaluate_batch([plan_list[i] for i in group])
            for index, point in zip(group, evaluated):
                result.points[index] = point
        return result

    def _explore_serving(self, *, space: SearchSpace,
                         num_gpus: int | None, max_gpus: int | None,
                         plans: Iterable[ParallelismConfig] | None,
                         cache: "PredictionCache | None",
                         checkpoint_path: Any,
                         progress: Callable[[int, int], None] | None,
                         ) -> DSEResult:
        """Serving sweep: each plan replays a prefill + decode graph.

        Serial by design — phase graphs are small (no backward half) and
        the process-wide structure cache already collapses repeat
        topologies — but honours the same cache / checkpoint / progress
        contract as the training sweep.
        """
        from repro.dse.cache import PredictionCache, fingerprint

        if plans is None:
            plans = enumerate_serving_plans(self.model, self.workload,
                                            space=space, num_gpus=num_gpus,
                                            max_gpus=max_gpus)
        plan_list = list(plans)
        if cache is None and checkpoint_path is not None:
            cache = (PredictionCache.load(checkpoint_path)
                     if Path(checkpoint_path).exists() else PredictionCache())
        result = DSEResult(model=self.model, training=self.training,
                           points=[])
        with obs.span("dse.explore_serving", category="dse",
                      plans=len(plan_list)):
            for completed, plan in enumerate(plan_list, start=1):
                key = None
                if cache is not None:
                    key = fingerprint(self.model, plan, self.training,
                                      self.system_for(plan.total_gpus),
                                      self.granularity,
                                      zero_stage=self.zero_stage,
                                      workload=self.workload)
                    point = cache.get(key)
                    if point is not None:
                        result.points.append(point)
                        if progress is not None:
                            progress(completed, len(plan_list))
                        continue
                point = self._evaluate_serving(plan)
                result.points.append(point)
                if cache is not None:
                    cache.put(key, point)
                if progress is not None:
                    progress(completed, len(plan_list))
            if cache is not None and checkpoint_path is not None:
                cache.save(checkpoint_path)
        obs.count("dse.plans_evaluated", len(plan_list))
        return result

    def _affinity_groups(self, plans: list[ParallelismConfig],
                         ) -> list[list[int]]:
        """Indices of ``plans`` grouped to co-locate shared structures.

        Groups are emitted in affinity-sorted order (ties and
        un-fingerprintable plans keep their original order, so the
        flattened sequence matches the historical evaluation order);
        consecutive plans sharing a structure fingerprint share a group,
        capped at ``_MAX_EVAL_BATCH``, while un-fingerprintable plans
        are singletons.
        """
        from repro.graph.builder import structure_affinity

        keyed = sorted(
            ((structure_affinity(self.model, plans[index], self.training,
                                 self.granularity), index)
             for index in range(len(plans))),
            key=lambda row: ("~" if row[0] is None else row[0], row[1]))
        groups: list[list[int]] = []
        previous_key = None
        for key, index in keyed:
            extend = (key is not None and groups and key == previous_key
                      and len(groups[-1]) < _MAX_EVAL_BATCH)
            if extend:
                groups[-1].append(index)
            else:
                groups.append([index])
            previous_key = key
        return groups
