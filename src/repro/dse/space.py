"""Design-space enumeration for (t, d, p, m)-way 3D parallelism.

Section V-A sweeps tensor parallelism up to 16-way, data parallelism up
to 32-way, and pipeline parallelism up to 105-way for MT-NLG. A plan is
*structurally valid* when ``t`` divides the attention heads, ``p`` divides
the layer count, ``d`` divides the global batch, and the micro-batch size
divides the per-replica batch; it is *feasible* when it additionally fits
per-GPU memory (checked by the explorer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig)
from repro.errors import ConfigError


def powers_of_two(limit: int) -> list[int]:
    """All powers of two up to and including ``limit``."""
    if limit < 1:
        raise ConfigError("limit must be >= 1")
    values = []
    value = 1
    while value <= limit:
        values.append(value)
        value *= 2
    return values


def divisors(value: int) -> list[int]:
    """All positive divisors of ``value`` in ascending order."""
    if value <= 0:
        raise ConfigError("value must be positive")
    small, large = [], []
    probe = 1
    while probe * probe <= value:
        if value % probe == 0:
            small.append(probe)
            if probe != value // probe:
                large.append(value // probe)
        probe += 1
    return small + large[::-1]


@dataclass(frozen=True)
class SearchSpace:
    """Bounds of the 3D-parallelism sweep (paper defaults for MT-NLG).

    Attributes:
        max_tensor: Upper bound on tensor-parallel degree (t_max=16).
        max_data: Upper bound on data-parallel degree (d_max=32).
        max_pipeline: Upper bound on pipeline degree (p_max, the paper
            uses L=105).
        micro_batch_sizes: Candidate micro-batch sizes.
        schedule: Pipeline schedule applied to every plan.
        recompute: Activation recompute mode applied to every plan.
        virtual_stages: Candidate virtual-pipeline (interleaving) chunk
            counts. The default ``(1,)`` sweeps only plain schedules;
            values above 1 add Megatron-interleaved variants of every
            plan that satisfies the interleave constraints (``p > 1``,
            ``p*v | L``, ``p | NMB``) and require the 1F1B schedule.
    """

    max_tensor: int = 16
    max_data: int = 32
    max_pipeline: int = 105
    micro_batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16)
    schedule: PipelineSchedule = PipelineSchedule.ONE_F_ONE_B
    recompute: RecomputeMode = RecomputeMode.SELECTIVE
    virtual_stages: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        for field_name in ("max_tensor", "max_data", "max_pipeline"):
            if getattr(self, field_name) < 1:
                raise ConfigError(f"{field_name} must be >= 1")
        if not self.micro_batch_sizes:
            raise ConfigError("micro_batch_sizes must not be empty")
        for size in self.micro_batch_sizes:
            if not isinstance(size, int) or size < 1:
                raise ConfigError(
                    f"micro-batch sizes must be positive ints, got {size!r}")
        if not self.virtual_stages:
            raise ConfigError("virtual_stages must not be empty")
        for count in self.virtual_stages:
            if not isinstance(count, int) or count < 1:
                raise ConfigError(
                    f"virtual-stage counts must be positive ints, "
                    f"got {count!r}")
        if (max(self.virtual_stages) > 1
                and self.schedule is not PipelineSchedule.ONE_F_ONE_B):
            raise ConfigError(
                "virtual_stages > 1 requires the 1f1b schedule")


def tensor_candidates(model: ModelConfig, space: SearchSpace) -> list[int]:
    """Valid tensor degrees: powers of two dividing the attention heads."""
    return [t for t in powers_of_two(space.max_tensor)
            if model.num_heads % t == 0]


def pipeline_candidates(model: ModelConfig, space: SearchSpace) -> list[int]:
    """Valid pipeline degrees: divisors of the layer count within bound."""
    return [p for p in divisors(model.num_layers) if p <= space.max_pipeline]


def enumerate_plans(model: ModelConfig, training: TrainingConfig, *,
                    space: SearchSpace = SearchSpace(),
                    num_gpus: int | None = None,
                    max_gpus: int | None = None,
                    ) -> Iterator[ParallelismConfig]:
    """Yield every structurally-valid plan in the search space.

    Exactly one of ``num_gpus`` (plans using exactly that many GPUs) or
    ``max_gpus`` (plans using at most that many) must be given.
    """
    if (num_gpus is None) == (max_gpus is None):
        raise ConfigError("specify exactly one of num_gpus / max_gpus")
    budget = num_gpus if num_gpus is not None else max_gpus
    if budget <= 0:
        raise ConfigError("GPU budget must be positive")
    for t in tensor_candidates(model, space):
        for p in pipeline_candidates(model, space):
            for d in range(1, space.max_data + 1):
                total = t * d * p
                if total > budget:
                    break
                if num_gpus is not None and total != num_gpus:
                    continue
                if training.global_batch_size % d != 0:
                    continue
                per_replica = training.global_batch_size // d
                for m in space.micro_batch_sizes:
                    if per_replica % m != 0:
                        continue
                    for v in space.virtual_stages:
                        if v > 1:
                            # Megatron's interleave constraints: a real
                            # pipeline, equal-size model chunks, and a
                            # micro-batch count in whole groups of p.
                            if (p == 1
                                    or (model.num_layers // p) % v != 0
                                    or (per_replica // m) % p != 0):
                                continue
                        yield ParallelismConfig(
                            tensor=t, data=d, pipeline=p, micro_batch_size=m,
                            schedule=space.schedule, virtual_stages=v,
                            recompute=space.recompute)


def enumerate_serving_plans(model: ModelConfig, workload, *,
                            space: SearchSpace = SearchSpace(),
                            num_gpus: int | None = None,
                            max_gpus: int | None = None,
                            ) -> Iterator[ParallelismConfig]:
    """Yield every structurally-valid serving plan for a workload.

    The serving analogue of :func:`enumerate_plans` for an
    :class:`~repro.workload.InferenceWorkload`. The ``d`` axis counts
    data-parallel *server replicas* (each holding a full model copy and
    serving its own ``workload.batch_size`` requests), so unlike
    training it imposes no batch-divisibility constraint; the
    micro-batch size must divide the per-replica serving batch, and
    virtual pipelining is excluded (phase graphs are plain forward
    pipelines).
    """
    if (num_gpus is None) == (max_gpus is None):
        raise ConfigError("specify exactly one of num_gpus / max_gpus")
    budget = num_gpus if num_gpus is not None else max_gpus
    if budget <= 0:
        raise ConfigError("GPU budget must be positive")
    for t in tensor_candidates(model, space):
        for p in pipeline_candidates(model, space):
            for d in range(1, space.max_data + 1):
                total = t * d * p
                if total > budget:
                    break
                if num_gpus is not None and total != num_gpus:
                    continue
                for m in space.micro_batch_sizes:
                    if workload.batch_size % m != 0:
                        continue
                    yield ParallelismConfig(
                        tensor=t, data=d, pipeline=p, micro_batch_size=m,
                        schedule=space.schedule,
                        recompute=space.recompute)


def count_plans(model: ModelConfig, training: TrainingConfig, *,
                space: SearchSpace = SearchSpace(),
                num_gpus: int | None = None,
                max_gpus: int | None = None) -> int:
    """Size of the structurally-valid design space."""
    return sum(1 for _ in enumerate_plans(model, training, space=space,
                                          num_gpus=num_gpus,
                                          max_gpus=max_gpus))


@dataclass(frozen=True)
class GridAxes:
    """Axes of the Figure-10 heatmap grid."""

    tensor: tuple[int, ...] = field(default=(4, 8, 16))
    pipeline: tuple[int, ...] = field(default=(3, 5, 7, 15, 21, 35, 105))
    data: tuple[int, ...] = field(default=(1, 2, 3, 4, 5, 6, 8, 10, 12, 15,
                                           16, 20, 24, 30))
