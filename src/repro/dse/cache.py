"""Persistent prediction cache for design-space sweeps.

A full Figure-10-style sweep evaluates thousands of (t, d, p, m) plans,
and re-running it — after an interrupt, a changed GPU budget, or a
follow-up study over an overlapping space — recomputes every point from
scratch. Related simulators (Echo, arXiv:2412.12487; Charon,
arXiv:2605.17164) memoize per-config predictions for exactly this
reason.

:class:`PredictionCache` maps a canonical fingerprint of
``(model, plan, system, granularity)`` — everything that determines a
prediction — to the resulting :class:`~repro.dse.explorer.DesignPoint`.
It round-trips through strict JSON so caches survive on disk, can be
shipped between machines, and double as sweep checkpoints
(:class:`~repro.dse.parallel.ParallelExplorer` saves one periodically so
interrupted sweeps resume instead of recomputing).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Mapping

from repro import obs
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import SystemConfig
from repro.dse.explorer import DesignPoint
from repro.errors import ConfigError
from repro.graph.builder import Granularity

# Process-wide aggregates across every PredictionCache instance, so
# `repro stats` reports one prediction-cache hit rate no matter how many
# caches a sweep constructed. Per-instance hits/misses stay on the
# instances themselves (tests and checkpoint logs rely on them).
_AGG_HITS = obs.metrics.counter("dse.prediction_cache.hits")
_AGG_MISSES = obs.metrics.counter("dse.prediction_cache.misses")

#: Bump when the prediction payload or fingerprint recipe changes, so
#: stale caches are rejected instead of silently misread.
#:
#: Deliberately NOT bumped for the interleaving release: ``v=1`` /
#: default-ZeRO fingerprints are byte-identical by design so existing
#: sweep caches keep resolving. Caveat: the same release also *fixed*
#: the memory model for two corner cases (sequence-parallel plans no
#: longer replicate the stage-0 embedding output; ``p > 1`` plans are
#: additionally checked at the LM-head stage), so entries for such
#: plans written by older releases carry the pre-fix feasibility —
#: delete the cache file to re-evaluate them.
CACHE_FORMAT_VERSION = 1


def fingerprint(model: ModelConfig, plan: ParallelismConfig,
                training: TrainingConfig | None, system: SystemConfig,
                granularity: Granularity, *, zero_stage: int = 1,
                workload=None) -> str:
    """Canonical cache key for one prediction.

    The key hashes the *complete* simulation input — model, plan,
    training recipe (the global batch drives micro-batch scheduling and
    memory feasibility), system (GPU spec by registry name, interconnect
    parameters), graph granularity, and the memory model's ZeRO stage —
    via sorted-key JSON, so logically equal configurations produce
    identical keys regardless of construction order. The default ZeRO
    stage (1) is omitted from the payload, so caches written before the
    stage was configurable stay valid.

    Serving sweeps pass an :class:`~repro.workload.InferenceWorkload`
    as ``workload`` (and may pass ``training=None``): the workload's
    serialised form replaces the training recipe in the payload.
    Training predictions never add a ``workload`` key, so every
    pre-workload-abstraction cache key remains byte-identical.
    """
    payload = {
        "model": model.to_dict(),
        "plan": plan.to_dict(),
        "system": system.to_dict(),
        "granularity": granularity.value,
    }
    if training is not None:
        payload["training"] = training.to_dict()
    if workload is not None:
        payload["workload"] = workload.to_dict()
    if training is None and workload is None:
        raise ConfigError("fingerprint needs a training recipe or workload")
    if zero_stage != 1:
        payload["zero_stage"] = zero_stage
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class PredictionCache:
    """In-memory map of prediction fingerprints to design points.

    Safe for concurrent use: the `repro serve` daemon shares one
    instance across handler threads, so lookups, stores, merges, and
    the hit/miss counters are guarded by an internal lock (uncontended
    single-threaded use pays one acquire per call).

    Attributes:
        hits: Number of :meth:`get` calls answered from the cache.
        misses: Number of :meth:`get` calls that found nothing.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, Any]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str) -> DesignPoint | None:
        """The cached point for ``key``, counting a hit or a miss (both
        on this instance and on the ``dse.prediction_cache.*`` registry
        aggregates)."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                _AGG_MISSES.increment()
                return None
            self.hits += 1
            _AGG_HITS.increment()
        return DesignPoint.from_dict(payload)

    def put(self, key: str, point: DesignPoint) -> None:
        """Store ``point`` under ``key`` (overwrites silently)."""
        payload = point.to_dict()
        with self._lock:
            self._entries[key] = payload

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters for logs and tests."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries)}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (entries sorted for stable diffs)."""
        with self._lock:
            return {
                "version": CACHE_FORMAT_VERSION,
                "entries": {key: self._entries[key]
                            for key in sorted(self._entries)},
            }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PredictionCache":
        """Rebuild a cache from :meth:`to_dict` output."""
        version = payload.get("version")
        if version != CACHE_FORMAT_VERSION:
            raise ConfigError(
                f"prediction cache version {version!r} is not supported "
                f"(expected {CACHE_FORMAT_VERSION})")
        entries = payload.get("entries")
        if not isinstance(entries, Mapping):
            raise ConfigError("prediction cache payload has no entries map")
        cache = cls()
        for key, entry in entries.items():
            DesignPoint.from_dict(entry)  # validate eagerly
            cache._entries[key] = dict(entry)
        return cache

    def save(self, path: str | Path) -> None:
        """Write the cache to a JSON file (parent dirs created).

        The write is atomic (temp file + rename in the target
        directory): checkpoints exist so interrupted sweeps can resume,
        so an interrupt landing mid-write must not corrupt the file.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(dir=target.parent,
                                             prefix=f".{target.name}.")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(self.to_dict(), stream, indent=1)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except FileNotFoundError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "PredictionCache":
        """Read a cache from a JSON file.

        Raises:
            ConfigError: On malformed JSON or an unsupported version.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"prediction cache {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def merge(self, other: "PredictionCache") -> int:
        """Absorb another cache's entries; returns how many were new."""
        with other._lock:
            incoming = {key: dict(entry)
                        for key, entry in other._entries.items()}
        added = 0
        with self._lock:
            for key, entry in incoming.items():
                if key not in self._entries:
                    added += 1
                self._entries[key] = entry
        return added
