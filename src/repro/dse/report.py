"""DSE result export: CSV / markdown tables for downstream tooling.

A full Figure-10-style sweep yields hundreds of design points; this
module renders them for spreadsheets, notebooks, and docs without
pulling plotting dependencies into the core library.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.cost.pricing import DEFAULT_PRICING, PricingModel
from repro.dse.explorer import DesignPoint, DSEResult
from repro.errors import ConfigError

CSV_COLUMNS = ("tensor", "data", "pipeline", "micro_batch", "num_gpus",
               "feasible", "iteration_time_s", "utilization_pct",
               "memory_gib", "cost_per_iteration_usd", "infeasible_reason")


def _has_interleaving(points) -> bool:
    """Whether any plan uses virtual pipelining (adds a ``v`` column;
    plain sweeps keep the exact pre-interleaving table layout)."""
    return any(point.plan.virtual_stages > 1 for point in points)


def _point_row(point: DesignPoint, pricing: PricingModel) -> dict:
    plan = point.plan
    return {
        "tensor": plan.tensor,
        "data": plan.data,
        "pipeline": plan.pipeline,
        "micro_batch": plan.micro_batch_size,
        "virtual_stages": plan.virtual_stages,
        "num_gpus": point.num_gpus,
        "feasible": point.feasible,
        "iteration_time_s": (f"{point.iteration_time:.6f}"
                             if point.feasible else ""),
        "utilization_pct": (f"{100 * point.utilization:.3f}"
                            if point.feasible else ""),
        "memory_gib": f"{point.memory_gib:.2f}" if point.feasible else "",
        "cost_per_iteration_usd": (
            f"{point.cost_per_iteration(pricing):.4f}"
            if point.feasible else ""),
        "infeasible_reason": point.infeasible_reason,
    }


def to_csv(result: DSEResult, *, include_infeasible: bool = False,
           pricing: PricingModel = DEFAULT_PRICING) -> str:
    """Render a DSE result as CSV text."""
    points = (result.points if include_infeasible
              else result.feasible_points)
    columns = CSV_COLUMNS
    if _has_interleaving(points):
        columns = columns[:4] + ("virtual_stages",) + columns[4:]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns,
                            extrasaction="ignore")
    writer.writeheader()
    for point in points:
        writer.writerow(_point_row(point, pricing))
    return buffer.getvalue()


def save_csv(result: DSEResult, path: str | Path, *,
             include_infeasible: bool = False,
             pricing: PricingModel = DEFAULT_PRICING) -> None:
    """Write :func:`to_csv` output to a file."""
    Path(path).write_text(to_csv(result,
                                 include_infeasible=include_infeasible,
                                 pricing=pricing))


def to_markdown(result: DSEResult, *, top: int = 10,
                sort_by: str = "cost",
                pricing: PricingModel = DEFAULT_PRICING) -> str:
    """Markdown table of the best ``top`` feasible points.

    ``sort_by`` is ``"cost"`` (cost per iteration) or ``"time"``
    (iteration time).
    """
    if sort_by == "cost":
        key = lambda p: p.cost_per_iteration(pricing)  # noqa: E731
    elif sort_by == "time":
        key = lambda p: p.iteration_time  # noqa: E731
    else:
        raise ConfigError(f"unknown sort key {sort_by!r}")
    points = sorted(result.feasible_points, key=key)[:top]
    interleaved = _has_interleaving(points)
    if interleaved:
        lines = ["| (t, d, p) | m | v | GPUs | iter (s) | util % | $/iter |",
                 "|---|---|---|---|---|---|---|"]
    else:
        lines = ["| (t, d, p) | m | GPUs | iter (s) | util % | $/iter |",
                 "|---|---|---|---|---|---|"]
    for point in points:
        plan = point.plan
        v_cell = f"| {plan.virtual_stages} " if interleaved else ""
        lines.append(
            f"| {plan.way} | {plan.micro_batch_size} {v_cell}"
            f"| {point.num_gpus} "
            f"| {point.iteration_time:.2f} "
            f"| {100 * point.utilization:.1f} "
            f"| {point.cost_per_iteration(pricing):.2f} |")
    return "\n".join(lines)


SERVING_CSV_COLUMNS = ("tensor", "data", "pipeline", "micro_batch",
                       "num_gpus", "feasible", "ttft_s", "tpot_s",
                       "tokens_per_s", "memory_gib",
                       "cost_per_million_tokens_usd", "infeasible_reason")


def _serving_row(point: DesignPoint, pricing: PricingModel) -> dict:
    plan = point.plan
    return {
        "tensor": plan.tensor,
        "data": plan.data,
        "pipeline": plan.pipeline,
        "micro_batch": plan.micro_batch_size,
        "num_gpus": point.num_gpus,
        "feasible": point.feasible,
        "ttft_s": f"{point.ttft_s:.6f}" if point.feasible else "",
        "tpot_s": f"{point.tpot_s:.6f}" if point.feasible else "",
        "tokens_per_s": (f"{point.tokens_per_s:.1f}"
                         if point.feasible else ""),
        "memory_gib": f"{point.memory_gib:.2f}" if point.feasible else "",
        "cost_per_million_tokens_usd": (
            f"{point.cost_per_million_tokens(pricing):.4f}"
            if point.feasible else ""),
        "infeasible_reason": point.infeasible_reason,
    }


def to_serving_csv(result: DSEResult, *, include_infeasible: bool = False,
                   pricing: PricingModel = DEFAULT_PRICING) -> str:
    """Render a serving-sweep DSE result as CSV text."""
    points = (result.points if include_infeasible
              else result.feasible_points)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=SERVING_CSV_COLUMNS,
                            extrasaction="ignore")
    writer.writeheader()
    for point in points:
        writer.writerow(_serving_row(point, pricing))
    return buffer.getvalue()


def save_serving_csv(result: DSEResult, path: str | Path, *,
                     include_infeasible: bool = False,
                     pricing: PricingModel = DEFAULT_PRICING) -> None:
    """Write :func:`to_serving_csv` output to a file."""
    Path(path).write_text(to_serving_csv(
        result, include_infeasible=include_infeasible, pricing=pricing))


def to_serving_markdown(result: DSEResult, *, top: int = 10,
                        sort_by: str = "cost",
                        pricing: PricingModel = DEFAULT_PRICING) -> str:
    """Markdown table of the best ``top`` feasible serving points.

    ``sort_by`` is ``"cost"`` (cost per million output tokens),
    ``"throughput"`` (tokens/s, descending), or ``"latency"`` (time per
    output token).
    """
    if sort_by == "cost":
        key = lambda p: p.cost_per_million_tokens(pricing)  # noqa: E731
    elif sort_by == "throughput":
        key = lambda p: -p.tokens_per_s  # noqa: E731
    elif sort_by == "latency":
        key = lambda p: p.tpot_s  # noqa: E731
    else:
        raise ConfigError(f"unknown sort key {sort_by!r}")
    points = sorted((p for p in result.feasible_points
                     if p.workload == "inference"), key=key)[:top]
    lines = ["| (t, d, p) | m | GPUs | TTFT (ms) | TPOT (ms) "
             "| tok/s | $/Mtok |",
             "|---|---|---|---|---|---|---|"]
    for point in points:
        plan = point.plan
        lines.append(
            f"| {plan.way} | {plan.micro_batch_size} "
            f"| {point.num_gpus} "
            f"| {1e3 * point.ttft_s:.2f} "
            f"| {1e3 * point.tpot_s:.3f} "
            f"| {point.tokens_per_s:.0f} "
            f"| {point.cost_per_million_tokens(pricing):.3f} |")
    return "\n".join(lines)


def load_csv(path: str | Path) -> list[dict]:
    """Read back a saved DSE CSV (returns raw string-valued rows)."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))
