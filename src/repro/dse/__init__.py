"""Design-space exploration over (t, d, p, m)-way 3D parallelism."""

from repro.dse.cache import PredictionCache, fingerprint
from repro.dse.explorer import DesignPoint, DesignSpaceExplorer, DSEResult
from repro.dse.parallel import ParallelExplorer
from repro.dse.report import load_csv, save_csv, to_csv, to_markdown
from repro.dse.space import (GridAxes, SearchSpace, count_plans, divisors,
                             enumerate_plans, pipeline_candidates,
                             powers_of_two, tensor_candidates)

__all__ = [
    "PredictionCache",
    "ParallelExplorer",
    "fingerprint",
    "load_csv",
    "save_csv",
    "to_csv",
    "to_markdown",
    "DesignPoint",
    "DesignSpaceExplorer",
    "DSEResult",
    "GridAxes",
    "SearchSpace",
    "count_plans",
    "divisors",
    "enumerate_plans",
    "pipeline_candidates",
    "powers_of_two",
    "tensor_candidates",
]
