"""Inference (serving) workload: prefill + decode phase model.

An LLM serving step decomposes into two phases with very different
arithmetic intensity (Charon, PAPERS.md; the vLLM serving guidance in
SNIPPETS.md):

* **prefill** — the whole prompt runs through one full-sequence forward
  pass (compute-bound; its makespan is the time-to-first-token);
* **decode** — each output token runs a single-token forward pass whose
  attention reads the accumulated KV cache (memory-bound; its makespan
  is the time-per-output-token).

The workload is *per replica*: ``batch_size`` sequences are served
together by one pipeline of ``t x p`` GPUs, and data parallelism
(``plan.data``) replicates that pipeline into independent servers —
more TP helps latency, more replicas help throughput, which is exactly
the trade-off the serving DSE sweeps.

Internally an inference workload borrows the training machinery by
synthesising a proxy :class:`TrainingConfig` whose per-replica batch
equals ``batch_size``; plan validation, micro-batching, and the
pipeline schedules then apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.config.parallelism import TrainingConfig
from repro.errors import ConfigError
from repro.workload.base import INFERENCE

#: Phase tags. These double as the task ``kind`` of inference compute
#: tasks, so exported Chrome traces carry ``prefill``/``decode`` as
#: event categories.
PREFILL = "prefill"
DECODE = "decode"
INFERENCE_PHASES = (PREFILL, DECODE)


@dataclass(frozen=True)
class InferenceWorkload:
    """One serving batch: prompt ingestion plus token generation.

    Attributes:
        batch_size: Sequences served concurrently per replica.
        prompt_len: Prompt tokens per sequence (prefill length).
        gen_len: Output tokens generated per sequence.
        continuous_batching: Model the steady state of a continuously
            batched server (requests at staggered generation depths, so
            the representative decode KV length is the *mean*
            ``prompt + gen/2``) instead of a synchronised static batch
            (every sequence at full depth, ``prompt + gen``).
    """

    batch_size: int
    prompt_len: int
    gen_len: int
    continuous_batching: bool = False

    @property
    def kind(self) -> str:
        return INFERENCE

    def __post_init__(self) -> None:
        for field in ("batch_size", "prompt_len", "gen_len"):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(
                    f"{field} must be a positive int, got {value!r}")

    # ------------------------------------------------------------------
    # Derived lengths
    # ------------------------------------------------------------------
    @property
    def max_kv_length(self) -> int:
        """KV entries per sequence at the end of generation — the
        length the KV cache must be provisioned for (memory bound)."""
        return self.prompt_len + self.gen_len

    @property
    def decode_kv_length(self) -> int:
        """Representative KV length of one decode step (latency model).

        Continuous batching keeps the batch at staggered depths, so the
        steady-state step reads the mean KV length; a static batch
        is gated by its deepest (final) step.
        """
        if self.continuous_batching:
            return self.prompt_len + self.gen_len // 2
        return self.prompt_len + self.gen_len

    @property
    def tokens_per_request(self) -> int:
        """Output tokens produced per sequence (throughput accounting)."""
        return self.gen_len

    def training_proxy(self, data_parallel: int) -> TrainingConfig:
        """Proxy :class:`TrainingConfig` for plan validation/micro-batching.

        The global batch is ``batch_size * data_parallel`` so each
        replica serves exactly ``batch_size`` sequences and the existing
        ``d | B`` / ``m | B/d`` divisibility rules carry over unchanged.
        """
        if data_parallel < 1:
            raise ConfigError("data_parallel must be >= 1")
        return TrainingConfig(
            global_batch_size=self.batch_size * data_parallel)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": INFERENCE,
            "batch_size": self.batch_size,
            "prompt_len": self.prompt_len,
            "gen_len": self.gen_len,
        }
        if self.continuous_batching:
            payload["continuous_batching"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InferenceWorkload":
        if payload.get("kind", INFERENCE) != INFERENCE:
            raise ConfigError(
                f"not an inference workload: {payload.get('kind')!r}")
        try:
            return cls(batch_size=payload["batch_size"],
                       prompt_len=payload["prompt_len"],
                       gen_len=payload["gen_len"],
                       continuous_batching=bool(
                           payload.get("continuous_batching", False)))
        except KeyError as exc:
            raise ConfigError(
                f"inference workload missing field {exc.args[0]!r}") from exc
