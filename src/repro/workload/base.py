"""Workload abstraction: what one simulated "step" means.

vTrain's original scope is one *training* iteration; the workload layer
generalises the simulator input so the same device, network, and memory
models can also answer serving questions (Charon's unified
training + inference direction, PAPERS.md). A workload names the kind
of step being simulated and carries its shape knobs:

* :class:`TrainingWorkload` wraps today's :class:`TrainingConfig` path
  bit-identically — passing it is exactly equivalent to the classic
  ``predict(model, plan, training)`` call;
* :class:`~repro.workload.inference.InferenceWorkload` describes a
  serving batch (prompt/generation lengths, continuous batching) and is
  simulated as a prefill graph plus a steady-state decode-step graph.

Serialisation follows the repo's omit-default discipline: the training
workload is the default everywhere, so configs, fingerprints, and cache
entries only mention a workload when it is *not* training — which keeps
every pre-workload fingerprint and checkpoint byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Protocol, runtime_checkable

from repro.config.parallelism import TrainingConfig
from repro.errors import ConfigError

#: Workload kind tags (the ``kind`` discriminator in serialised form).
TRAINING = "training"
INFERENCE = "inference"


@runtime_checkable
class Workload(Protocol):
    """Anything the simulator can treat as one step of work."""

    @property
    def kind(self) -> str:
        """Discriminator tag (``"training"`` or ``"inference"``)."""
        ...

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form carrying the ``kind`` tag."""
        ...


@dataclass(frozen=True)
class TrainingWorkload:
    """The classic one-training-iteration workload.

    Wrapping a :class:`TrainingConfig` in this class and passing it via
    ``predict(workload=...)`` dispatches to the exact same code path as
    the positional ``training`` argument — graphs, fingerprints, and
    predictions are bit-identical.
    """

    training: TrainingConfig

    @property
    def kind(self) -> str:
        return TRAINING

    def to_dict(self) -> dict[str, Any]:
        return {"kind": TRAINING, "training": self.training.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrainingWorkload":
        if payload.get("kind", TRAINING) != TRAINING:
            raise ConfigError(
                f"not a training workload: {payload.get('kind')!r}")
        return cls(training=TrainingConfig.from_dict(payload["training"]))
