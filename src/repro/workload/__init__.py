"""Workload layer: training and inference step descriptions.

See :mod:`repro.workload.base` for the protocol and the bit-identical
training wrapper, :mod:`repro.workload.inference` for the serving
(prefill/decode) workload.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ConfigError
from repro.workload.base import (INFERENCE, TRAINING, TrainingWorkload,
                                 Workload)
from repro.workload.inference import (DECODE, INFERENCE_PHASES,
                                      InferenceWorkload, PREFILL)

__all__ = [
    "DECODE",
    "INFERENCE",
    "INFERENCE_PHASES",
    "InferenceWorkload",
    "PREFILL",
    "TRAINING",
    "TrainingWorkload",
    "Workload",
    "workload_from_dict",
]


def workload_from_dict(
        payload: Mapping[str, Any] | None) -> InferenceWorkload | None:
    """Parse a serialised workload envelope.

    Returns ``None`` for the default training workload (absent payload
    or ``kind: training`` — training shape lives in the separate
    :class:`~repro.config.parallelism.TrainingConfig`), an
    :class:`InferenceWorkload` for ``kind: inference``.
    """
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise ConfigError(f"workload must be a mapping, got {payload!r}")
    kind = payload.get("kind", TRAINING)
    if kind == TRAINING:
        return None
    if kind == INFERENCE:
        return InferenceWorkload.from_dict(payload)
    raise ConfigError(f"unknown workload kind {kind!r}")
