"""Accuracy metrics for predicted-vs-measured validation (Figure 9).

The paper reports mean absolute percentage error (MAPE) and the
coefficient of determination (R^2) of predicted against measured
single-iteration training times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError


def mape(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute percentage error, in percent."""
    measured_arr, predicted_arr = _paired(measured, predicted)
    if np.any(measured_arr <= 0):
        raise ConfigError("measured values must be positive for MAPE")
    return float(100.0 * np.mean(np.abs(predicted_arr - measured_arr)
                                 / measured_arr))


def r_squared(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination of predictions against measurements."""
    measured_arr, predicted_arr = _paired(measured, predicted)
    residual = float(np.sum((measured_arr - predicted_arr) ** 2))
    total = float(np.sum((measured_arr - np.mean(measured_arr)) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def mean_signed_error(measured: Sequence[float],
                      predicted: Sequence[float]) -> float:
    """Signed mean percentage error; negative means underestimation.

    The paper notes vTrain *underestimates* tensor-parallel-heavy
    configurations (isolated NCCL profiles are optimistic); this metric
    makes that bias visible.
    """
    measured_arr, predicted_arr = _paired(measured, predicted)
    if np.any(measured_arr <= 0):
        raise ConfigError("measured values must be positive")
    return float(100.0 * np.mean((predicted_arr - measured_arr)
                                 / measured_arr))


@dataclass(frozen=True)
class Accuracy:
    """Summary statistics of one validation campaign."""

    num_points: int
    mape: float
    r_squared: float
    mean_signed_error: float

    def describe(self) -> str:
        """One-line report matching the paper's phrasing."""
        return (f"{self.num_points} points: MAPE {self.mape:.2f}% "
                f"(R^2 = {self.r_squared:.4f}, bias "
                f"{self.mean_signed_error:+.2f}%)")


def accuracy(measured: Sequence[float],
             predicted: Sequence[float]) -> Accuracy:
    """Compute the full accuracy summary for one campaign."""
    measured_arr, _ = _paired(measured, predicted)
    return Accuracy(num_points=len(measured_arr),
                    mape=mape(measured, predicted),
                    r_squared=r_squared(measured, predicted),
                    mean_signed_error=mean_signed_error(measured, predicted))


def _paired(measured: Sequence[float], predicted: Sequence[float],
            ) -> tuple[np.ndarray, np.ndarray]:
    measured_arr = np.asarray(measured, dtype=float)
    predicted_arr = np.asarray(predicted, dtype=float)
    if measured_arr.shape != predicted_arr.shape:
        raise ConfigError("measured/predicted lengths differ")
    if measured_arr.size == 0:
        raise ConfigError("need at least one validation point")
    return measured_arr, predicted_arr
