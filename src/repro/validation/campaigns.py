"""Validation campaigns: the Figure 9 predicted-vs-measured studies.

* **Single-node** (Figure 9a): LLM configurations and (t, d, p, m) plans
  on one 8-GPU node — the paper collected 1,440 data points on an AWS
  p4d instance. The generator sweeps hidden sizes, depths, sequence
  lengths, every 8-GPU plan shape, and micro-batch sizes, yielding the
  same order of magnitude of valid points.
* **Multi-node** (Figure 9b): Megatron-LM-scale models on 64-512 GPUs —
  the paper secured 116 measurements from an industrial cluster. The
  generator walks the Megatron scale-down zoo across 8/16/32/64-node
  systems and plan shapes, then truncates to 116 points
  deterministically.

``run_campaign`` evaluates each point with vTrain (prediction) and the
testbed emulator (measurement) and reports MAPE / R^2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, RecomputeMode,
                                      TrainingConfig, validate_plan)
from repro.config.presets import (MEGATRON_18_4B, MEGATRON_39_1B,
                                  MEGATRON_76_1B, MEGATRON_145_6B)
from repro.config.system import SystemConfig, multi_node, single_node
from repro.errors import InfeasibleConfigError
from repro.graph.builder import Granularity
from repro.memory.footprint import fits_in_memory
from repro.sim.estimator import VTrain
from repro.testbed.emulator import TestbedConfig, TestbedEmulator
from repro.validation.metrics import Accuracy, accuracy


@dataclass(frozen=True)
class ValidationPoint:
    """One predicted-vs-measured experiment."""

    model: ModelConfig
    plan: ParallelismConfig
    training: TrainingConfig
    num_nodes: int

    def system(self, gpus_per_node: int = 8) -> SystemConfig:
        """The training system this point runs on."""
        if self.num_nodes == 1:
            return single_node(gpus_per_node)
        return multi_node(self.num_nodes, gpus_per_node=gpus_per_node)


@dataclass
class CampaignResult:
    """Outcome of one validation campaign."""

    points: list[ValidationPoint] = field(default_factory=list)
    predicted: list[float] = field(default_factory=list)
    measured: list[float] = field(default_factory=list)

    @property
    def accuracy(self) -> Accuracy:
        """MAPE / R^2 summary over the campaign."""
        return accuracy(self.measured, self.predicted)

    def scatter(self) -> list[tuple[float, float]]:
        """(measured, predicted) pairs — the Figure 9 scatter plot."""
        return list(zip(self.measured, self.predicted))


# ---------------------------------------------------------------------------
# Point generators
# ---------------------------------------------------------------------------

#: Every (t, d, p) factorisation of 8 GPUs (single-node plans).
SINGLE_NODE_WAYS = ((1, 8, 1), (2, 4, 1), (4, 2, 1), (8, 1, 1),
                    (1, 4, 2), (2, 2, 2), (4, 1, 2),
                    (1, 2, 4), (2, 1, 4), (1, 1, 8))


def single_node_points(*, limit: int | None = None) -> list[ValidationPoint]:
    """The Figure 9(a) campaign: ~1,440 single-node configurations."""
    points: list[ValidationPoint] = []
    system = single_node()
    hidden_sizes = (1024, 1536, 2048, 2560, 3072, 4096)
    depths = (2, 4, 8, 16)
    seq_lengths = (1024, 2048)
    micro_batches = (1, 2, 4)
    global_batch = 64
    for h in hidden_sizes:
        for num_layers in depths:
            for s in seq_lengths:
                model = ModelConfig(hidden_size=h, num_layers=num_layers,
                                    seq_length=s, num_heads=max(8, h // 128),
                                    name=f"val-{h}x{num_layers}x{s}")
                for way in SINGLE_NODE_WAYS:
                    t, d, p = way
                    if num_layers % p or model.num_heads % t:
                        continue
                    for m in micro_batches:
                        plan = ParallelismConfig(
                            tensor=t, data=d, pipeline=p, micro_batch_size=m,
                            recompute=RecomputeMode.SELECTIVE)
                        training = TrainingConfig(global_batch_size=global_batch)
                        if not _valid(model, plan, training, system):
                            continue
                        points.append(ValidationPoint(model, plan, training,
                                                      num_nodes=1))
                        if limit is not None and len(points) >= limit:
                            return points
    return points


def multi_node_points(*, limit: int | None = 116) -> list[ValidationPoint]:
    """The Figure 9(b) campaign: 116 points on 64-512 GPU systems.

    Configurations follow the Megatron-LM model zoo ([40]), the same
    source the paper drew its multi-node validation models from, with
    each model's published global batch size. The full valid set is
    generated first, then subsampled evenly (deterministically) so the
    116 points span all four models, node counts, and plan shapes — and
    with them an iteration-time range from a couple of seconds to over a
    minute, matching the spread of the paper's scatter plot.
    """
    all_points: list[ValidationPoint] = []
    recipes = (
        (MEGATRON_18_4B, 1024),
        (MEGATRON_39_1B, 1536),
        (MEGATRON_76_1B, 1792),
        (MEGATRON_145_6B, 2048),
    )
    node_counts = (8, 16, 32, 64)
    tensor_degrees = (4, 8)
    pipeline_degrees = (1, 2, 4, 8, 16)
    micro_batches = (1, 2, 4, 8)
    for model, global_batch in recipes:
        training = TrainingConfig(global_batch_size=global_batch)
        for num_nodes in node_counts:
            num_gpus = num_nodes * 8
            system = multi_node(num_nodes)
            for t in tensor_degrees:
                for p in pipeline_degrees:
                    if model.num_layers % p or num_gpus % (t * p):
                        continue
                    d = num_gpus // (t * p)
                    if d < 4 or global_batch % d:
                        # d < 4 under these batch sizes yields multi-minute
                        # iterations far outside the paper's measured range.
                        continue
                    for m in micro_batches:
                        # gradient_bucketing=False: the multi-node runs
                        # use Megatron-LM ([40]), which reduces gradients
                        # in one exposed All-Reduce at the end of the
                        # backward pass (the Figure 5(b) pattern), unlike
                        # PyTorch DDP's overlapped buckets.
                        plan = ParallelismConfig(
                            tensor=t, data=d, pipeline=p, micro_batch_size=m,
                            gradient_bucketing=False,
                            recompute=RecomputeMode.SELECTIVE)
                        if not _valid(model, plan, training, system):
                            continue
                        all_points.append(
                            ValidationPoint(model, plan, training,
                                            num_nodes=num_nodes))
    if limit is None or len(all_points) <= limit:
        return all_points
    step = len(all_points) / limit
    return [all_points[int(i * step)] for i in range(limit)]


def _valid(model: ModelConfig, plan: ParallelismConfig,
           training: TrainingConfig, system: SystemConfig) -> bool:
    try:
        validate_plan(model, plan, training, plan.total_gpus)
    except InfeasibleConfigError:
        return False
    return fits_in_memory(model, plan, training, system)


# ---------------------------------------------------------------------------
# Campaign runner
# ---------------------------------------------------------------------------

def run_campaign(points: Sequence[ValidationPoint], *,
                 granularity: Granularity = Granularity.OPERATOR,
                 testbed_config: TestbedConfig = TestbedConfig(),
                 ) -> CampaignResult:
    """Predict and measure every point; returns the paired results.

    One vTrain instance and one testbed emulator are shared per system
    size, so profiling cost is amortised exactly as in a real campaign.
    """
    result = CampaignResult()
    simulators: dict[int, VTrain] = {}
    testbeds: dict[int, TestbedEmulator] = {}
    for point in points:
        system = point.system()
        key = point.num_nodes
        if key not in simulators:
            simulators[key] = VTrain(system, granularity=granularity,
                                     check_memory_feasibility=False)
            testbeds[key] = TestbedEmulator(system, config=testbed_config,
                                            granularity=granularity)
        prediction = simulators[key].predict(point.model, point.plan,
                                             point.training)
        measured = testbeds[key].measure_time(point.model, point.plan,
                                              point.training)
        result.points.append(point)
        result.predicted.append(prediction.iteration_time)
        result.measured.append(measured)
    return result
