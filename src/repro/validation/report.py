"""Validation error breakdowns (the paper's Section IV error analysis).

Beyond the headline MAPE/R², the paper analyses *where* the error comes
from: tensor-parallel-heavy configurations are underestimated the most
(frequent intra-node All-Reduces meet interference), and multi-node
error grows with scale. This module slices a campaign result along those
axes so the analysis is reproducible rather than anecdotal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.validation.campaigns import CampaignResult, ValidationPoint
from repro.validation.metrics import Accuracy, accuracy


@dataclass(frozen=True)
class ErrorSlice:
    """Accuracy of one subgroup of a campaign."""

    label: str
    accuracy: Accuracy

    def as_row(self) -> dict[str, float | str]:
        """Flat dict for table printing."""
        return {
            "slice": self.label,
            "points": self.accuracy.num_points,
            "mape_pct": self.accuracy.mape,
            "bias_pct": self.accuracy.mean_signed_error,
        }


def slice_by(result: CampaignResult,
             key: Callable[[ValidationPoint], object],
             label: str = "") -> list[ErrorSlice]:
    """Group a campaign's points by ``key`` and score each group."""
    if len(result.points) != len(result.predicted):
        raise ConfigError("campaign result is incomplete")
    groups: dict[object, tuple[list[float], list[float]]] = {}
    for point, predicted, measured in zip(result.points, result.predicted,
                                          result.measured):
        bucket = groups.setdefault(key(point), ([], []))
        bucket[0].append(measured)
        bucket[1].append(predicted)
    slices = []
    for value in sorted(groups, key=str):
        measured_vals, predicted_vals = groups[value]
        slices.append(ErrorSlice(
            label=f"{label}{value}",
            accuracy=accuracy(measured_vals, predicted_vals)))
    return slices


def by_tensor_degree(result: CampaignResult) -> list[ErrorSlice]:
    """Error vs tensor-parallel degree (the paper's TP-heavy finding)."""
    return slice_by(result, lambda p: p.plan.tensor, label="t=")


def by_data_degree(result: CampaignResult) -> list[ErrorSlice]:
    """Error vs data-parallel degree."""
    return slice_by(result, lambda p: p.plan.data, label="d=")


def by_pipeline_degree(result: CampaignResult) -> list[ErrorSlice]:
    """Error vs pipeline depth."""
    return slice_by(result, lambda p: p.plan.pipeline, label="p=")


def by_node_count(result: CampaignResult) -> list[ErrorSlice]:
    """Error vs system scale (multi-node campaigns)."""
    return slice_by(result, lambda p: p.num_nodes, label="nodes=")


def by_model(result: CampaignResult) -> list[ErrorSlice]:
    """Error vs model architecture."""
    return slice_by(result, lambda p: p.model.name or "unnamed", label="")


def worst_points(result: CampaignResult, count: int = 10,
                 ) -> list[tuple[ValidationPoint, float]]:
    """The ``count`` points with the largest relative error."""
    if count <= 0:
        raise ConfigError("count must be positive")
    scored = []
    for point, predicted, measured in zip(result.points, result.predicted,
                                          result.measured):
        relative = abs(predicted - measured) / measured
        scored.append((point, relative))
    scored.sort(key=lambda pair: -pair[1])
    return scored[:count]


def tp_underestimation_gap(result: CampaignResult) -> float:
    """Bias gap between the highest and lowest tensor degree slices.

    Negative values mean high-TP plans are underestimated more than
    low-TP plans — the sign the paper reports. Returns 0.0 when the
    campaign has a single tensor degree.
    """
    slices = by_tensor_degree(result)
    if len(slices) < 2:
        return 0.0
    return (slices[-1].accuracy.mean_signed_error
            - slices[0].accuracy.mean_signed_error)


def render_report(result: CampaignResult, *, title: str = "campaign",
                  ) -> str:
    """Human-readable multi-section error report."""
    lines = [f"== validation report: {title} ==",
             result.accuracy.describe(), ""]
    for heading, slicer in (("by tensor degree", by_tensor_degree),
                            ("by pipeline degree", by_pipeline_degree),
                            ("by node count", by_node_count)):
        slices = slicer(result)
        if len(slices) < 2:
            continue
        lines.append(f"-- {heading}")
        for item in slices:
            row = item.as_row()
            lines.append(f"  {row['slice']:<10} n={row['points']:<5} "
                         f"MAPE {row['mape_pct']:6.2f}%  "
                         f"bias {row['bias_pct']:+6.2f}%")
        lines.append("")
    return "\n".join(lines)
