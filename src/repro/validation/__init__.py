"""Validation campaigns and accuracy metrics (Figure 9)."""

from repro.validation.campaigns import (CampaignResult, ValidationPoint,
                                        multi_node_points, run_campaign,
                                        single_node_points)
from repro.validation.report import (ErrorSlice, by_data_degree,
                                     by_model, by_node_count,
                                     by_pipeline_degree,
                                     by_tensor_degree, render_report,
                                     slice_by, tp_underestimation_gap,
                                     worst_points)
from repro.validation.metrics import (Accuracy, accuracy, mape,
                                      mean_signed_error, r_squared)

__all__ = [
    "ErrorSlice",
    "by_data_degree",
    "by_model",
    "by_node_count",
    "by_pipeline_degree",
    "by_tensor_degree",
    "render_report",
    "slice_by",
    "tp_underestimation_gap",
    "worst_points",
    "Accuracy",
    "CampaignResult",
    "ValidationPoint",
    "accuracy",
    "mape",
    "mean_signed_error",
    "multi_node_points",
    "r_squared",
    "run_campaign",
    "single_node_points",
]
