"""SLO tracking for the serving tier: latency objective + error budget.

An :class:`SLOConfig` states the promise the daemon is held to — a
served-predict p99 latency objective and an availability objective
(fraction of requests answered without error) over a rolling window.
:class:`SLOTracker` evaluates the promise against the time-series ring
(:mod:`repro.obs.timeseries`): windowed counts come from the ring's
counter samples, so the verdict reflects the configured window, not
lifetime-since-boot averages that bury incidents.

Error-budget arithmetic is the standard SRE formulation: with an
availability objective ``a``, the budget for ``N`` windowed requests is
``(1 - a) * N`` errors; *consumed* is the fraction of that budget the
window's errors ate, and *burn rate* is the window error ratio divided
by the allowed ratio — ``1.0`` means "exactly on budget", above it the
budget is burning faster than it accrues.

Each evaluation also publishes ``serve.slo.*`` gauges on the registry
(latency-objective compliance, budget remaining, burn rate), so SLO
state rides along in every snapshot, Prometheus scrape, and
``repro top`` frame without a second code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SLOConfig:
    """The serving objectives the tracker evaluates.

    Args:
        latency_objective_s: Served-predict p99 must stay at or under
            this many seconds.
        availability_objective: Fraction of requests that must succeed
            (``0.999`` = three nines).
        window_s: Rolling evaluation window in seconds; samples older
            than this are ignored.
    """

    latency_objective_s: float = 0.25
    availability_objective: float = 0.999
    window_s: float = 600.0

    def to_dict(self) -> dict[str, float]:
        return {"latency_objective_s": self.latency_objective_s,
                "availability_objective": self.availability_objective,
                "window_s": self.window_s}


class SLOTracker:
    """Evaluate an :class:`SLOConfig` against time-series samples."""

    def __init__(self, config: SLOConfig,
                 registry: MetricsRegistry | None = None) -> None:
        self.config = config
        self._latency_ok = self._budget = self._burn = None
        if registry is not None:
            self._latency_ok = registry.gauge("serve.slo.latency_ok")
            self._budget = registry.gauge(
                "serve.slo.error_budget_remaining")
            self._burn = registry.gauge("serve.slo.burn_rate")

    def evaluate(self, samples: list[dict[str, Any]]) -> dict[str, Any]:
        """The SLO verdict over the configured window of ``samples``.

        ``samples`` is the time-series ring (oldest first); counts are
        deltas between the window's edge samples. With fewer than two
        in-window samples the verdict is a healthy no-data state (empty
        window, nothing violated).
        """
        config = self.config
        window: list[dict[str, Any]] = []
        if samples:
            horizon = samples[-1]["t_unix"] - config.window_s
            window = [s for s in samples if s["t_unix"] >= horizon]

        requests = errors = 0
        p99_s = 0.0
        if len(window) >= 2:
            requests = window[-1]["requests"] - window[0]["requests"]
            errors = window[-1]["errors"] - window[0]["errors"]
        if window:
            p99_s = max(s["p99_s"] for s in window)

        allowed_ratio = 1.0 - config.availability_objective
        error_ratio = errors / requests if requests > 0 else 0.0
        availability = 1.0 - error_ratio
        budget_errors = allowed_ratio * requests
        consumed = (min(errors / budget_errors, 1.0)
                    if budget_errors > 0 else (1.0 if errors else 0.0))
        burn_rate = (error_ratio / allowed_ratio
                     if allowed_ratio > 0 else 0.0)
        latency_ok = p99_s <= config.latency_objective_s

        if self._latency_ok is not None:
            self._latency_ok.set(1.0 if latency_ok else 0.0)
            self._budget.set(1.0 - consumed)
            self._burn.set(burn_rate)

        return {
            "config": config.to_dict(),
            "window": {"samples": len(window), "requests": requests,
                       "errors": errors},
            "latency": {"objective_s": config.latency_objective_s,
                        "p99_s": p99_s, "ok": latency_ok},
            "availability": {"objective": config.availability_objective,
                             "actual": availability,
                             "ok": availability
                             >= config.availability_objective},
            "error_budget": {"consumed": consumed,
                             "remaining": 1.0 - consumed,
                             "burn_rate": burn_rate},
        }
