"""Process-wide metrics registry: counters, gauges, and histograms.

The engine's many ad-hoc counters (structure-cache hits, prediction-cache
hits, per-instance predict counts) historically lived in scattered dicts
and instance attributes that nothing could aggregate or report. This
module gives them one home: a thread-safe registry of named instruments
that any layer can create cheaply, a :meth:`MetricsRegistry.snapshot`
that serialises the whole state to plain JSON, and a
:meth:`MetricsRegistry.reset` for tests and benchmark harnesses.

Instruments are deliberately minimal:

* :class:`Counter` — a monotonically increasing count (cache hits,
  plans evaluated, scheduler events);
* :class:`Gauge` — a last-value-wins measurement (cache entry counts);
* :class:`Histogram` — a bounded-reservoir distribution with
  count/sum/min/max plus p50/p90/p99 quantiles at snapshot time
  (replay latencies, retime throughput, batch sizes).

Instruments live forever once created (get-or-create by name), so hot
paths hold direct references and pay one lock acquire + integer add per
event — cheap enough to leave the *counters* always on. Span tracing
and histogram observations on the replay hot paths are additionally
gated behind the global enable switch in :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from typing import Any

#: Observations retained per histogram for quantile estimation. Old
#: observations are dropped FIFO; count/sum/min/max remain exact over
#: the full stream.
HISTOGRAM_RESERVOIR = 4096

#: Quantiles reported in snapshots (name -> fraction).
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class Counter:
    """A named, thread-safe, monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the counter (tests and benchmark harnesses)."""
        with self._lock:
            self._value = 0


class Gauge:
    """A named last-value-wins measurement."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        """Most recently set value."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current level of the measured quantity."""
        with self._lock:
            self._value = float(value)

    def reset(self) -> None:
        """Return the gauge to zero."""
        with self._lock:
            self._value = 0.0


class Histogram:
    """A named distribution with exact totals and reservoir quantiles.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    quantiles are computed at snapshot time from the most recent
    :data:`HISTOGRAM_RESERVOIR` observations (nearest-rank on the sorted
    reservoir), which is exact until the reservoir overflows.
    """

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max",
                 "_reservoir")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._reservoir.append(value)
            if len(self._reservoir) > HISTOGRAM_RESERVOIR:
                del self._reservoir[0]

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._count

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile over the current reservoir (0 if empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("quantile fraction must be in [0, 1]")
        with self._lock:
            ordered = sorted(self._reservoir)
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """Snapshot payload: exact totals plus reservoir quantiles."""
        with self._lock:
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
            ordered = sorted(self._reservoir)
        if count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, **{name: 0.0 for name, _ in QUANTILES}}
        payload = {"count": count, "sum": total, "min": lo, "max": hi,
                   "mean": total / count}
        for name, fraction in QUANTILES:
            rank = min(len(ordered) - 1, int(fraction * len(ordered)))
            payload[name] = ordered[rank]
        return payload

    def reset(self) -> None:
        """Drop every observation."""
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")
            self._reservoir.clear()


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted paths (``graph.structure_cache.hits``); the first
    segment is the owning subsystem and doubles as the snapshot's
    grouping key. A name is bound to one instrument type for the life of
    the process — asking for an existing name as a different type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._instrument(name, self._counters, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._instrument(name, self._gauges, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        return self._instrument(name, self._histograms, Histogram)

    def _instrument(self, name: str, table: dict, factory):
        if not name:
            raise ValueError("instrument name must be non-empty")
        with self._lock:
            instrument = table.get(name)
            if instrument is None:
                for other in (self._counters, self._gauges,
                              self._histograms):
                    if other is not table and name in other:
                        raise ValueError(
                            f"metric {name!r} already registered as a "
                            f"different instrument type")
                instrument = table[name] = factory(name)
            return instrument

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every instrument's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: counters[name].value
                         for name in sorted(counters)},
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {name: histograms[name].summary()
                           for name in sorted(histograms)},
        }

    def reset(self) -> None:
        """Zero every instrument (registrations are kept, so references
        held by hot paths stay valid)."""
        with self._lock:
            instruments = (list(self._counters.values())
                           + list(self._gauges.values())
                           + list(self._histograms.values()))
        for instrument in instruments:
            instrument.reset()


def hit_rates(counters: dict[str, int]) -> dict[str, float]:
    """Derive ``<scope>.hit_rate`` entries from ``.hits``/``.misses`` pairs.

    Used by snapshot reporting (``repro stats``): any counter pair
    ``X.hits`` / ``X.misses`` with at least one lookup yields
    ``X.hit_rate = hits / (hits + misses)``.
    """
    rates: dict[str, float] = {}
    for name, hits in counters.items():
        if not name.endswith(".hits"):
            continue
        scope = name[: -len(".hits")]
        misses = counters.get(f"{scope}.misses")
        if misses is None:
            continue
        total = hits + misses
        if total > 0:
            rates[f"{scope}.hit_rate"] = hits / total
    return rates
