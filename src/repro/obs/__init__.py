"""repro.obs — unified observability for the prediction/DSE stack.

One process-wide :class:`~repro.obs.metrics.MetricsRegistry`
(:data:`metrics`) and one :class:`~repro.obs.tracer.SpanTracer`
(:data:`tracer`), behind a global enable switch:

* ``REPRO_OBS=1`` in the environment, or :func:`enable` at runtime;
* disabled by default — a disabled :func:`span` returns a shared no-op
  context manager and :func:`observe`/:func:`set_gauge` return
  immediately, so instrumented hot paths stay within the committed
  perf baselines (enforced by ``benchmarks/bench_sim_speed.py``).

Cache hit/miss/eviction *counters* are always on — they pre-date this
module as bare ints and cost the same — via direct
:meth:`~repro.obs.metrics.MetricsRegistry.counter` references held by
the caches themselves. Everything time-based (spans, histograms,
gauges) is gated.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("replay", tasks=structure.num_tasks):
        result = simulate_retimed(structure, durations)
    obs.observe("sim.replay_s", elapsed)
    print(obs.format_snapshot(obs.snapshot()))

Snapshots serialise to JSON (``repro dse --metrics`` writes one;
``repro stats`` pretty-prints it, deriving cache hit rates from
``*.hits``/``*.misses`` counter pairs).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.obs.context import bind_trace, current_trace_id, new_trace_id
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               hit_rates)
from repro.obs.tracer import ENGINE_PID, NULL_SPAN, Span, SpanTracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Span",
    "SpanTracer", "ENGINE_PID", "metrics", "tracer",
    "enable", "disable", "enabled", "span", "count", "observe",
    "set_gauge", "snapshot", "reset", "save_snapshot", "load_snapshot",
    "format_snapshot", "default_snapshot_path", "hit_rates",
    "bind_trace", "current_trace_id", "new_trace_id",
]

#: Environment variable that enables observability at import time.
ENV_SWITCH = "REPRO_OBS"

#: Environment variable overriding the default snapshot file location.
ENV_SNAPSHOT = "REPRO_OBS_SNAPSHOT"

_DEFAULT_SNAPSHOT = "repro_obs_snapshot.json"

#: The process-wide metrics registry.
metrics = MetricsRegistry()

#: The process-wide span tracer. Its bounded ring reports evictions on
#: the ``obs.spans.dropped`` counter, so a long-lived daemon with
#: tracing enabled shows *that* it is dropping history, not just
#: silently forgetting it.
tracer = SpanTracer()
tracer.on_drop = metrics.counter("obs.spans.dropped").increment

_enabled = os.environ.get(ENV_SWITCH, "").strip().lower() not in (
    "", "0", "false", "off")


def enable() -> None:
    """Turn span tracing and histogram/gauge recording on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn span tracing and histogram/gauge recording off."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether time-based instrumentation is currently recording."""
    return _enabled


def span(name: str, category: str = "engine", **tags: Any):
    """Context manager recording the enclosed block as a tracer span.

    When observability is disabled this returns a shared no-op context
    manager: one function call, no allocation, no clock read.
    """
    if not _enabled:
        return NULL_SPAN
    return tracer.span(name, category, **tags)


def count(name: str, amount: int = 1) -> None:
    """Increment the registry counter ``name`` (always on)."""
    metrics.counter(name).increment(amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` in the registry histogram ``name`` (gated)."""
    if _enabled:
        metrics.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set the registry gauge ``name`` to ``value`` (gated)."""
    if _enabled:
        metrics.gauge(name).set(value)


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def snapshot() -> dict[str, Any]:
    """JSON-ready snapshot of every instrument, plus derived hit rates
    and the span count."""
    snap = metrics.snapshot()
    snap["derived"] = {"hit_rates": hit_rates(snap["counters"])}
    snap["spans_recorded"] = len(tracer.spans)
    snap["enabled"] = _enabled
    return snap


def reset() -> None:
    """Zero every metric and drop recorded spans (enable state kept)."""
    metrics.reset()
    tracer.reset()


def default_snapshot_path() -> Path:
    """Where CLI commands persist/load snapshots by default
    (``REPRO_OBS_SNAPSHOT`` overrides)."""
    return Path(os.environ.get(ENV_SNAPSHOT, _DEFAULT_SNAPSHOT))


def save_snapshot(path: str | Path | None = None) -> Path:
    """Write the current snapshot as JSON; returns the path written."""
    path = Path(path) if path is not None else default_snapshot_path()
    path.write_text(json.dumps(snapshot(), indent=1) + "\n",
                    encoding="utf-8")
    return path


def load_snapshot(path: str | Path | None = None) -> dict[str, Any]:
    """Read back a snapshot written by :func:`save_snapshot`."""
    path = Path(path) if path is not None else default_snapshot_path()
    return json.loads(path.read_text(encoding="utf-8"))


def format_snapshot(snap: dict[str, Any]) -> str:
    """Human-readable rendering of a snapshot (``repro stats``)."""
    lines: list[str] = []
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    rates = snap.get("derived", {}).get("hit_rates")
    if rates is None:
        rates = hit_rates(counters)

    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<42} {counters[name]}")
    if rates:
        lines.append("hit rates")
        for name in sorted(rates):
            lines.append(f"  {name:<42} {100.0 * rates[name]:.1f}%")
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<42} {gauges[name]:g}")
    if histograms:
        lines.append("histograms (p50 / p90 / p99)")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<42} n={h['count']:<6} mean={h['mean']:.6g} "
                f"p50={h['p50']:.6g} p90={h['p90']:.6g} "
                f"p99={h['p99']:.6g}")
    if not lines:
        lines.append("no metrics recorded")
    if "spans_recorded" in snap:
        lines.append(f"spans recorded : {snap['spans_recorded']}")
    return "\n".join(lines)
