"""Prometheus text-exposition rendering of a metrics snapshot.

One function, :func:`render_prometheus`, maps a
:func:`repro.obs.snapshot` payload to the Prometheus text format
(version 0.0.4) so any scrape pipeline can ingest the daemon's
instruments without a client library:

* counters  -> ``# TYPE repro_serve_requests counter`` samples;
* gauges    -> ``gauge`` samples;
* histograms -> ``summary`` families — ``{quantile="0.5|0.9|0.99"}``
  samples from the reservoir quantiles plus exact ``_sum``/``_count``;
* derived ``*.hit_rate`` pairs -> gauges (they are ratios, not
  monotonic counts).

Metric names are sanitised to the Prometheus grammar (dots and any
other illegal characters become underscores) and prefixed with
``repro_`` so a shared Prometheus keeps its namespaces apart. The
daemon serves this text on the ``metrics`` RPC
(``format="prometheus"``) and on ``GET /metrics`` of the optional
``repro serve --metrics-port`` scrape listener.
"""

from __future__ import annotations

import re
from typing import Any

#: Content-Type of the text exposition format, for HTTP scrape replies.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exported metric name starts with this.
NAME_PREFIX = "repro_"

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def metric_name(name: str) -> str:
    """The Prometheus-legal name for a dotted registry name."""
    sanitised = _ILLEGAL.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = f"_{sanitised}"
    return f"{NAME_PREFIX}{sanitised}"


def _format_value(value: float) -> str:
    """Prometheus sample value: repr keeps floats exact, ints stay ints."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """The text exposition of one metrics snapshot.

    Accepts the payload of :func:`repro.obs.snapshot` (or any dict with
    the same ``counters``/``gauges``/``histograms``/``derived`` keys)
    and returns the full scrape body, newline-terminated.
    """
    lines: list[str] = []

    for name in sorted(snapshot.get("counters", {})):
        prom = metric_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(
            f"{prom} {_format_value(snapshot['counters'][name])}")

    gauges = dict(snapshot.get("gauges", {}))
    # Derived hit rates are ratios in [0, 1]: gauges, not counters.
    for name, rate in snapshot.get("derived", {}).get("hit_rates",
                                                      {}).items():
        gauges.setdefault(name, rate)
    for name in sorted(gauges):
        prom = metric_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(gauges[name])}")

    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        prom = metric_name(name)
        lines.append(f"# TYPE {prom} summary")
        for quantile, key in _QUANTILES:
            lines.append(f'{prom}{{quantile="{quantile}"}} '
                         f"{_format_value(summary[key])}")
        lines.append(f"{prom}_sum {_format_value(summary['sum'])}")
        lines.append(f"{prom}_count {_format_value(summary['count'])}")

    return "\n".join(lines) + "\n" if lines else "\n"
