"""Request-scoped telemetry context: trace IDs and their propagation.

A *trace ID* names one logical request end-to-end — minted by whichever
process first sees the request (``ServeClient`` for served predictions,
the daemon itself for requests that arrive without one), carried in the
JSON-RPC envelope across the process boundary, and attached to every
span, access-log line, and dedup/batch decision made on the request's
behalf. The stitcher (:mod:`repro.obs.stitch`) later joins the
client-side and daemon-side span streams on this ID.

Propagation uses a :class:`contextvars.ContextVar`, so the binding is
scoped to the handling thread (or task) and interleaved requests on
other threads never see each other's IDs — pinned by the concurrency
tests in ``tests/test_serve_telemetry.py``. Work handed to *other*
threads (the micro-batcher) does not inherit the binding; those hops
carry the ID explicitly on the job object.
"""

from __future__ import annotations

import binascii
import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

#: Hex characters in a trace ID (64 random bits).
TRACE_ID_CHARS = 16

_TRACE_ID: ContextVar[str | None] = ContextVar("repro_trace_id",
                                               default=None)


def new_trace_id() -> str:
    """A fresh 64-bit random trace ID as lowercase hex."""
    return binascii.hexlify(os.urandom(TRACE_ID_CHARS // 2)).decode("ascii")


def current_trace_id() -> str | None:
    """The trace ID bound to the calling thread/context, if any."""
    return _TRACE_ID.get()


@contextmanager
def bind_trace(trace_id: str | None) -> Iterator[str | None]:
    """Bind ``trace_id`` as the current trace for the enclosed block.

    Spans recorded inside the block (and anything else that consults
    :func:`current_trace_id`) are tagged with it. Binding ``None`` is a
    no-op passthrough that still shields the block from an outer
    binding being mistaken for its own.
    """
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)
