"""Stitch client-side and daemon-side spans into one Chrome trace.

A served prediction crosses two processes: the client (CLI or
:class:`~repro.serve.client.ServeClient`) and the ``repro serve``
daemon. Each side records its own spans as plain *wire span* dicts —
``{"name", "cat", "start_unix", "duration_s", "tags": {...}}`` — with
wall-clock (unix) start times, which is what makes them mergeable: both
processes run on the same machine, so one shared clock orders both
streams. :func:`stitch_trace` lays the two streams out as two Chrome
trace processes (the *real* OS pids, unlike the engine tracer's
synthetic pid 1) and draws flow events across the RPC boundary — the
request arrow from the client call into the daemon's handling, and the
response arrow back — bound together by the request's trace ID.

Opened in Perfetto, a single ``repro predict --connect --trace`` shows
the client call on one track and, inside the daemon's track, how long
the request sat in the micro-batch window (``serve.batch.queued``) and
the batched sweep that served it (``serve.batch.execute``), including
the leader's trace ID when the request coalesced onto another
in-flight computation.

The output conforms to ``schemas/chrome_trace.schema.json`` (which
also admits the ``s``/``t``/``f`` flow phases) — round-trip pinned by
``tests/test_serve_telemetry.py``.
"""

from __future__ import annotations

from typing import Any

_MICROS = 1_000_000.0


def wire_span(name: str, category: str, start_unix: float,
              duration_s: float, **tags: Any) -> dict[str, Any]:
    """Build one wire-format span dict (the cross-process span shape)."""
    return {"name": name, "cat": category, "start_unix": start_unix,
            "duration_s": duration_s, "tags": tags}


def _span_bounds(spans: list[dict[str, Any]]) -> tuple[float, float]:
    starts = [s["start_unix"] for s in spans]
    ends = [s["start_unix"] + s["duration_s"] for s in spans]
    return min(starts), max(ends)


def stitch_trace(*, trace_id: str,
                 client_spans: list[dict[str, Any]],
                 server_spans: list[dict[str, Any]],
                 client_pid: int, server_pid: int,
                 client_name: str = "repro client",
                 server_name: str = "repro serve daemon",
                 metadata: dict[str, Any] | None = None) -> dict[str, Any]:
    """One Chrome-trace payload spanning the client/daemon boundary.

    Timestamps are microseconds from the earliest span start across
    both streams; exact unix starts ride along in each event's ``args``
    (``start_unix``) the same way the simulated-timeline exporter keeps
    exact seconds. When both sides contributed spans, paired flow
    events (``ph: s``/``f``, id = the trace ID) tie the client call to
    the daemon's handling and the daemon's completion back to the
    client, so Perfetto renders the cross-process request as one
    connected flow.
    """
    all_spans = client_spans + server_spans
    if not all_spans:
        raise ValueError(f"trace {trace_id}: no spans to stitch")
    epoch = min(span["start_unix"] for span in all_spans)

    def ts(unix: float) -> float:
        return (unix - epoch) * _MICROS

    events: list[dict[str, Any]] = []
    for pid, name in ((client_pid, client_name), (server_pid, server_name)):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
    for pid, spans in ((client_pid, client_spans),
                       (server_pid, server_spans)):
        for span in spans:
            args = {"start_unix": span["start_unix"]}
            args.update(span.get("tags", {}))
            args.setdefault("trace_id", trace_id)
            events.append({
                "name": span["name"],
                "cat": span.get("cat", "serve"),
                "ph": "X",
                "ts": ts(span["start_unix"]),
                "dur": span["duration_s"] * _MICROS,
                "pid": pid,
                "tid": 0,
                "args": args,
            })

    if client_spans and server_spans:
        client_start, client_end = _span_bounds(client_spans)
        server_start, server_end = _span_bounds(server_spans)
        flows = (
            ("rpc.request", f"{trace_id}:req",
             (client_pid, client_start), (server_pid, server_start)),
            ("rpc.response", f"{trace_id}:res",
             (server_pid, server_end), (client_pid, client_end)),
        )
        for name, flow_id, (src_pid, src_unix), (dst_pid, dst_unix) in flows:
            events.append({"name": name, "cat": "rpc", "ph": "s",
                           "id": flow_id, "ts": ts(src_unix),
                           "pid": src_pid, "tid": 0,
                           "args": {"trace_id": trace_id}})
            events.append({"name": name, "cat": "rpc", "ph": "f",
                           "bp": "e", "id": flow_id, "ts": ts(dst_unix),
                           "pid": dst_pid, "tid": 0,
                           "args": {"trace_id": trace_id}})

    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id} | (metadata or {}),
    }
    return payload
