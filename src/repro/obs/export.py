"""Chrome-trace export of simulated timelines, and combined trace files.

:func:`simulation_trace_events` converts a
:class:`~repro.sim.results.SimulationResult` recorded with
``record_timeline=True`` into Chrome Trace Event Format: each simulated
device becomes a process (pid = :data:`SIM_PID_OFFSET` + device), each
stream a thread, each task kind a category. The exact float
``start``/``finish`` seconds of every event ride along in ``args`` —
microsecond ``ts``/``dur`` fields are lossy under IEEE-754 round-trip,
and tests assert the export reproduces ``SimulationResult.events``
bit-for-bit via :func:`events_from_trace`.

:func:`combined_trace` merges a simulated timeline with the engine's
own spans (:mod:`repro.obs.tracer`, pid :data:`~repro.obs.tracer.ENGINE_PID`)
into one ``{"traceEvents": [...]}`` payload openable in
``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SimulationError
from repro.sim.results import SimulationResult, TimelineEvent

#: Simulated device ``d`` exports as pid ``SIM_PID_OFFSET + d``, keeping
#: the simulated cluster visually separate from the engine's own spans
#: (pid 1) in a combined trace.
SIM_PID_OFFSET = 1000

_MICROS = 1_000_000.0


def _stream_tids(events: list[TimelineEvent]) -> dict[str, int]:
    """Stable stream-name -> tid mapping (sorted for determinism)."""
    return {stream: tid for tid, stream
            in enumerate(sorted({e.stream for e in events}))}


def simulation_trace_events(result: SimulationResult
                            ) -> list[dict[str, Any]]:
    """Chrome trace events for a recorded simulated timeline.

    Devices map to pids, streams to tids, kinds to categories. Raises
    :class:`~repro.errors.SimulationError` when the result has no
    recorded events (``simulate(..., record_timeline=True)`` required).
    """
    if result.events is None:
        raise SimulationError(
            "trace export needs simulate(..., record_timeline=True)")
    events = result.events
    tids = _stream_tids(events)
    devices = sorted({e.device for e in events})

    trace: list[dict[str, Any]] = []
    for device in devices:
        pid = SIM_PID_OFFSET + device
        trace.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"device {device}"},
        })
        for stream, tid in tids.items():
            trace.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": stream},
            })
    for event in events:
        trace.append({
            "name": event.label,
            "cat": event.kind,
            "ph": "X",
            "ts": event.start * _MICROS,
            "dur": event.duration * _MICROS,
            "pid": SIM_PID_OFFSET + event.device,
            "tid": tids[event.stream],
            "args": {
                "task_id": event.task_id,
                "stream": event.stream,
                # Exact values: ts/dur above are scaled and not
                # guaranteed to invert bit-for-bit.
                "start_s": event.start,
                "finish_s": event.finish,
            },
        })
    return trace


def events_from_trace(trace_events: list[dict[str, Any]]
                      ) -> list[TimelineEvent]:
    """Inverse of :func:`simulation_trace_events`.

    Rebuilds :class:`TimelineEvent` objects from the exported "X"
    events in the simulated-device pid range, using the exact
    ``start_s``/``finish_s`` carried in ``args``. Engine spans and
    metadata events are ignored.
    """
    events = []
    for entry in trace_events:
        if entry.get("ph") != "X" or entry.get("pid", 0) < SIM_PID_OFFSET:
            continue
        args = entry["args"]
        events.append(TimelineEvent(
            task_id=args["task_id"],
            device=entry["pid"] - SIM_PID_OFFSET,
            stream=args["stream"],
            kind=entry["cat"],
            label=entry["name"],
            start=args["start_s"],
            finish=args["finish_s"],
        ))
    return events


def combined_trace(result: SimulationResult | None = None,
                   engine_events: list[dict[str, Any]] | None = None,
                   metadata: dict[str, Any] | None = None
                   ) -> dict[str, Any]:
    """One Chrome-trace payload holding timeline and/or engine spans.

    Either part may be omitted; ``metadata`` lands in the payload's
    ``otherData`` (Perfetto shows it in trace info).
    """
    events: list[dict[str, Any]] = []
    if engine_events:
        events.extend(engine_events)
    if result is not None:
        events.extend(simulation_trace_events(result))
    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = metadata
    return payload


def write_trace(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a trace payload as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def load_trace(path: str | Path) -> dict[str, Any]:
    """Read back a trace file written by :func:`write_trace`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
