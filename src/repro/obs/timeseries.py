"""Time-series serving metrics: a bounded ring of periodic samples.

The lifetime aggregates on the :class:`~repro.obs.metrics.MetricsRegistry`
answer "how has the daemon done since it started"; operators diagnosing
a live daemon need "what is it doing *now*, and for the last few
minutes". :class:`ServingTimeSeries` closes that gap: a background
sampler thread snapshots the serving instruments every
``interval_s`` seconds, converts consecutive snapshots into *windowed*
rates (req/s, err/s over the interval, not since boot), carries the
latency quantiles and cache/batch health alongside, and keeps the most
recent ``capacity`` samples in a ring.

The ring is what the ``timeseries`` RPC and the ``/timeseries`` HTTP
path serve, what ``repro top`` renders as sparklines, and what the SLO
tracker (:mod:`repro.obs.slo`) computes error-budget burn from. Its
JSON payload is pinned by ``schemas/obs_timeseries.schema.json``.

Self-accounting lives under ``obs.ts.*``: ``obs.ts.samples`` counts
samples taken, ``obs.ts.evicted`` counts samples the full ring dropped.
Both are plain always-on counters — sampling happens off the request
path, once per interval, so it costs the hot path nothing.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: Samples retained; at the default 1 s interval, 10 minutes of history.
DEFAULT_CAPACITY = 600

#: Seconds between samples taken by :meth:`ServingTimeSeries.start`.
DEFAULT_INTERVAL_S = 1.0

#: Version tag of the JSON payload (``schemas/obs_timeseries.schema.json``).
TIMESERIES_SCHEMA = 1

#: Counter names sampled into every ring entry (value + windowed rate).
_RATE_COUNTERS = {
    "requests": "serve.requests",
    "errors": "serve.requests.errors",
    "predicts": "serve.requests.predict",
}


class ServingTimeSeries:
    """Ring of periodic serving-health samples over one registry.

    Args:
        registry: The metrics registry holding the ``serve.*``
            instruments (the process-wide one in production; tests pass
            their own).
        capacity: Ring size; the oldest sample is evicted once full.
        interval_s: Cadence of the background sampler started by
            :meth:`start` (callers may also drive :meth:`sample_now`
            directly, e.g. tests and the stdio transport).
    """

    def __init__(self, registry: MetricsRegistry, *,
                 capacity: int = DEFAULT_CAPACITY,
                 interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.registry = registry
        self.capacity = max(2, int(capacity))
        self.interval_s = float(interval_s)
        self._samples: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._prev: dict[str, float] | None = None
        self._prev_t = 0.0
        self._taken = registry.counter("obs.ts.samples")
        self._evicted = registry.counter("obs.ts.evicted")
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_now(self) -> dict[str, Any]:
        """Take one sample immediately; returns the appended entry."""
        now = time.time()
        counters = {key: float(self.registry.counter(name).value)
                    for key, name in _RATE_COUNTERS.items()}
        coalesced = float(
            self.registry.counter("serve.dedup.coalesced").value)
        cache_served = float(
            self.registry.counter("serve.cache.served").value)
        batch_jobs = float(self.registry.counter("serve.batch.jobs").value)
        batch_flushes = float(
            self.registry.counter("serve.batch.flushes").value)
        predict_latency = self.registry.histogram(
            "serve.predict_s").summary()

        rate_names = {"requests": "req_per_s", "errors": "err_per_s",
                      "predicts": "predict_per_s"}
        sample: dict[str, Any] = {"t_unix": now}
        for key, value in counters.items():
            sample[key] = int(value)
        with self._lock:
            prev, prev_t = self._prev, self._prev_t
            dt = max(now - prev_t, 1e-9) if prev is not None else 0.0
            for key, value in counters.items():
                delta = value - prev[key] if prev is not None else 0.0
                sample[rate_names[key]] = (round(delta / dt, 6)
                                           if prev is not None else 0.0)
            predict_delta = (counters["predicts"] - prev["predicts"]
                             if prev is not None else counters["predicts"])
            served_warm = ((coalesced - prev.get("_coalesced", 0.0))
                           + (cache_served - prev.get("_cache_served", 0.0))
                           if prev is not None
                           else coalesced + cache_served)
            jobs_delta = (batch_jobs - prev.get("_batch_jobs", 0.0)
                          if prev is not None else batch_jobs)
            flush_delta = (batch_flushes - prev.get("_batch_flushes", 0.0)
                           if prev is not None else batch_flushes)
            sample["cache_hit_rate"] = round(
                min(1.0, served_warm / predict_delta), 6) \
                if predict_delta > 0 else 0.0
            sample["batch_mean"] = round(jobs_delta / flush_delta, 6) \
                if flush_delta > 0 else 0.0
            sample["p50_s"] = predict_latency["p50"]
            sample["p99_s"] = predict_latency["p99"]
            self._prev = counters | {"_coalesced": coalesced,
                                     "_cache_served": cache_served,
                                     "_batch_jobs": batch_jobs,
                                     "_batch_flushes": batch_flushes}
            self._prev_t = now
            if len(self._samples) == self.capacity:
                self._evicted.increment()
            self._samples.append(sample)
        self._taken.increment()
        return sample

    # ------------------------------------------------------------------
    # Background sampler
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the periodic sampler thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-obs-sampler",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread (idempotent; safe if never started)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_now()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def samples(self) -> list[dict[str, Any]]:
        """The ring's samples, oldest first."""
        with self._lock:
            return list(self._samples)

    def payload(self) -> dict[str, Any]:
        """JSON payload served by the ``timeseries`` RPC and validated
        against ``schemas/obs_timeseries.schema.json``."""
        return {
            "kind": "obs_timeseries",
            "schema": TIMESERIES_SCHEMA,
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "evicted": self._evicted.value,
            "samples": self.samples(),
        }
