"""Span tracer: records the engine's own execution as Chrome trace events.

A *span* is a named, tagged wall-clock interval — ``structure_build``,
``duration_fill``, ``replay``, ``dse.chunk`` — opened with the
:meth:`SpanTracer.span` context manager. Spans are thread-safe and
nestable (nesting depth is tracked per thread and recorded on each
span, so flame-graph viewers reconstruct the stack without B/E event
pairing).

Completed spans export to Chrome Trace Event Format JSON via
:meth:`SpanTracer.chrome_trace`, viewable in ``chrome://tracing`` or
https://ui.perfetto.dev. Engine spans use a fixed synthetic pid
(:data:`ENGINE_PID`) with one tid per OS thread, so they sit alongside
the simulated device timeline (pids >= 1000, see
:mod:`repro.obs.export`) in a single combined trace.

The span buffer is a bounded ring (:data:`DEFAULT_MAX_SPANS`, override
with ``REPRO_OBS_MAX_SPANS``): a long-lived daemon with tracing enabled
drops its *oldest* spans rather than growing without limit, and counts
the drops through :attr:`SpanTracer.on_drop` (wired to the
``obs.spans.dropped`` registry counter by :mod:`repro.obs`).

Spans recorded while a request context is bound
(:func:`repro.obs.context.bind_trace`) are tagged with the request's
``trace_id`` automatically, so one served request is greppable across
every span it touched on that thread.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator
from contextlib import contextmanager

from repro.obs.context import current_trace_id

#: Synthetic process id for the engine's own spans in exported traces.
#: Simulated devices use pids >= SIM_PID_OFFSET (repro.obs.export), so
#: the two timelines never collide in one trace file.
ENGINE_PID = 1

#: Spans retained by a tracer before the oldest are dropped
#: (``REPRO_OBS_MAX_SPANS`` overrides). Sized so a busy daemon holds
#: minutes of serving spans in a few tens of MB, never unbounded.
DEFAULT_MAX_SPANS = int(os.environ.get("REPRO_OBS_MAX_SPANS", "65536"))

_MICROS = 1_000_000.0


@dataclass(frozen=True)
class Span:
    """One completed span: a named interval on one thread."""

    name: str
    category: str
    start_s: float  # seconds since the tracer epoch
    duration_s: float
    thread: int  # dense per-tracer thread index (trace tid)
    depth: int  # nesting depth on that thread (0 = top level)
    tags: dict[str, Any] = field(default_factory=dict)


class _ThreadState(threading.local):
    """Per-thread nesting depth and dense thread index."""

    def __init__(self) -> None:
        self.depth = 0
        self.index: int | None = None


class SpanTracer:
    """Thread-safe recorder of nested, tagged wall-clock spans.

    Args:
        max_spans: Ring capacity; once full, each new span evicts the
            oldest and bumps :attr:`dropped` (and :attr:`on_drop`, when
            set). Defaults to :data:`DEFAULT_MAX_SPANS`.
    """

    def __init__(self, max_spans: int | None = None) -> None:
        self._lock = threading.Lock()
        self.max_spans = (DEFAULT_MAX_SPANS if max_spans is None
                          else max(1, int(max_spans)))
        self._spans: deque[Span] = deque(maxlen=self.max_spans)
        self._dropped = 0
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()
        self._local = _ThreadState()
        self._thread_ids = itertools.count()
        self._thread_names: dict[int, str] = {}
        #: Called with the number of spans evicted (always 1) each time
        #: the ring overflows; :mod:`repro.obs` points this at the
        #: ``obs.spans.dropped`` counter.
        self.on_drop: Callable[[int], None] | None = None

    def _thread_index(self) -> int:
        index = self._local.index
        if index is None:
            with self._lock:
                index = next(self._thread_ids)
                self._thread_names[index] = threading.current_thread().name
            self._local.index = index
        return index

    @contextmanager
    def span(self, name: str, category: str = "engine",
             **tags: Any) -> Iterator[dict[str, Any]]:
        """Record the enclosed block as a span named ``name``.

        Yields the (mutable) tags dict so the block can attach results
        discovered mid-flight::

            with tracer.span("structure_build", plan=str(plan)) as tags:
                ...
                tags["tasks"] = structure.num_tasks
        """
        index = self._thread_index()
        depth = self._local.depth
        self._local.depth = depth + 1
        if "trace_id" not in tags:
            trace_id = current_trace_id()
            if trace_id is not None:
                tags["trace_id"] = trace_id
        start = time.perf_counter()
        try:
            yield tags
        finally:
            duration = time.perf_counter() - start
            self._local.depth = depth
            completed = Span(name=name, category=category,
                             start_s=start - self._epoch,
                             duration_s=duration, thread=index,
                             depth=depth, tags=tags)
            with self._lock:
                overflow = len(self._spans) == self.max_spans
                if overflow:
                    self._dropped += 1
                self._spans.append(completed)
            if overflow and self.on_drop is not None:
                self.on_drop(1)

    @property
    def spans(self) -> list[Span]:
        """Completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring since the last :meth:`reset`."""
        with self._lock:
            return self._dropped

    @property
    def epoch_unix(self) -> float:
        """Wall-clock (unix) time of the tracer epoch — what anchors
        ``start_s`` offsets to a machine-wide timeline when stitching
        spans from several processes."""
        with self._lock:
            return self._epoch_unix

    def reset(self) -> None:
        """Drop recorded spans and restart the epoch."""
        with self._lock:
            self._spans.clear()
            self._dropped = 0
            self._epoch = time.perf_counter()
            self._epoch_unix = time.time()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> list[dict[str, Any]]:
        """Chrome Trace Event Format events for every completed span.

        Returns "X" (complete) events plus "M" (metadata) events naming
        the engine process and its threads. Timestamps are microseconds
        from the tracer epoch.
        """
        with self._lock:
            spans = list(self._spans)
            thread_names = dict(self._thread_names)
        events: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": ENGINE_PID, "tid": 0,
            "args": {"name": "repro engine"},
        }]
        for index in sorted(thread_names):
            events.append({
                "name": "thread_name", "ph": "M", "pid": ENGINE_PID,
                "tid": index,
                "args": {"name": thread_names[index]},
            })
        for span in spans:
            args: dict[str, Any] = {"depth": span.depth}
            args.update(span.tags)
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_s * _MICROS,
                "dur": span.duration_s * _MICROS,
                "pid": ENGINE_PID,
                "tid": span.thread,
                "args": args,
            })
        return events


class NullSpan:
    """No-op context manager returned when observability is disabled.

    A single module-level instance is reused for every call, so a
    disabled ``obs.span(...)`` costs one function call and one
    attribute load — no allocation, no clock read.
    """

    __slots__ = ()

    def __enter__(self) -> dict[str, Any]:
        return {}

    def __exit__(self, *exc_info: Any) -> None:
        return None


NULL_SPAN = NullSpan()
