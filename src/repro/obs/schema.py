"""Minimal JSON-Schema-subset validator for checked-in artifact schemas.

The repo cannot add a ``jsonschema`` dependency, so this implements the
small draft-07 subset the schemas under ``schemas/`` actually use:
``type`` (including lists of types), ``properties`` / ``required`` /
``additionalProperties``, ``items``, ``enum``, ``minimum``, ``minItems``
and ``patternProperties`` (literal ``.*`` only via property fallback).
Anything else in a schema is rejected loudly rather than silently
ignored, so a schema edit cannot quietly stop validating.
"""

from __future__ import annotations

from typing import Any

_SUPPORTED_KEYS = {
    "$schema", "$id", "title", "description",
    "type", "properties", "required", "additionalProperties",
    "items", "enum", "minimum", "minItems",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """A JSON document failed schema validation (or the schema itself
    uses an unsupported construct)."""


def _check_type(value: Any, expected: str, path: str) -> None:
    if expected == "number":
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif expected == "integer":
        ok = isinstance(value, int) and not isinstance(value, bool)
    else:
        python_type = _TYPES.get(expected)
        if python_type is None:
            raise SchemaError(f"{path}: unsupported schema type {expected!r}")
        ok = isinstance(value, python_type)
        if expected != "boolean" and isinstance(value, bool):
            ok = False
    if not ok:
        raise SchemaError(
            f"{path}: expected {expected}, got {type(value).__name__}")


def validate(value: Any, schema: dict[str, Any], path: str = "$") -> None:
    """Validate ``value`` against ``schema``; raises :class:`SchemaError`
    naming the offending JSON path on the first violation."""
    unsupported = set(schema) - _SUPPORTED_KEYS
    if unsupported:
        raise SchemaError(
            f"{path}: schema uses unsupported keywords {sorted(unsupported)}")

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        errors = []
        for candidate in types:
            try:
                _check_type(value, candidate, path)
                break
            except SchemaError as exc:
                errors.append(exc)
        else:
            raise SchemaError(
                f"{path}: expected one of {types}, "
                f"got {type(value).__name__}") from errors[-1]

    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(f"{path}: {value!r} not in {schema['enum']!r}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        raise SchemaError(
            f"{path}: {value!r} below minimum {schema['minimum']!r}")

    if isinstance(value, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                raise SchemaError(f"{path}: missing required key {name!r}")
        additional = schema.get("additionalProperties", True)
        for name, item in value.items():
            if name in properties:
                validate(item, properties[name], f"{path}.{name}")
            elif additional is False:
                raise SchemaError(f"{path}: unexpected key {name!r}")
            elif isinstance(additional, dict):
                validate(item, additional, f"{path}.{name}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            raise SchemaError(
                f"{path}: {len(value)} items < minItems "
                f"{schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for index, item in enumerate(value):
                validate(item, items, f"{path}[{index}]")
