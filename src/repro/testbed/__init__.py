"""Testbed emulation: the "measured" side of the validation study."""

from repro.testbed.emulator import (MeasuredIteration, TestbedConfig,
                                    TestbedEmulator)
from repro.testbed.noise import jitter, lognormal, one_sided, symmetric, unit

__all__ = [
    "MeasuredIteration",
    "TestbedConfig",
    "TestbedEmulator",
    "jitter",
    "lognormal",
    "one_sided",
    "symmetric",
    "unit",
]
