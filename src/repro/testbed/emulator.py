"""Ground-truth testbed emulator (the "measured" side of Figure 9).

The paper validates vTrain against real 8-GPU p4d nodes and a 512-GPU
A100 cluster. With no hardware available, this emulator plays the role
of the physical testbed: it replays the *same* execution graph vTrain
builds, but layers on the effects the paper explicitly names as vTrain's
error sources (Section IV):

* **NCCL interference** — collectives run ~30 % slower during training
  than in the isolated environment vTrain profiles them in, "especially
  more pronounced when tensor parallelism is employed";
* **kernel-launch overheads** — per-kernel host latency vTrain's
  device-time profiles do not contain;
* **per-kernel jitter** — run-to-run variation of real kernels;
* **stragglers** — slow nodes delaying synchronisation points, which
  vTrain's static inter-node model cannot capture;
* **network contention** — concurrent data-parallel All-Reduce groups
  sharing a node's HCAs/ToR uplinks (the Figure 3 discussion);
* **framework overhead** — per-iteration host-side time.

Everything is hash-deterministic (:mod:`repro.testbed.noise`): measuring
the same configuration twice returns the identical number, as real
training iterations essentially do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.graph.builder import Granularity
from repro.graph.operators import CompOperator
from repro.graph.structure import (GraphStructure, KIND_COMPUTE, KIND_DP_COMM,
                                   KIND_PP_COMM, KIND_TP_COMM,
                                   KIND_WEIGHT_UPDATE)
from repro.hardware.cluster import ClusterTopology
from repro.hardware.interconnect import LinkType
from repro.sim.engine import simulate_retimed, simulate_retimed_batch
from repro.sim.estimator import VTrain
from repro.testbed import noise


@dataclass(frozen=True)
class TestbedConfig:
    """Perturbation magnitudes of the emulated testbed.

    Defaults are calibrated so the validation campaigns land in the
    paper's error bands (single-node MAPE ~8 %, multi-node ~15 %).
    """

    __test__ = False  # "Testbed..." is not a pytest test class

    seed: str = "a100-testbed"
    kernel_jitter: float = 0.05
    nccl_interference: float = 1.30
    tensor_parallel_extra_interference: float = 0.12
    straggler_sigma: float = 0.012
    max_straggler_samples: int = 32
    # Kept modest: the paper's cluster is a *non-blocking* fat tree, so
    # sustained inter-node bandwidth is essentially achievable (that is
    # why its alpha sweep bottoms out at 1.0); the dominant multi-node
    # errors are two-sided placement/calibration variance plus fixed
    # sync/launch overheads and stragglers.
    dp_contention_per_group: float = 0.05
    overlap_sm_penalty: float = 0.02
    iteration_overhead: float = 1.5e-3
    internode_sync_overhead: float = 0.12
    # Two-sided per-configuration speed spread: production nodes run
    # faster or slower than the one the profiles were captured on
    # (clocks, thermals, binning), and multi-node jobs additionally vary
    # with placement quality across the fat tree. This is why the
    # paper's Figure 9 scatter has points on both sides of the parity
    # line, and why its multi-node MAPE (14.73%) is dominated by spread
    # rather than one-sided bias.
    compute_calibration_spread: float = 0.05
    multinode_calibration_spread: float = 0.22

    def without_interference(self) -> "TestbedConfig":
        """An idealised, contention-free cluster (the paper's regime).

        Keeps run-to-run jitter and node-calibration spread but removes
        every systematic communication slowdown — the configuration in
        which the Section-IV alpha sweep bottoms out at 1.0.
        """
        return replace(self, nccl_interference=1.0,
                       tensor_parallel_extra_interference=0.0,
                       straggler_sigma=0.0, dp_contention_per_group=0.0,
                       overlap_sm_penalty=0.0,
                       internode_sync_overhead=0.0)

    def with_seed(self, seed: str) -> "TestbedConfig":
        """Copy with a different measurement-session seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class MeasuredIteration:
    """One testbed measurement."""

    iteration_time: float
    num_tasks: int
    session_key: str


@dataclass(frozen=True)
class _SessionDraws:
    """Per-measurement-campaign perturbation state, drawn once.

    Everything here is independent of the *sample* session key: the
    allocation's calibration draw is keyed by (model, scale) alone, and
    the contention/SM-penalty/launch factors are deterministic functions
    of the plan's topology. Hoisting them out of the per-sample loop
    guarantees sample ``k`` of a batched campaign perturbs durations
    exactly as ``k`` standalone measurements would — it also stops the
    emulator re-deriving the same topology queries per measurement.
    """

    dp_link: LinkType | None
    dp_contention: float
    sm_penalty: float
    launch: float
    multi_node: bool
    calibration: float


class TestbedEmulator:
    """Measures "real" single-iteration training times.

    Args:
        system: The physical cluster being emulated.
        config: Perturbation magnitudes.
        granularity: Graph fidelity; OPERATOR (default) or KERNEL.
            STAGE is rejected — a coarse graph cannot carry per-operator
            launch overheads.
    """

    __test__ = False  # "Testbed..." is not a pytest test class

    def __init__(self, system: SystemConfig, *,
                 config: TestbedConfig = TestbedConfig(),
                 granularity: Granularity = Granularity.OPERATOR) -> None:
        if granularity is Granularity.STAGE:
            raise ConfigError("testbed measurement needs operator or kernel "
                              "granularity")
        self.system = system
        self.config = config
        self._vtrain = VTrain(system, granularity=granularity,
                              check_memory_feasibility=False)
        self.granularity = granularity

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def measure(self, model: ModelConfig, plan: ParallelismConfig,
                training: TrainingConfig) -> MeasuredIteration:
        """Run one "real" training iteration and report its wall time.

        Uses the retime-without-rebuild path: the compiled graph
        structure comes from the shared structure cache and only the
        duration vector is perturbed per measurement, so validation
        campaigns re-measuring one model under many plans never rebuild
        a graph they already compiled.
        """
        return self.measure_samples(model, plan, training, 1)[0]

    def measure_samples(self, model: ModelConfig, plan: ParallelismConfig,
                        training: TrainingConfig, num_samples: int,
                        ) -> list[MeasuredIteration]:
        """Run ``num_samples`` "real" iterations of one configuration.

        Sample 0 is the plain measurement session (bit-identical to
        :meth:`measure`); sample ``k > 0`` re-runs the iteration under
        the derived session ``<session>/it<k>``, re-drawing every
        run-to-run effect (kernel jitter, stragglers, overheads) while
        the campaign-level draws (:class:`_SessionDraws`) are shared —
        exactly how repeated iterations on one allocation behave. All K
        perturbed duration vectors replay through one
        :func:`~repro.sim.engine.simulate_retimed_batch` sweep, whose
        columns are bit-identical to K scalar replays.
        """
        if num_samples < 1:
            raise ConfigError("num_samples must be >= 1")
        with obs.span("testbed.measure", category="testbed",
                      samples=num_samples):
            measurements = self._measure_samples(model, plan, training,
                                                 num_samples)
        obs.count("testbed.measurements", num_samples)
        return measurements

    def _measure_samples(self, model: ModelConfig, plan: ParallelismConfig,
                         training: TrainingConfig, num_samples: int,
                         ) -> list[MeasuredIteration]:
        prepared = self._vtrain.prepare(model, plan, training)
        session = self._session_key(model, plan, training)
        draws = self._session_draws(model, plan)
        kernel_counts = self._kernel_counts(prepared)
        sessions = [session if k == 0 else f"{session}/it{k}"
                    for k in range(num_samples)]
        columns = [self._perturb(prepared.structure, prepared.durations,
                                 kernel_counts, plan, sample_session, draws)
                   for sample_session in sessions]
        if num_samples == 1:
            result = simulate_retimed(prepared.structure, columns[0],
                                      metadata=prepared.metadata)
            makespans = [result.iteration_time]
        else:
            matrix = np.stack([np.asarray(column, dtype=np.float64)
                               for column in columns], axis=1)
            batch = simulate_retimed_batch(prepared.structure, matrix,
                                           metadata=prepared.metadata)
            makespans = batch.iteration_times()
        measurements = []
        for sample_session, makespan in zip(sessions, makespans):
            overhead = self.config.iteration_overhead * noise.one_sided(
                sample_session + "/iter_overhead", 1.0)
            if draws.multi_node:
                # Per-iteration cross-node synchronisation cost: NCCL
                # kernel launches and barrier waits that the paper lists
                # among vTrain's unmodelled multi-node latencies. A
                # fixed cost per iteration hurts short iterations
                # proportionally more, which is exactly the Figure 9(b)
                # error profile.
                overhead += (self.config.internode_sync_overhead
                             * noise.jitter(
                                 sample_session + "/sync_overhead", 0.3))
            measurements.append(MeasuredIteration(
                iteration_time=makespan + overhead,
                num_tasks=prepared.structure.num_tasks,
                session_key=sample_session))
        return measurements

    def measure_time(self, model: ModelConfig, plan: ParallelismConfig,
                     training: TrainingConfig) -> float:
        """Convenience: just the measured iteration time in seconds."""
        return self.measure(model, plan, training).iteration_time

    # ------------------------------------------------------------------
    # Perturbation machinery
    # ------------------------------------------------------------------
    def _session_key(self, model: ModelConfig, plan: ParallelismConfig,
                     training: TrainingConfig) -> str:
        return (f"{self.config.seed}/{model.hidden_size}x{model.num_layers}"
                f"x{model.seq_length}x{model.num_heads}"
                f"/{plan.describe()}/B{training.global_batch_size}")

    def _kernel_counts(self, prepared) -> list[int]:
        """Per-task kernel counts (launch-overhead accounting), in
        replay order, resolved for the plan being measured.

        Counts come from the prepared plan's *own* builder via timing
        slots — a cached structure's ``payload`` objects may belong to
        a different build with the same topology (e.g. another
        recompute mode, which changes kernel counts), so they are only
        used as a fallback for slot-less structures.
        """
        structure = prepared.structure
        if structure.slot_keys is not None and structure.slot_index is not None:
            table = prepared.builder.slot_kernel_counts()
            per_slot = [table.get(key, 1) for key in structure.slot_keys]
            return [per_slot[slot]
                    for slot in structure.slot_index.tolist()]
        return [len(self._vtrain.lookup.tasks_for(payload))
                if isinstance(payload, CompOperator) else 1
                for payload in structure.payload]

    def _straggler(self, session: str, device: int, num_peers: int) -> float:
        """Slowdown of the slowest folded replica of one logical stage.

        The symmetry-reduced graph folds ``t*d`` GPUs into each stage; a
        synchronisation point runs at the pace of the slowest, so the
        factor is the max of per-replica log-normal samples. This is one
        of the two multi-node effects the paper names as missing from
        vTrain's analytical inter-node model.
        """
        samples = min(max(num_peers, 1), self.config.max_straggler_samples)
        return max(noise.lognormal(f"{session}/straggler/{device}/{i}",
                                   self.config.straggler_sigma)
                   for i in range(samples))

    def _session_draws(self, model: ModelConfig,
                       plan: ParallelismConfig) -> _SessionDraws:
        """Campaign-level perturbation state (sample-session-free)."""
        cfg = self.config
        model_key = (f"{model.hidden_size}x{model.num_layers}"
                     f"x{model.seq_length}")
        topology = ClusterTopology(self.system, plan)
        dp_link = topology.data_link() if plan.data > 1 else None
        dp_groups = (topology.concurrent_data_groups_per_node()
                     if plan.data > 1 else 1)
        # Contention grows with the log of concurrent groups on a node.
        dp_contention = 1.0 + cfg.dp_contention_per_group * (
            max(1, dp_groups) - 1).bit_length()
        multi_node_plan = topology.num_nodes_used() > 1
        # NCCL All-Reduce kernels occupy SMs, slowing the compute they
        # overlap with; only inter-node DP traffic lives long enough for
        # this to matter.
        sm_penalty = (1.0 + cfg.overlap_sm_penalty
                      if dp_link is LinkType.INTER_NODE else 1.0)
        # This allocation's nodes vs the profiling node (two-sided);
        # multi-node placements add fat-tree locality variance on top.
        # Keyed by (model, scale), NOT by plan: two plans for the same
        # model measured on the same nodes share the hardware draw, so
        # plan comparisons (Table II) stay meaningful while the
        # campaign-level scatter (Figure 9) persists.
        spread = (cfg.multinode_calibration_spread if multi_node_plan
                  else cfg.compute_calibration_spread)
        allocation_key = (f"{cfg.seed}/allocation/{model_key}"
                          f"/{topology.num_nodes_used()}nodes")
        return _SessionDraws(
            dp_link=dp_link,
            dp_contention=dp_contention,
            sm_penalty=sm_penalty,
            launch=self.system.gpu.kernel_launch_overhead,
            multi_node=multi_node_plan,
            calibration=noise.jitter(allocation_key, spread))

    def _perturb(self, structure: GraphStructure, durations,
                 kernel_counts: list[int], plan: ParallelismConfig,
                 session: str, draws: _SessionDraws) -> list[float]:
        """Testbed-perturbed duration vector (replay order) for one run."""
        cfg = self.config
        dp_link = draws.dp_link
        dp_contention = draws.dp_contention
        sm_penalty = draws.sm_penalty
        launch = draws.launch
        calibration = draws.calibration
        if draws.multi_node:
            # Straggler nodes only matter once synchronisation crosses
            # node boundaries (Section IV, multi-node error discussion).
            stage_straggler = {
                device: self._straggler(session, device, plan.data)
                for device in range(structure.num_devices)}
        else:
            stage_straggler = {device: 1.0
                               for device in range(structure.num_devices)}

        kinds = structure.kinds
        perturbed: list[float] = []
        for duration, kind_index, label, device, num_kernels in zip(
                durations.tolist(), structure.kind_index.tolist(),
                structure.label, structure.device_ids, kernel_counts):
            kind = kinds[kind_index]
            key = f"{session}/{label}"
            if kind in (KIND_COMPUTE, KIND_WEIGHT_UPDATE):
                duration *= noise.jitter(key, cfg.kernel_jitter)
                duration *= stage_straggler[device] * sm_penalty
                duration *= calibration
                duration += launch * num_kernels
            elif kind == KIND_TP_COMM:
                factor = (cfg.nccl_interference
                          + cfg.tensor_parallel_extra_interference)
                duration *= factor * noise.jitter(key, cfg.kernel_jitter)
                duration += launch
            elif kind == KIND_DP_COMM:
                if dp_link is LinkType.INTRA_NODE:
                    duration *= cfg.nccl_interference
                else:
                    duration *= dp_contention
                    duration *= stage_straggler[device]
                duration *= noise.jitter(key, cfg.kernel_jitter)
                duration += launch
            elif kind == KIND_PP_COMM:
                duration *= noise.jitter(key, cfg.kernel_jitter)
                duration += launch
            perturbed.append(duration)
        return perturbed
