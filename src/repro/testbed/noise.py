"""Deterministic hash-based noise sources for the testbed emulator.

The emulator must be *reproducible* — the same configuration always
"measures" the same iteration time, just as the paper observes real GPU
kernels to be highly deterministic across runs — while still varying
richly across configurations. All randomness therefore derives from
SHA-256 of string keys; no global RNG state is involved.
"""

from __future__ import annotations

import hashlib
import math


def unit(key: str) -> float:
    """Deterministic uniform sample in [0, 1) derived from ``key``."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "big")
    return value / float(1 << 64)


def symmetric(key: str) -> float:
    """Deterministic uniform sample in [-1, 1)."""
    return 2.0 * unit(key) - 1.0


def jitter(key: str, amplitude: float) -> float:
    """Multiplicative jitter factor in [1 - amplitude, 1 + amplitude)."""
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    return 1.0 + amplitude * symmetric(key)


def lognormal(key: str, sigma: float) -> float:
    """Deterministic log-normal factor with median 1.

    Uses a Box-Muller transform over two hash-derived uniforms; suitable
    for straggler modelling where slowdowns have a heavy right tail.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    u1 = max(unit(key + "/u1"), 1e-12)
    u2 = unit(key + "/u2")
    gaussian = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return math.exp(sigma * gaussian)


def one_sided(key: str, amplitude: float) -> float:
    """Slowdown-only factor in [1, 1 + amplitude) (overheads never help)."""
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    return 1.0 + amplitude * unit(key)
