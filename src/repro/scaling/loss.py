"""Chinchilla parametric loss model (Hoffmann et al., Approach 3).

The paper's case study #3 picks "the LLM providing the best model
accuracy" within a compute budget. This module supplies the accuracy
side: the Chinchilla parametric loss surface

    L(N, D) = E + A / N^alpha + B / D^beta

with the published fit (E=1.69, A=406.4, B=410.7, alpha=0.34,
beta=0.28). It lets the compute-optimal search report *expected loss*
per candidate, and verifies the qualitative claim behind Table IV:
within a fixed *effective* budget, the largest model that trains to its
20-tokens-per-parameter point achieves the lowest loss among feasible
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Hoffmann et al. parametric fit (their Approach 3 / Equation 10).
IRREDUCIBLE = 1.69
A_COEFF = 406.4
B_COEFF = 410.7
N_EXPONENT = 0.34
D_EXPONENT = 0.28


def expected_loss(num_parameters: float, num_tokens: float) -> float:
    """Pre-training loss predicted by the parametric Chinchilla fit."""
    if num_parameters <= 0 or num_tokens <= 0:
        raise ConfigError("parameters and tokens must be positive")
    return (IRREDUCIBLE
            + A_COEFF / num_parameters ** N_EXPONENT
            + B_COEFF / num_tokens ** D_EXPONENT)


def optimal_split(compute_flops: float) -> tuple[float, float]:
    """Loss-minimising (N, D) under the constraint ``C = 6 N D``.

    Solves the first-order condition of the parametric loss: the
    optimal allocation satisfies
    ``alpha * A / N^alpha = beta * B / D^beta`` along ``C = 6ND``.
    Found numerically by bisection on log N (the objective is convex in
    log N along the constraint).
    """
    if compute_flops <= 0:
        raise ConfigError("compute_flops must be positive")
    import math

    def loss_at(log_n: float) -> float:
        n = math.exp(log_n)
        d = compute_flops / (6.0 * n)
        return expected_loss(n, d)

    lo, hi = math.log(1e6), math.log(compute_flops / 6.0)
    for _ in range(200):
        third = (hi - lo) / 3.0
        m1, m2 = lo + third, hi - third
        if loss_at(m1) < loss_at(m2):
            hi = m2
        else:
            lo = m1
    n_opt = math.exp((lo + hi) / 2.0)
    return n_opt, compute_flops / (6.0 * n_opt)


@dataclass(frozen=True)
class LossEstimate:
    """Expected loss of one (model size, token count) candidate."""

    num_parameters: float
    num_tokens: float
    loss: float

    @property
    def tokens_per_parameter(self) -> float:
        """The D/N ratio (Chinchilla-optimal is ~20)."""
        return self.num_tokens / self.num_parameters


def estimate(num_parameters: float, num_tokens: float) -> LossEstimate:
    """Convenience wrapper bundling the inputs with the loss."""
    return LossEstimate(num_parameters=num_parameters,
                        num_tokens=num_tokens,
                        loss=expected_loss(num_parameters, num_tokens))


def undertraining_penalty(num_parameters: float,
                          available_tokens: float) -> float:
    """Extra loss from training a model on fewer tokens than its
    Chinchilla point (the paper's MT-NLG/GPT-3 under-training remark).

    Returns ``L(N, available) - L(N, 20N)``; positive when the model is
    under-trained.
    """
    ideal = expected_loss(num_parameters, 20.0 * num_parameters)
    actual = expected_loss(num_parameters, available_tokens)
    return actual - ideal
