"""Compute-optimal LLM sizing under the Chinchilla law (case study #3).

Section V-C contrasts two ways of spending a fixed GPU-time budget:

* the **naive** Chinchilla point assumes 100 % GPU utilization, yielding
  ``N = alpha * C^0.5`` parameters and ``T = beta * C^0.5`` tokens for a
  budget of C FLOPs — a model that then takes ~3x longer to train than
  planned (85 days instead of 30 in the paper's example);
* the **realistic** point uses vTrain: for each candidate architecture,
  find the best 3D-parallel plan, simulate its iteration time, and keep
  the largest model whose end-to-end training finishes inside the
  wall-clock budget (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, TrainingConfig,
                                      validate_plan)
from repro.config.system import SystemConfig
from repro.cost.pricing import SECONDS_PER_DAY
from repro.dse.space import divisors, powers_of_two
from repro.errors import ConfigError, InfeasibleConfigError
from repro.graph.builder import Granularity
from repro.memory.footprint import fits_in_memory
from repro.sim.estimator import VTrain

#: Chinchilla power-law coefficients (Hoffmann et al., as quoted in V-C).
ALPHA = 0.089
BETA = 1.875

#: The paper's Table IV quotes tokens at exactly 20x the parameter count
#: (the Chinchilla rule of thumb implied by alpha/beta up to rounding).
TOKENS_PER_PARAMETER = 20.0

#: Default sequence batch for the compute-optimal sweep: ~3.9M tokens per
#: iteration at s=2048, the MT-NLG-class regime.
TARGET_GLOBAL_BATCH = 1920


def compute_budget_flops(num_gpus: int, days: float,
                         peak_flops_per_gpu: float, *,
                         utilization: float = 1.0) -> float:
    """Total FLOPs available: GPUs x days x peak x utilization."""
    if num_gpus <= 0 or days <= 0 or peak_flops_per_gpu <= 0:
        raise ConfigError("budget inputs must be positive")
    if not 0.0 < utilization <= 1.0:
        raise ConfigError("utilization must be in (0, 1]")
    return num_gpus * days * SECONDS_PER_DAY * peak_flops_per_gpu * utilization


def naive_chinchilla_point(budget_flops: float) -> tuple[float, float]:
    """(parameters, tokens) assuming the full budget is realisable.

    For the paper's 3,360-A100 x 30-day example (C = 2.72e24 FLOPs) this
    returns ~145.6B parameters and ~2.9T tokens.
    """
    if budget_flops <= 0:
        raise ConfigError("budget_flops must be positive")
    root = budget_flops ** 0.5
    return ALPHA * root, BETA * root


@dataclass(frozen=True)
class ChinchillaCandidate:
    """One Table IV row: an architecture evaluated under the budget."""

    model: ModelConfig
    tokens: float
    plan: ParallelismConfig
    global_batch_size: int
    iteration_time: float
    utilization: float
    training_days: float

    @property
    def parameters_billion(self) -> float:
        """Model size in billions of parameters."""
        return self.model.parameters_billion

    @property
    def tokens_billion(self) -> float:
        """Training tokens in billions."""
        return self.tokens / 1e9

    def as_row(self) -> dict[str, object]:
        """Flat dict matching Table IV's columns."""
        return {
            "h": self.model.hidden_size,
            "L": self.model.num_layers,
            "parameters_b": round(self.parameters_billion, 2),
            "tokens_b": round(self.tokens_billion, 0),
            "optimal_tdp": self.plan.way,
            "estimated_days": round(self.training_days, 1),
        }


#: The (h, L) architecture grid of Table IV.
TABLE_IV_ARCHITECTURES = ((12288, 80), (12288, 70), (12288, 60),
                          (10240, 70), (10240, 60),
                          (9216, 80), (9216, 70))


def candidate_model(hidden_size: int, num_layers: int, *,
                    seq_length: int = 2048) -> ModelConfig:
    """Build a Table IV candidate architecture (heads sized h/128)."""
    return ModelConfig(hidden_size=hidden_size, num_layers=num_layers,
                       seq_length=seq_length,
                       num_heads=max(8, hidden_size // 128),
                       name=f"chinchilla-{hidden_size}x{num_layers}")


def best_plan_for_budget(model: ModelConfig, num_gpus: int,
                         system: SystemConfig, *,
                         granularity: Granularity = Granularity.STAGE,
                         target_batch: int = TARGET_GLOBAL_BATCH,
                         ) -> tuple[ParallelismConfig, TrainingConfig, float, float]:
    """Fastest plan using exactly ``num_gpus`` GPUs for one candidate.

    The global batch adapts to each plan's data-parallel degree
    (``B = d * round(target / d)``) so days-per-token comparisons stay
    fair across plans. Returns (plan, training, iteration_time,
    utilization).

    Raises:
        InfeasibleConfigError: If no plan fits.
    """
    simulator = VTrain(system, granularity=granularity)
    best: tuple[ParallelismConfig, TrainingConfig, float, float] | None = None
    best_seconds_per_token = float("inf")
    for t in powers_of_two(16):
        if model.num_heads % t or num_gpus % t:
            continue
        remaining = num_gpus // t
        for p in divisors(model.num_layers):
            if p > model.num_layers or remaining % p:
                continue
            d = remaining // p
            batch = d * max(1, round(target_batch / d))
            training = TrainingConfig(global_batch_size=batch)
            per_replica = batch // d
            for m in (1, 2, 4):
                if per_replica % m:
                    continue
                plan = ParallelismConfig(tensor=t, data=d, pipeline=p,
                                         micro_batch_size=m)
                try:
                    validate_plan(model, plan, training, num_gpus)
                except InfeasibleConfigError:
                    continue
                if not fits_in_memory(model, plan, training, system):
                    continue
                prediction = simulator.predict(model, plan, training)
                tokens_per_iter = training.tokens_per_iteration(model)
                seconds_per_token = prediction.iteration_time / tokens_per_iter
                if seconds_per_token < best_seconds_per_token:
                    best_seconds_per_token = seconds_per_token
                    best = (plan, training, prediction.iteration_time,
                            prediction.gpu_compute_utilization)
    if best is None:
        raise InfeasibleConfigError(
            f"no feasible plan for {model.describe()} on {num_gpus} GPUs")
    return best


def evaluate_candidate(hidden_size: int, num_layers: int, num_gpus: int,
                       system: SystemConfig, *,
                       granularity: Granularity = Granularity.STAGE,
                       ) -> ChinchillaCandidate:
    """Evaluate one Table IV row: optimal plan and end-to-end days."""
    model = candidate_model(hidden_size, num_layers)
    tokens = TOKENS_PER_PARAMETER * model.num_parameters()
    plan, training, iteration_time, utilization = best_plan_for_budget(
        model, num_gpus, system, granularity=granularity)
    tokens_per_iter = training.tokens_per_iteration(model)
    iterations = tokens / tokens_per_iter
    days = iterations * iteration_time / SECONDS_PER_DAY
    return ChinchillaCandidate(model=model, tokens=tokens, plan=plan,
                               global_batch_size=training.global_batch_size,
                               iteration_time=iteration_time,
                               utilization=utilization, training_days=days)


def compute_optimal_search(num_gpus: int, budget_days: float,
                           system: SystemConfig, *,
                           architectures=TABLE_IV_ARCHITECTURES,
                           granularity: Granularity = Granularity.STAGE,
                           ) -> tuple[list[ChinchillaCandidate],
                                      ChinchillaCandidate | None]:
    """Reproduce Table IV: evaluate candidates, pick the realistic point.

    Returns (all candidate rows, the largest model finishing within the
    budget — the vTrain-corrected Chinchilla point).
    """
    rows: list[ChinchillaCandidate] = []
    for hidden_size, num_layers in architectures:
        try:
            rows.append(evaluate_candidate(hidden_size, num_layers, num_gpus,
                                           system, granularity=granularity))
        except InfeasibleConfigError:
            continue
    within = [row for row in rows if row.training_days <= budget_days]
    best = max(within, key=lambda row: row.model.num_parameters(),
               default=None)
    return rows, best
