"""Chinchilla scaling law and compute-optimal model sizing."""

from repro.scaling.loss import (LossEstimate, expected_loss,
                                optimal_split, undertraining_penalty)
from repro.scaling.chinchilla import (ALPHA, BETA, TABLE_IV_ARCHITECTURES,
                                      TOKENS_PER_PARAMETER,
                                      ChinchillaCandidate,
                                      best_plan_for_budget, candidate_model,
                                      compute_budget_flops,
                                      compute_optimal_search,
                                      evaluate_candidate,
                                      naive_chinchilla_point)

__all__ = [
    "LossEstimate",
    "expected_loss",
    "optimal_split",
    "undertraining_penalty",
    "ALPHA",
    "BETA",
    "ChinchillaCandidate",
    "TABLE_IV_ARCHITECTURES",
    "TOKENS_PER_PARAMETER",
    "best_plan_for_budget",
    "candidate_model",
    "compute_budget_flops",
    "compute_optimal_search",
    "evaluate_candidate",
    "naive_chinchilla_point",
]
