"""Explicit cluster-network topology graphs.

The flat Equation-1 model (:mod:`repro.hardware.interconnect`) collapses
the whole inter-node fabric into one aggregate ``alpha * Bmax`` pipe. A
real cluster is a graph: GPUs hang off an NVSwitch inside each node,
nodes reach the fabric through several HCAs ("rails"), and the fabric
itself is either rail-optimized (one non-blocking switch per rail, the
DGX SuperPOD design) or a 2-level fat tree whose leaf uplinks may be
oversubscribed. Echo (arXiv:2412.12487) and Charon (arXiv:2605.17164)
both show that modeling this structure — and the link-level contention
it creates — is what keeps simulator error low at scale.

This module provides the graph: nodes and switches joined by directed
:class:`Link` objects carrying per-link bandwidth and latency, plus
deterministic routing between any two GPU endpoints. Three concrete
shapes are built in:

* :class:`NvSwitchNodeTopology` — one server node, every GPU on a
  central NVSwitch (the intra-node NVLink domain).
* :class:`RailOptimizedTopology` — NVSwitch nodes whose HCA *r* connects
  to rail switch *r*; any two nodes are one switch apart on every rail
  and rails never share links (non-blocking).
* :class:`FatTreeTopology` — NVSwitch nodes under leaf (ToR) switches,
  leaves joined by spine switches, with a configurable uplink
  oversubscription ratio.

Costing collectives over these graphs lives in
:mod:`repro.network.collectives`; choosing an algorithm in
:mod:`repro.network.selection`; the drop-in ``NcclModel`` replacement in
:mod:`repro.network.model`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # imported lazily to avoid a config <-> network cycle
    from repro.config.system import SystemConfig

#: Modeled latency of traversing a switch ASIC (port-to-port).
SWITCH_HOP_LATENCY = 0.5e-6


@dataclass(frozen=True)
class Link:
    """One directed link of the topology graph.

    Attributes:
        src: Id of the transmitting element.
        dst: Id of the receiving element.
        bandwidth: Link capacity in bytes/s. A link carrying ``k``
            concurrent flows delivers ``bandwidth / k`` to each (see
            :func:`repro.network.collectives.transfer_time`).
        latency: Propagation + serialization latency of one traversal.
    """

    src: str
    dst: str
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError(f"link {self.src}->{self.dst} needs positive "
                              "bandwidth")
        if self.latency < 0:
            raise ConfigError(f"link {self.src}->{self.dst} has negative "
                              "latency")


def gpu_id(node: int, local: int) -> str:
    """Endpoint id of GPU ``local`` on server node ``node``."""
    return f"gpu:{node}:{local}"


class Topology:
    """A network graph of GPUs, NICs and switches with routing.

    Subclasses build their link structure in ``__init__`` and may
    override :meth:`route` with closed-form, channel-aware paths; the
    base implementation is a deterministic breadth-first shortest path
    (ties broken by sorted neighbor id) that ignores the channel.
    """

    name = "topology"

    def __init__(self) -> None:
        self._links: dict[tuple[str, str], Link] = {}
        self._neighbors: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_link(self, src: str, dst: str, bandwidth: float,
                 latency: float, *, bidirectional: bool = True) -> None:
        """Add a link (both directions unless ``bidirectional=False``)."""
        ends = [(src, dst), (dst, src)] if bidirectional else [(src, dst)]
        for u, v in ends:
            if (u, v) in self._links:
                raise ConfigError(f"duplicate link {u}->{v}")
            self._links[(u, v)] = Link(u, v, bandwidth, latency)
            self._neighbors.setdefault(u, []).append(v)
            self._neighbors.setdefault(v, [])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All element ids, sorted."""
        return sorted(self._neighbors)

    @property
    def num_links(self) -> int:
        """Number of directed links."""
        return len(self._links)

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst``."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ConfigError(f"no link {src}->{dst} in {self.name}") from None

    def neighbors(self, element: str) -> list[str]:
        """Elements reachable in one hop, sorted."""
        if element not in self._neighbors:
            raise ConfigError(f"unknown element {element!r} in {self.name}")
        return sorted(self._neighbors[element])

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def path(self, elements: list[str]) -> list[Link]:
        """Turn an element sequence into its link sequence."""
        return [self.link(u, v) for u, v in zip(elements, elements[1:])]

    def route(self, src: str, dst: str, *, channel: int = 0) -> list[Link]:
        """Links traversed from ``src`` to ``dst``.

        ``channel`` selects among equal-cost paths (NCCL channels map to
        HCA rails); the base implementation ignores it.
        """
        del channel
        if src == dst:
            return []
        parents: dict[str, str] = {src: src}
        queue = deque([src])
        while queue:
            here = queue.popleft()
            if here == dst:
                break
            for neighbor in self.neighbors(here):
                if neighbor not in parents:
                    parents[neighbor] = here
                    queue.append(neighbor)
        if dst not in parents:
            raise ConfigError(f"no route {src} -> {dst} in {self.name}")
        elements = [dst]
        while elements[-1] != src:
            elements.append(parents[elements[-1]])
        return self.path(elements[::-1])


class _ClusterTopologyBase(Topology):
    """Shared intra-node structure: GPUs on an NVSwitch, NICs behind it.

    Per node ``n`` the elements are ``gpu:n:l`` (``l`` < gpus_per_node),
    ``nvswitch:n``, and ``nic:n:r`` (``r`` < nics_per_node). NVLink hops
    carry half the end-to-end intra-node latency each, so a
    GPU -> NVSwitch -> GPU path costs one full ``intranode_latency``.
    """

    def __init__(self, num_nodes: int, gpus_per_node: int,
                 nics_per_node: int, *, nvlink_bandwidth: float,
                 nic_bandwidth: float, intranode_latency: float,
                 internode_latency: float) -> None:
        super().__init__()
        if num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if gpus_per_node < 1 or nics_per_node < 1:
            raise ConfigError("gpus_per_node and nics_per_node must be >= 1")
        self.num_nodes = num_nodes
        self.gpus_per_node = gpus_per_node
        self.nics_per_node = nics_per_node
        self.nic_bandwidth = nic_bandwidth
        self.internode_latency = internode_latency
        for node in range(num_nodes):
            switch = f"nvswitch:{node}"
            for local in range(gpus_per_node):
                self.add_link(gpu_id(node, local), switch,
                              nvlink_bandwidth, intranode_latency / 2)
            for rail in range(nics_per_node):
                self.add_link(switch, f"nic:{node}:{rail}",
                              nic_bandwidth, SWITCH_HOP_LATENCY)

    def _intra_route(self, src: str, dst: str, node: int) -> list[str]:
        return [src, f"nvswitch:{node}", dst]

    def _parse_gpu(self, element: str) -> tuple[int, int]:
        try:
            kind, node, local = element.split(":")
            if kind != "gpu":
                raise ValueError
            return int(node), int(local)
        except ValueError:
            raise ConfigError(
                f"{element!r} is not a GPU endpoint (gpu:<node>:<local>)"
            ) from None


class NvSwitchNodeTopology(_ClusterTopologyBase):
    """A single NVSwitch server node (the intra-node NVLink domain)."""

    name = "nvswitch-node"

    def __init__(self, gpus_per_node: int, *, nvlink_bandwidth: float,
                 intranode_latency: float) -> None:
        super().__init__(1, gpus_per_node, 1,
                         nvlink_bandwidth=nvlink_bandwidth,
                         nic_bandwidth=nvlink_bandwidth,
                         intranode_latency=intranode_latency,
                         internode_latency=0.0)

    def route(self, src: str, dst: str, *, channel: int = 0) -> list[Link]:
        del channel
        if src == dst:
            return []
        self._parse_gpu(src), self._parse_gpu(dst)
        return self.path(self._intra_route(src, dst, 0))


class RailOptimizedTopology(_ClusterTopologyBase):
    """Rail-optimized fabric: HCA ``r`` of every node on rail switch ``r``.

    The DGX-SuperPOD design: each rail is a non-blocking switch of its
    own, so same-rail traffic between any two nodes crosses exactly one
    switch and different rails never share a link.
    """

    name = "rail"

    def __init__(self, num_nodes: int, gpus_per_node: int,
                 nics_per_node: int, *, nvlink_bandwidth: float,
                 nic_bandwidth: float, intranode_latency: float,
                 internode_latency: float) -> None:
        super().__init__(num_nodes, gpus_per_node, nics_per_node,
                         nvlink_bandwidth=nvlink_bandwidth,
                         nic_bandwidth=nic_bandwidth,
                         intranode_latency=intranode_latency,
                         internode_latency=internode_latency)
        for rail in range(nics_per_node):
            for node in range(num_nodes):
                self.add_link(f"nic:{node}:{rail}", f"rail:{rail}",
                              nic_bandwidth, internode_latency / 2)

    def route(self, src: str, dst: str, *, channel: int = 0) -> list[Link]:
        if src == dst:
            return []
        src_node, _ = self._parse_gpu(src)
        dst_node, _ = self._parse_gpu(dst)
        if src_node == dst_node:
            return self.path(self._intra_route(src, dst, src_node))
        rail = channel % self.nics_per_node
        return self.path([
            src, f"nvswitch:{src_node}", f"nic:{src_node}:{rail}",
            f"rail:{rail}", f"nic:{dst_node}:{rail}",
            f"nvswitch:{dst_node}", dst,
        ])


class FatTreeTopology(_ClusterTopologyBase):
    """2-level fat tree: nodes under leaf switches, leaves under spines.

    Each leaf hosts ``nodes_per_leaf`` nodes; its downlink capacity is
    ``nodes_per_leaf * nics_per_node * nic_bandwidth`` and its uplink
    capacity is that divided by ``oversubscription``, spread over
    ``nics_per_node`` spine links. A non-blocking tree has
    ``oversubscription=1.0``; typical cost-reduced clusters run 2:1 to
    8:1, which this graph exposes as spine-link contention.
    """

    name = "fat-tree"

    def __init__(self, num_nodes: int, gpus_per_node: int,
                 nics_per_node: int, *, nvlink_bandwidth: float,
                 nic_bandwidth: float, intranode_latency: float,
                 internode_latency: float, oversubscription: float = 1.0,
                 nodes_per_leaf: int = 4) -> None:
        super().__init__(num_nodes, gpus_per_node, nics_per_node,
                         nvlink_bandwidth=nvlink_bandwidth,
                         nic_bandwidth=nic_bandwidth,
                         intranode_latency=intranode_latency,
                         internode_latency=internode_latency)
        if oversubscription < 1.0:
            raise ConfigError("oversubscription ratio must be >= 1.0")
        if nodes_per_leaf < 1:
            raise ConfigError("nodes_per_leaf must be >= 1")
        self.oversubscription = oversubscription
        self.nodes_per_leaf = min(nodes_per_leaf, num_nodes)
        self.num_leaves = -(-num_nodes // self.nodes_per_leaf)
        self.num_spines = nics_per_node
        for node in range(num_nodes):
            leaf = f"leaf:{node // self.nodes_per_leaf}"
            for rail in range(nics_per_node):
                self.add_link(f"nic:{node}:{rail}", leaf, nic_bandwidth,
                              internode_latency / 2)
        uplink_total = (self.nodes_per_leaf * nics_per_node * nic_bandwidth
                        / oversubscription)
        self.uplink_bandwidth = uplink_total / self.num_spines
        if self.num_leaves > 1:
            for leaf in range(self.num_leaves):
                for spine in range(self.num_spines):
                    self.add_link(f"leaf:{leaf}", f"spine:{spine}",
                                  self.uplink_bandwidth,
                                  internode_latency / 2)

    def leaf_of(self, node: int) -> int:
        """Leaf switch index hosting server node ``node``."""
        return node // self.nodes_per_leaf

    def route(self, src: str, dst: str, *, channel: int = 0) -> list[Link]:
        if src == dst:
            return []
        src_node, _ = self._parse_gpu(src)
        dst_node, _ = self._parse_gpu(dst)
        if src_node == dst_node:
            return self.path(self._intra_route(src, dst, src_node))
        rail = channel % self.nics_per_node
        src_leaf, dst_leaf = self.leaf_of(src_node), self.leaf_of(dst_node)
        elements = [src, f"nvswitch:{src_node}", f"nic:{src_node}:{rail}",
                    f"leaf:{src_leaf}"]
        if src_leaf != dst_leaf:
            elements += [f"spine:{channel % self.num_spines}",
                         f"leaf:{dst_leaf}"]
        elements += [f"nic:{dst_node}:{rail}", f"nvswitch:{dst_node}", dst]
        return self.path(elements)


def build_topology(system: "SystemConfig") -> Topology:
    """The topology graph a system's ``network`` spec describes.

    ``flat`` has no graph (it is the Equation-1 aggregate pipe) and is
    rejected — callers should keep using the flat
    :class:`~repro.profiling.nccl.NcclModel` for it (see
    :func:`repro.network.model.nccl_model_for`).
    """
    spec = system.network_spec
    shared = dict(nvlink_bandwidth=system.gpu.nvlink_bandwidth,
                  nic_bandwidth=system.nic_bandwidth,
                  intranode_latency=system.intranode_latency,
                  internode_latency=system.internode_latency)
    if spec.kind == "rail":
        return RailOptimizedTopology(system.num_nodes, system.gpus_per_node,
                                     system.nics_per_node, **shared)
    if spec.kind == "fat-tree":
        return FatTreeTopology(system.num_nodes, system.gpus_per_node,
                               system.nics_per_node,
                               oversubscription=spec.oversubscription,
                               **shared)
    raise ConfigError(
        f"network {system.network!r} has no topology graph; the flat "
        "model is NcclModel itself")
