"""Topology-aware drop-in replacement for the flat ``NcclModel``.

:class:`TopologyAwareNcclModel` honors the exact operator-timing
interface of :class:`repro.profiling.nccl.NcclModel` — ``profile_table``,
``allreduce_time`` / ``allgather_time`` / ``reduce_scatter_time`` /
``sendrecv_time`` and the :meth:`time` dispatcher — so every consumer
(:class:`~repro.sim.estimator.VTrain`, the graph builder, the DSE
engine) can swap it in without change.

The split of responsibilities mirrors the paper's two regimes:

* **Intra-node** collectives stay on the inherited profiled NVLink table
  (Section III-D) — bit-identical to the flat model, so a single-node
  hierarchical case *is* the NVLink ring table.
* **Inter-node** collectives are costed on the explicit topology graph
  (:mod:`repro.network.topology`): the group is placed onto nodes the
  way the 3D-parallel rank mapping places it (members stride across the
  machine by ``num_nodes / span``), an algorithm is auto-selected
  (:mod:`repro.network.selection`), and the chosen algorithm's routed
  flows are charged per-link contention
  (:mod:`repro.network.collectives`).

Like the flat model, one collective is costed in isolation — concurrent
*other* groups of the same job are the dynamic interference the paper
handles separately (its acknowledged multi-node error source).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.hardware.interconnect import LinkType, nvlink_ring
from repro.network.collectives import (Flow, hierarchical_allreduce_time,
                                       ring_allgather_time,
                                       ring_allreduce_time, transfer_time,
                                       tree_allreduce_time)
from repro.network.selection import CollectiveAlgorithm, select_algorithm
from repro.network.topology import Topology, build_topology, gpu_id
from repro.profiling.nccl import NcclModel


@dataclass(frozen=True)
class GroupPlacement:
    """Where an inter-node communication group's ranks live.

    The model's interface carries only ``group_size``, so the placement
    reconstructs the representative layout the 3D rank mapping
    (:class:`~repro.hardware.cluster.ClusterTopology`) produces: exactly
    ``group_size`` members dealt round-robin over ``nodes_spanned``
    nodes, ``node_stride`` apart (a data-parallel group strides by
    ``tensor*pipeline`` ranks, i.e. ``num_nodes / span`` nodes on a
    job-sized system). A group that does not divide evenly is ragged —
    the first nodes carry one extra member — never padded.
    """

    group_size: int
    nodes_spanned: int
    node_stride: int

    @property
    def ranks_per_node(self) -> int:
        """Largest co-located member count (the busiest node)."""
        return -(-self.group_size // self.nodes_spanned)

    def node_of(self, member: int) -> int:
        """Server node of the ``member``-th group rank."""
        return (member % self.nodes_spanned) * self.node_stride

    def members(self) -> list[str]:
        """GPU endpoints in ring order: co-located members adjacent
        (node-major), so a ring crosses the fabric once per node — the
        locality-aware order NCCL builds its rings in — and intra-node
        hops ride NVLink."""
        return [gpu for slots in self.node_slots() for gpu in slots]

    def node_slots(self) -> list[list[str]]:
        """Per participating node, its co-located members (for the
        hierarchical algorithm); ragged when the group does not divide
        evenly."""
        slots: list[list[str]] = [[] for _ in range(self.nodes_spanned)]
        for member in range(self.group_size):
            slots[member % self.nodes_spanned].append(
                gpu_id(self.node_of(member), member // self.nodes_spanned))
        return slots


def place_group(group_size: int, num_nodes: int) -> GroupPlacement:
    """Representative placement of a ``group_size`` inter-node group."""
    if group_size < 2:
        raise ConfigError("placement needs group_size >= 2")
    if num_nodes < 2:
        raise ConfigError("placement needs num_nodes >= 2")
    span = min(group_size, num_nodes)
    stride = max(1, num_nodes // span)
    return GroupPlacement(group_size=group_size, nodes_spanned=span,
                          node_stride=stride)


class TopologyAwareNcclModel(NcclModel):
    """Times communication operators over an explicit network topology.

    Args:
        system: Cluster description; ``system.network`` must name a
            non-flat topology (``rail`` or ``fat-tree[:ratio]``) unless
            an explicit ``topology`` is given.
        interference: Multiplier on intra-node collective latency,
            exactly as in :class:`~repro.profiling.nccl.NcclModel`.
        topology: Override the graph built from ``system.network``.
    """

    def __init__(self, system: SystemConfig, *, interference: float = 1.0,
                 topology: Topology | None = None) -> None:
        super().__init__(system, interference=interference)
        self.topology = (topology if topology is not None
                         else build_topology(system))

    # ------------------------------------------------------------------
    # Inter-node collective timing over the topology
    # ------------------------------------------------------------------
    def _channels(self) -> int:
        return self.system.nics_per_node

    def _select(self, size_bytes: float, group_size: int,
                ) -> tuple[GroupPlacement, CollectiveAlgorithm]:
        placement = place_group(group_size, self.system.num_nodes)
        algorithm = select_algorithm(
            size_bytes, group_size,
            nodes_spanned=placement.nodes_spanned,
            ranks_per_node=placement.ranks_per_node)
        return placement, algorithm

    def _inter_allreduce(self, placement: GroupPlacement,
                         algorithm: CollectiveAlgorithm,
                         size_bytes: float) -> float:
        if algorithm is CollectiveAlgorithm.HIERARCHICAL:
            intra = nvlink_ring(self.system, placement.ranks_per_node)
            return hierarchical_allreduce_time(
                self.topology, placement.node_slots(), size_bytes,
                intra_ring=intra, intra_interference=self.interference,
                channels=self._channels())
        if algorithm is CollectiveAlgorithm.TREE:
            return tree_allreduce_time(self.topology, placement.members(),
                                       size_bytes,
                                       channels=self._channels())
        return ring_allreduce_time(self.topology, placement.members(),
                                   size_bytes, channels=self._channels())

    def allreduce_time(self, size_bytes: float, group_size: int,
                       link: LinkType) -> float:
        if (link is LinkType.INTRA_NODE or group_size <= 1
                or size_bytes <= 0 or self.system.num_nodes < 2):
            return super().allreduce_time(size_bytes, group_size, link)
        placement, algorithm = self._select(size_bytes, group_size)
        return self._inter_allreduce(placement, algorithm, size_bytes)

    def allgather_time(self, size_bytes: float, group_size: int,
                       link: LinkType) -> float:
        if (link is LinkType.INTRA_NODE or group_size <= 1
                or size_bytes <= 0 or self.system.num_nodes < 2):
            return super().allgather_time(size_bytes, group_size, link)
        placement = place_group(group_size, self.system.num_nodes)
        return ring_allgather_time(self.topology, placement.members(),
                                   size_bytes, channels=self._channels())

    def reduce_scatter_time(self, size_bytes: float, group_size: int,
                            link: LinkType) -> float:
        return self.allgather_time(size_bytes, group_size, link)

    def sendrecv_time(self, size_bytes: float, link: LinkType) -> float:
        """P2P between adjacent pipeline stages: one uncontended routed
        flow between neighbor nodes (one rail end to end)."""
        if (link is LinkType.INTRA_NODE or size_bytes <= 0
                or self.system.num_nodes < 2):
            return super().sendrecv_time(size_bytes, link)
        path = self.topology.route(gpu_id(0, 0), gpu_id(1, 0), channel=0)
        return transfer_time([Flow(tuple(path), size_bytes)])

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def explain(self, size_bytes: float, group_size: int) -> dict[str, object]:
        """Chosen algorithm and placement for one inter-node collective
        (for reports and what-if tooling)."""
        if group_size < 2 or self.system.num_nodes < 2:
            # Same degenerate cases allreduce_time delegates to the base
            # model (profiled table / flat formulas).
            return {
                "topology": self.topology.name,
                "algorithm": "flat-fallback",
                "nodes_spanned": min(group_size, self.system.num_nodes),
                "ranks_per_node": group_size,
                "node_stride": 0,
                "time": self.allreduce_time(size_bytes, group_size,
                                            LinkType.INTER_NODE),
            }
        placement, algorithm = self._select(size_bytes, group_size)
        return {
            "topology": self.topology.name,
            "algorithm": algorithm.value,
            "nodes_spanned": placement.nodes_spanned,
            "ranks_per_node": placement.ranks_per_node,
            "node_stride": placement.node_stride,
            "time": self._inter_allreduce(placement, algorithm, size_bytes),
        }


def nccl_model_for(system: SystemConfig, *,
                   interference: float = 1.0) -> NcclModel:
    """The communication model a system's ``network`` spec asks for.

    ``flat`` returns the plain :class:`~repro.profiling.nccl.NcclModel`
    (bit-identical to pre-topology behavior); anything else returns a
    :class:`TopologyAwareNcclModel` over the corresponding graph.
    """
    if system.network_spec.kind == "flat":
        return NcclModel(system, interference=interference)
    return TopologyAwareNcclModel(system, interference=interference)
