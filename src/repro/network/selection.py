"""Collective-algorithm auto-selection (NCCL tuning, qualitatively).

NCCL picks its algorithm/protocol per call from payload size and
communicator shape; this module mirrors the decisions that matter at
simulation granularity:

* groups spanning several nodes with several ranks per node take the
  **two-level hierarchical** All-Reduce (intra reduce-scatter, inter
  rings over rails, intra all-gather) — NCCL's multi-node default;
* small payloads take the **binomial tree** (``2·log2 n`` latency-bound
  rounds beat the ring's ``2(n-1)``), with the crossover growing with
  group size exactly as NCCL's tuning tables shift tree-ward at scale;
* everything else takes the bandwidth-optimal **ring**.
"""

from __future__ import annotations

import enum

from repro import obs
from repro.errors import ConfigError
from repro.hardware.interconnect import log2_ceil

MIB = float(1 << 20)

#: Base ring/tree crossover payload for a 2-member group; the effective
#: threshold scales with ``log2(group_size)`` (see NCCL's tuning model,
#: where tree stays competitive to larger payloads as the ring lengthens).
TREE_THRESHOLD_BYTES = 1.0 * MIB


class CollectiveAlgorithm(enum.Enum):
    """Algorithms the cost model can select between."""

    RING = "ring"
    TREE = "tree"
    HIERARCHICAL = "hierarchical"


def tree_threshold(group_size: int) -> float:
    """Payload below which the tree beats the ring for this group."""
    if group_size < 2:
        return 0.0
    return TREE_THRESHOLD_BYTES * log2_ceil(group_size)


def select_algorithm(size_bytes: float, group_size: int, *,
                     nodes_spanned: int,
                     ranks_per_node: int = 1) -> CollectiveAlgorithm:
    """Choose the algorithm for one inter-node collective.

    Args:
        size_bytes: Collective payload.
        group_size: Total participating ranks.
        nodes_spanned: Distinct server nodes the group touches.
        ranks_per_node: Group members co-located on each node.
    """
    if group_size < 2:
        raise ConfigError("selection needs group_size >= 2")
    if nodes_spanned < 1 or ranks_per_node < 1:
        raise ConfigError("nodes_spanned and ranks_per_node must be >= 1")
    if nodes_spanned > 1 and ranks_per_node > 1:
        algorithm = CollectiveAlgorithm.HIERARCHICAL
    elif size_bytes <= tree_threshold(group_size):
        algorithm = CollectiveAlgorithm.TREE
    else:
        algorithm = CollectiveAlgorithm.RING
    if obs.enabled():
        obs.count(f"network.select.{algorithm.value}")
    return algorithm
