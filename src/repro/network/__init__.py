"""Topology-aware network & collective-algorithm subsystem.

Models the inter-node fabric as an explicit graph (NVSwitch nodes,
rail-optimized fabrics, oversubscribed fat trees), costs collectives by
walking routed paths with per-link contention counting, auto-selects
among ring / binomial-tree / two-level hierarchical algorithms the way
NCCL's tuning does, and packages the whole thing as
:class:`TopologyAwareNcclModel` — a drop-in behind the flat
:class:`~repro.profiling.nccl.NcclModel` selected per system via
``SystemConfig.network`` (``flat`` / ``rail`` / ``fat-tree:<ratio>``).
"""

from repro.network.collectives import (Flow, flat_ring_lower_bound,
                                       hierarchical_allreduce_time,
                                       ring_allgather_time,
                                       ring_allreduce_time,
                                       ring_reduce_scatter_time,
                                       transfer_time, tree_allreduce_time)
from repro.network.model import (GroupPlacement, TopologyAwareNcclModel,
                                 nccl_model_for, place_group)
from repro.network.selection import (CollectiveAlgorithm, select_algorithm,
                                     tree_threshold)
from repro.network.topology import (FatTreeTopology, Link,
                                    NvSwitchNodeTopology,
                                    RailOptimizedTopology, Topology,
                                    build_topology, gpu_id)

__all__ = [
    "CollectiveAlgorithm",
    "FatTreeTopology",
    "Flow",
    "GroupPlacement",
    "Link",
    "NvSwitchNodeTopology",
    "RailOptimizedTopology",
    "Topology",
    "TopologyAwareNcclModel",
    "build_topology",
    "flat_ring_lower_bound",
    "gpu_id",
    "hierarchical_allreduce_time",
    "nccl_model_for",
    "place_group",
    "ring_allgather_time",
    "ring_allreduce_time",
    "ring_reduce_scatter_time",
    "select_algorithm",
    "transfer_time",
    "tree_allreduce_time",
    "tree_threshold",
]
