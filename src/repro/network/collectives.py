"""Collective algorithms costed by walking routed topology paths.

Every algorithm here is costed the same way: build the set of flows
(routed source→destination paths plus a payload) that are on the wire
*concurrently*, charge each link for the flows crossing it — a link of
bandwidth ``B`` carrying ``k`` concurrent flows delivers ``B / k`` to
each — and take the slowest flow as the step time. Serial steps then sum.
This is the link-level contention model Echo and Charon argue is needed
for accurate large-scale collectives, applied to the three algorithms
NCCL actually runs:

* **Ring** — ``2(n-1)`` steps of neighbor exchange, payload split over
  ``channels`` parallel rings (NCCL channels map onto HCA rails, which
  is how a multi-rail node reaches its aggregate bandwidth).
* **Binomial tree** — a reduce sweep up and a broadcast sweep down,
  ``2·ceil(log2 n)`` rounds of full-payload hops; latency-optimal, so it
  wins for small payloads.
* **Two-level hierarchical** (NCCL's multi-node All-Reduce): intra-node
  reduce-scatter over NVLink, one inter-node ring per local rank over
  its own rail, intra-node all-gather.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.interconnect import RingParameters, log2_ceil
from repro.network.topology import Link, Topology


@dataclass(frozen=True)
class Flow:
    """One concurrent transfer: a routed path and its payload."""

    links: tuple[Link, ...]
    size_bytes: float


def transfer_time(flows: list[Flow]) -> float:
    """Completion time of a set of concurrent flows.

    Each link is shared equally among the flows crossing it; a flow's
    bandwidth is its bottleneck share along the path, its time is
    payload over bandwidth plus the path's summed link latencies, and
    the transfer finishes when the slowest flow does.
    """
    load: Counter[Link] = Counter()
    for flow in flows:
        load.update(flow.links)
    worst = 0.0
    for flow in flows:
        latency = sum(link.latency for link in flow.links)
        if flow.links and flow.size_bytes > 0:
            bandwidth = min(link.bandwidth / load[link]
                            for link in flow.links)
            worst = max(worst, flow.size_bytes / bandwidth + latency)
        else:
            worst = max(worst, latency)
    return worst


def _ring_step_flows(topology: Topology, gpus: list[str],
                     chunk_bytes: float, channels: int) -> list[Flow]:
    """Flows of one ring step: every member sends a chunk to its
    successor, simultaneously on every channel."""
    count = len(gpus)
    flows = []
    for channel in range(channels):
        for index in range(count):
            path = topology.route(gpus[index], gpus[(index + 1) % count],
                                  channel=channel)
            flows.append(Flow(tuple(path), chunk_bytes))
    return flows


def _check_group(gpus: list[str]) -> None:
    if len(set(gpus)) != len(gpus):
        raise ConfigError("collective group has repeated members")


def ring_allreduce_time(topology: Topology, gpus: list[str],
                        size_bytes: float, *, channels: int = 1) -> float:
    """Ring All-Reduce: ``2(n-1)`` neighbor-exchange steps.

    The payload is striped over ``channels`` concurrent rings (rail
    ``c`` carries ``size/channels``); within each ring a step moves one
    ``1/n`` chunk per member. All steps are identical by symmetry, so
    the total is ``2(n-1)`` times the contention-costed step.
    """
    _check_group(gpus)
    count = len(gpus)
    if count <= 1 or size_bytes <= 0:
        return 0.0
    if channels < 1:
        raise ConfigError("channels must be >= 1")
    chunk = size_bytes / channels / count
    step = transfer_time(_ring_step_flows(topology, gpus, chunk, channels))
    return 2 * (count - 1) * step


def ring_allgather_time(topology: Topology, gpus: list[str],
                        size_bytes: float, *, channels: int = 1) -> float:
    """Ring All-Gather: ``n-1`` steps, each member forwarding one chunk."""
    _check_group(gpus)
    count = len(gpus)
    if count <= 1 or size_bytes <= 0:
        return 0.0
    if channels < 1:
        raise ConfigError("channels must be >= 1")
    chunk = size_bytes / channels / count
    step = transfer_time(_ring_step_flows(topology, gpus, chunk, channels))
    return (count - 1) * step


def ring_reduce_scatter_time(topology: Topology, gpus: list[str],
                             size_bytes: float, *,
                             channels: int = 1) -> float:
    """Ring Reduce-Scatter (same wire traffic as All-Gather)."""
    return ring_allgather_time(topology, gpus, size_bytes,
                               channels=channels)


def tree_allreduce_time(topology: Topology, gpus: list[str],
                        size_bytes: float, *, channels: int = 1) -> float:
    """Binomial-tree All-Reduce: reduce up, broadcast down.

    Round ``k`` of the reduce pairs members ``2^k`` apart; each pair
    exchanges the full (per-channel) payload. The broadcast mirrors the
    reduce, so the total is twice the summed round times — ``2·ceil(log2
    n)`` rounds against the ring's ``2(n-1)`` steps, which is why tree
    wins when latency dominates.
    """
    _check_group(gpus)
    count = len(gpus)
    if count <= 1 or size_bytes <= 0:
        return 0.0
    if channels < 1:
        raise ConfigError("channels must be >= 1")
    payload = size_bytes / channels
    total = 0.0
    for round_index in range(log2_ceil(count)):
        distance = 1 << round_index
        flows = []
        for channel in range(channels):
            for receiver in range(0, count, 2 * distance):
                sender = receiver + distance
                if sender < count:
                    path = topology.route(gpus[sender], gpus[receiver],
                                          channel=channel)
                    flows.append(Flow(tuple(path), payload))
        total += transfer_time(flows)
    return 2 * total


def hierarchical_allreduce_time(topology: Topology,
                                node_slots: list[list[str]],
                                size_bytes: float, *,
                                intra_ring: RingParameters,
                                intra_interference: float = 1.0,
                                channels: int = 1) -> float:
    """NCCL-style two-level All-Reduce over ``node_slots``.

    ``node_slots[n][s]`` is the GPU of local rank (slot) ``s`` on the
    ``n``-th participating node. Three phases:

    1. intra-node reduce-scatter of the payload over the local ranks
       (NVLink ring, from ``intra_ring``, scaled by
       ``intra_interference`` like every intra-node collective);
    2. concurrent inter-node rings — slot ``s`` All-Reduces its
       ``size/L`` shard across nodes on channel ``s`` (its own rail;
       slots sharing a rail contend, which the link-level counting
       charges automatically);
    3. intra-node all-gather of the reduced shards.

    Slot counts may be ragged (a group that does not divide evenly
    across its nodes): a slot's ring simply spans the nodes that have
    it, and the intra phases are costed at the largest local group.
    Single-node groups never reach this function — the topology-aware
    model keeps them on the profiled NVLink table, which this
    decomposition reduces to exactly (phase 2 vanishes and phases 1+3
    are the table's ring).
    """
    del channels  # phase 2 parallelism is one ring per local slot
    num_nodes = len(node_slots)
    if num_nodes < 2:
        raise ConfigError(
            "hierarchical All-Reduce needs >= 2 nodes; single-node groups "
            "use the profiled NVLink table")
    if intra_interference < 1.0:
        raise ConfigError("intra_interference must be >= 1.0")
    local = max(len(slots) for slots in node_slots)
    if any(not slots for slots in node_slots):
        raise ConfigError("every node must contribute at least one slot")
    _check_group([gpu for slots in node_slots for gpu in slots])
    if size_bytes <= 0:
        return 0.0

    intra = 0.0
    if local > 1:
        intra = (intra_ring.reduce_scatter_time(size_bytes, local)
                 + intra_ring.allgather_time(size_bytes, local)
                 ) * intra_interference

    shard = size_bytes / local
    flows = []
    for slot in range(local):
        ring = [slots[slot] for slots in node_slots if slot < len(slots)]
        if len(ring) < 2:
            continue  # this shard lives on one node; nothing inter-node
        chunk = shard / len(ring)
        for index in range(len(ring)):
            path = topology.route(ring[index],
                                  ring[(index + 1) % len(ring)],
                                  channel=slot)
            flows.append(Flow(tuple(path), chunk))
    inter = 2 * (num_nodes - 1) * transfer_time(flows)
    return intra + inter


def flat_ring_lower_bound(bandwidth: float, size_bytes: float,
                          group_size: int) -> float:
    """Equation-1 transfer term ``S/B · 2(n-1)/n`` — the latency-free
    flat-ring time, a lower bound for any algorithm on an uncontended
    topology whose aggregate per-node egress is ``bandwidth``."""
    if group_size <= 1 or size_bytes <= 0:
        return 0.0
    return (size_bytes / bandwidth
            * 2.0 * (group_size - 1) / group_size)
