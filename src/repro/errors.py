"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An input description or configuration value is invalid."""


class InfeasibleConfigError(ReproError):
    """A parallelization plan cannot run on the given system.

    Raised when a (t, d, p, m) plan violates a structural constraint
    (e.g. t*d*p does not match the GPU count) or exceeds per-GPU memory.
    """


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency.

    The usual cause is a task graph containing a dependency cycle, which
    leaves tasks unexecuted when the ready queue drains.
    """


class ProfilingError(ReproError):
    """The profiling module could not resolve an operator to kernels."""


class SchedulingError(ReproError):
    """The multi-tenant cluster scheduler reached an invalid state."""
