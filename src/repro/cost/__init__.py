"""Monetary cost modelling (AWS P4d proxy)."""

from repro.cost.pricing import (DEFAULT_PRICING, P4D_DOLLARS_PER_GPU_HOUR,
                                P4D_GPUS_PER_INSTANCE, PricingModel)

__all__ = [
    "DEFAULT_PRICING",
    "P4D_DOLLARS_PER_GPU_HOUR",
    "P4D_GPUS_PER_INSTANCE",
    "PricingModel",
]
