"""Monetary cost model (AWS EC2 P4d proxy, as in Figure 1 and Table I).

Table I prices 2,240 A100 GPUs at $11,200/hour — exactly $5 per GPU-hour,
the effective on-demand rate the paper derives from p4d instance pricing.
All dollar figures in the reproduction use this constant so cost columns
are directly comparable with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86_400.0

#: Effective AWS EC2 P4d price per A100 GPU-hour (Table I).
P4D_DOLLARS_PER_GPU_HOUR = 5.0

#: GPUs per p4d.24xlarge instance.
P4D_GPUS_PER_INSTANCE = 8


@dataclass(frozen=True)
class PricingModel:
    """Hourly GPU pricing with simple helpers.

    Attributes:
        dollars_per_gpu_hour: On-demand price of one GPU for one hour.
    """

    dollars_per_gpu_hour: float = P4D_DOLLARS_PER_GPU_HOUR

    def __post_init__(self) -> None:
        if self.dollars_per_gpu_hour <= 0:
            raise ConfigError("dollars_per_gpu_hour must be positive")

    def dollars_per_hour(self, num_gpus: int) -> float:
        """Cluster burn rate in $/hour."""
        if num_gpus <= 0:
            raise ConfigError("num_gpus must be positive")
        return self.dollars_per_gpu_hour * num_gpus

    def cost(self, num_gpus: int, seconds: float) -> float:
        """Total cost of occupying ``num_gpus`` for ``seconds``."""
        if seconds < 0:
            raise ConfigError("seconds must be non-negative")
        return self.dollars_per_hour(num_gpus) * seconds / SECONDS_PER_HOUR

    def cost_of_days(self, num_gpus: int, days: float) -> float:
        """Total cost of occupying ``num_gpus`` for ``days``."""
        return self.cost(num_gpus, days * SECONDS_PER_DAY)


DEFAULT_PRICING = PricingModel()
