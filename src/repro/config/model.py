"""Decoder-only transformer model description.

The paper characterises an LLM by four hyperparameters (Section II-A,
Figure 2): hidden size ``h``, number of decoder layers ``L``, maximum
sequence length ``s``, and number of attention heads ``n``, plus the
vocabulary size of the embedding layer / LM head.

This module provides :class:`ModelConfig` together with the standard
Megatron-LM parameter- and FLOP-accounting formulas that the paper's cost
and utilization analyses rely on (Figures 1, 10, 11; Tables I, IV).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.errors import ConfigError

#: Default vocabulary size used by the Megatron-LM model zoo (51,200 is the
#: GPT-2 vocabulary padded up to a multiple of 1,024 so it stays divisible
#: under any tensor-parallel degree used in practice).
DEFAULT_VOCAB_SIZE = 51_200


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer LLM (paper Figure 2).

    Attributes:
        hidden_size: Embedding/hidden dimension ``h``.
        num_layers: Number of stacked decoder layers ``L``.
        seq_length: Maximum input sequence length ``s``.
        num_heads: Number of attention heads ``n``; must divide ``h``.
        vocab_size: Vocabulary size of the embedding table and LM head.
        name: Optional human-readable label (e.g. ``"MT-NLG 530B"``).
    """

    hidden_size: int
    num_layers: int
    seq_length: int
    num_heads: int
    vocab_size: int = DEFAULT_VOCAB_SIZE
    name: str = ""

    def __post_init__(self) -> None:
        for field in ("hidden_size", "num_layers", "seq_length", "num_heads",
                      "vocab_size"):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"{field} must be a positive int, got {value!r}")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"num_heads ({self.num_heads})")

    # ------------------------------------------------------------------
    # Derived dimensions
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head attention dimension (``h / n``)."""
        return self.hidden_size // self.num_heads

    @property
    def ffn_hidden_size(self) -> int:
        """Intermediate FFN dimension (``4h``, paper Figure 2)."""
        return 4 * self.hidden_size

    def padded_vocab_size(self, tensor_parallel: int = 1,
                          multiple: int = 128) -> int:
        """Vocabulary padded so each tensor-parallel shard is aligned.

        Megatron pads the vocabulary to a multiple of
        ``multiple * tensor_parallel`` so the embedding table splits evenly.
        """
        if tensor_parallel <= 0:
            raise ConfigError("tensor_parallel must be positive")
        step = multiple * tensor_parallel
        return ((self.vocab_size + step - 1) // step) * step

    # ------------------------------------------------------------------
    # Parameter accounting
    # ------------------------------------------------------------------
    def params_per_layer(self) -> int:
        """Parameters of one decoder layer.

        QKV projection (``3h^2``) + attention output projection (``h^2``)
        + two FFN matrices (``8h^2``) + biases and the two LayerNorms.
        """
        h = self.hidden_size
        attention = 4 * h * h + 4 * h          # QKV + proj weights and biases
        ffn = 8 * h * h + 5 * h                # h->4h, 4h->h weights + biases
        layernorms = 4 * h                     # 2 x (gain + bias)
        return attention + ffn + layernorms

    def embedding_params(self) -> int:
        """Word + positional embedding parameters (``Vh + sh``)."""
        return (self.vocab_size + self.seq_length) * self.hidden_size

    def num_parameters(self) -> int:
        """Total parameter count.

        Matches the Megatron-LM closed form
        ``12 L h^2 (1 + 13/(12h)) + (V + s) h`` to within bias terms; e.g.
        MT-NLG (h=20480, L=105) evaluates to ~530B (Section V-A) and GPT-3
        (h=12288, L=96) to ~175B (Figure 1).
        """
        final_layernorm = 2 * self.hidden_size
        return (self.num_layers * self.params_per_layer()
                + self.embedding_params() + final_layernorm)

    @property
    def parameters_billion(self) -> float:
        """Total parameters in billions (for reporting)."""
        return self.num_parameters() / 1e9

    # ------------------------------------------------------------------
    # FLOP accounting
    # ------------------------------------------------------------------
    def flops_per_token_forward(self) -> float:
        """Forward-pass FLOPs for one token.

        The Megatron accounting: ``24 L h^2 (1 + s/(6h)) + 6 h V`` — dense
        matmuls plus the quadratic attention term plus the LM head.
        """
        h, big_l, s = self.hidden_size, self.num_layers, self.seq_length
        dense = 24.0 * big_l * h * h * (1.0 + s / (6.0 * h))
        lm_head = 6.0 * h * self.vocab_size
        return dense + lm_head

    def flops_per_token(self) -> float:
        """Forward + backward FLOPs per token (backward costs 2x forward)."""
        return 3.0 * self.flops_per_token_forward()

    def model_flops_per_iteration(self, tokens_per_iteration: int) -> float:
        """Useful (model) FLOPs of one training iteration.

        This is the numerator of the paper's "GPU compute utilization":
        achieved FLOPS relative to the hardware maximum (Figure 1 caption).
        Recomputation overhead deliberately does not count as useful work.
        """
        if tokens_per_iteration <= 0:
            raise ConfigError("tokens_per_iteration must be positive")
        return self.flops_per_token() * tokens_per_iteration

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelConfig":
        """Inverse of :meth:`to_dict`; raises ConfigError on bad input."""
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigError(f"invalid model config: {exc}") from exc

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def scaled(self, **changes) -> "ModelConfig":
        """Return a copy with selected hyperparameters replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line summary used in logs and benchmark tables."""
        label = self.name or "LLM"
        return (f"{label}: h={self.hidden_size} L={self.num_layers} "
                f"s={self.seq_length} n={self.num_heads} "
                f"({self.parameters_billion:.1f}B params)")
