"""Configuration layer: model, system, parallelism, presets, descriptions."""

from repro.config.description import InputDescription
from repro.config.model import DEFAULT_VOCAB_SIZE, ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig,
                                      layers_per_stage, num_micro_batches,
                                      validate_plan)
from repro.config.system import (NetworkSpec, SystemConfig, multi_node,
                                 single_node)

__all__ = [
    "DEFAULT_VOCAB_SIZE",
    "InputDescription",
    "ModelConfig",
    "NetworkSpec",
    "ParallelismConfig",
    "PipelineSchedule",
    "RecomputeMode",
    "SystemConfig",
    "TrainingConfig",
    "layers_per_stage",
    "multi_node",
    "num_micro_batches",
    "single_node",
    "validate_plan",
]
