"""Model and plan presets used throughout the paper's evaluation.

Sources:

* GPT-3 175B — Figure 1 (training time vs utilization on 1,024 A100s).
* MT-NLG 530B — Case study #1 (Tables I, Figures 10/11); hyperparameters
  from Section V-A: h=20480, L=105, n=128, batch of 1,920 x 2,048 tokens,
  270B training tokens.
* Megatron-LM scale-downs (Narayanan et al., SC'21 — the paper's [40]) —
  Table II validation at 64/256/512 GPUs.
* The Table III model zoo (18.4B / 39.1B / 81.2B) for the multi-tenant
  cluster study, including the per-model global batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig

# ---------------------------------------------------------------------------
# Headline models
# ---------------------------------------------------------------------------

GPT3_175B = ModelConfig(hidden_size=12288, num_layers=96, seq_length=2048,
                        num_heads=96, name="GPT-3 175B")

#: Megatron-Turing NLG (Section V-A): "20,480 of hidden size, 105 decoder
#: layers, and 128 attention heads".
MT_NLG_530B = ModelConfig(hidden_size=20480, num_layers=105, seq_length=2048,
                          num_heads=128, name="MT-NLG 530B")

#: MT-NLG's training recipe: 1,920-sequence global batch, 270B tokens.
MT_NLG_TRAINING = TrainingConfig(global_batch_size=1920,
                                 total_tokens=270_000_000_000)

#: GPT-3's recipe: 3.2M-token batches (1,536 x 2,048), 300B tokens.
GPT3_TRAINING = TrainingConfig(global_batch_size=1536,
                               total_tokens=300_000_000_000)

# ---------------------------------------------------------------------------
# Megatron-LM scale-down zoo ([40], used by Table II and Table III)
# ---------------------------------------------------------------------------

MEGATRON_1_7B = ModelConfig(hidden_size=2304, num_layers=24, seq_length=2048,
                            num_heads=24, name="Megatron 1.7B")
MEGATRON_3_6B = ModelConfig(hidden_size=3072, num_layers=30, seq_length=2048,
                            num_heads=32, name="Megatron 3.6B")
MEGATRON_7_5B = ModelConfig(hidden_size=4096, num_layers=36, seq_length=2048,
                            num_heads=32, name="Megatron 7.5B")
MEGATRON_18_4B = ModelConfig(hidden_size=6144, num_layers=40, seq_length=2048,
                             num_heads=48, name="Megatron 18.4B")
MEGATRON_39_1B = ModelConfig(hidden_size=8192, num_layers=48, seq_length=2048,
                             num_heads=64, name="Megatron 39.1B")
MEGATRON_76_1B = ModelConfig(hidden_size=10240, num_layers=60, seq_length=2048,
                             num_heads=80, name="Megatron 76.1B")
MEGATRON_81_2B = ModelConfig(hidden_size=10240, num_layers=64, seq_length=2048,
                             num_heads=80, name="Megatron 81.2B")
MEGATRON_145_6B = ModelConfig(hidden_size=12288, num_layers=80,
                              seq_length=2048, num_heads=96,
                              name="Megatron 145.6B")

MODEL_ZOO = {
    m.name: m for m in (
        GPT3_175B, MT_NLG_530B, MEGATRON_1_7B, MEGATRON_3_6B, MEGATRON_7_5B,
        MEGATRON_18_4B, MEGATRON_39_1B, MEGATRON_76_1B, MEGATRON_81_2B,
        MEGATRON_145_6B,
    )
}

# ---------------------------------------------------------------------------
# Table III — multi-tenant cluster study models and batch sizes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterModelSpec:
    """One row of Table III: a model plus its training batch size."""

    model: ModelConfig
    global_batch_size: int


TABLE_III_MODELS = (
    ClusterModelSpec(MEGATRON_18_4B, global_batch_size=1024),
    ClusterModelSpec(MEGATRON_39_1B, global_batch_size=1536),
    ClusterModelSpec(MEGATRON_81_2B, global_batch_size=1792),
)

# ---------------------------------------------------------------------------
# Table I / Table II — published baseline plans
# ---------------------------------------------------------------------------

#: The three heuristic MT-NLG plans from Smith et al. ([67], Table I left).
MT_NLG_BASELINE_PLANS = (
    ParallelismConfig(tensor=8, data=8, pipeline=35),
    ParallelismConfig(tensor=8, data=10, pipeline=35),
    ParallelismConfig(tensor=8, data=12, pipeline=35),
)

#: The vTrain-discovered cost-effective plans (Table I right).
MT_NLG_VTRAIN_PLANS = (
    ParallelismConfig(tensor=8, data=12, pipeline=21),
    ParallelismConfig(tensor=8, data=16, pipeline=21),
    ParallelismConfig(tensor=8, data=20, pipeline=21),
)


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: a scale-down validation experiment.

    ``megatron_plan`` is the plan published in [40]; ``vtrain_plan`` is the
    plan the paper's DSE uncovered. ``global_batch_size`` follows [40]'s
    scale-down training recipes.
    """

    model: ModelConfig
    num_gpus: int
    global_batch_size: int
    megatron_plan: ParallelismConfig
    vtrain_plan: ParallelismConfig


TABLE_II_ROWS = (
    Table2Row(
        model=MEGATRON_3_6B, num_gpus=64, global_batch_size=512,
        megatron_plan=ParallelismConfig(tensor=2, data=32, pipeline=1,
                                        micro_batch_size=16),
        vtrain_plan=ParallelismConfig(tensor=1, data=64, pipeline=1,
                                      micro_batch_size=8),
    ),
    Table2Row(
        model=MEGATRON_18_4B, num_gpus=256, global_batch_size=1024,
        megatron_plan=ParallelismConfig(tensor=8, data=32, pipeline=1,
                                        micro_batch_size=4),
        vtrain_plan=ParallelismConfig(tensor=8, data=32, pipeline=1,
                                      micro_batch_size=8),
    ),
    Table2Row(
        model=MEGATRON_39_1B, num_gpus=512, global_batch_size=1536,
        megatron_plan=ParallelismConfig(tensor=8, data=32, pipeline=2,
                                        micro_batch_size=4),
        vtrain_plan=ParallelismConfig(tensor=4, data=32, pipeline=4,
                                      micro_batch_size=2),
    ),
)
