"""Training-system configuration.

Describes the cluster hardware a training plan runs on: GPUs per node, the
GPU device itself, and the intra-/inter-node interconnects. This is the
"system configuration" half of vTrain's input description file (Figure 4).

The defaults mirror the paper's validation cluster (Section IV): DGX-A100
style nodes with 8 A100s on NVLink/NVSwitch, inter-node communication over
four 200 Gbps InfiniBand HCAs in a two-level non-blocking fat tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ConfigError
from repro.hardware.gpu import A100_80GB, GPUSpec, gpu_by_name

GBPS = 1e9 / 8.0  # 1 Gbit/s in bytes/s

#: Network kinds understood by :class:`NetworkSpec` (and the
#: ``repro dse --network`` flag). ``flat`` is the paper's Equation-1
#: aggregate-pipe model; the others select a topology-aware backend from
#: :mod:`repro.network`.
NETWORK_KINDS = ("flat", "rail", "fat-tree")


@dataclass(frozen=True)
class NetworkSpec:
    """Parsed form of a ``network`` string (``flat``, ``rail``,
    ``fat-tree`` or ``fat-tree:<ratio>``).

    Attributes:
        kind: One of :data:`NETWORK_KINDS`.
        oversubscription: Fat-tree uplink oversubscription ratio (1.0 is
            non-blocking; 4.0 means each leaf's uplink capacity is a
            quarter of its downlink capacity). Always 1.0 for ``flat``
            and ``rail``.
    """

    kind: str
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in NETWORK_KINDS:
            raise ConfigError(
                f"unknown network kind {self.kind!r} "
                f"(expected one of {', '.join(NETWORK_KINDS)})")
        if not (math.isfinite(self.oversubscription)
                and self.oversubscription >= 1.0):
            raise ConfigError(
                "oversubscription ratio must be a finite value >= 1.0")
        if self.kind != "fat-tree" and self.oversubscription != 1.0:
            raise ConfigError(
                f"{self.kind!r} networks take no oversubscription ratio")

    @classmethod
    def parse(cls, spec: str) -> "NetworkSpec":
        """Parse a network spec string (the CLI / config-file syntax)."""
        if not isinstance(spec, str) or not spec:
            raise ConfigError(f"invalid network spec {spec!r}")
        kind, _, ratio = spec.partition(":")
        if not ratio:
            return cls(kind=kind)
        if kind != "fat-tree":
            raise ConfigError(
                f"only fat-tree networks take a ratio, got {spec!r}")
        try:
            oversubscription = float(ratio)
        except ValueError as exc:
            raise ConfigError(
                f"invalid oversubscription ratio in {spec!r}") from exc
        return cls(kind=kind, oversubscription=oversubscription)

    def canonical(self) -> str:
        """The spec string this parses back from."""
        if self.kind == "fat-tree" and self.oversubscription != 1.0:
            return f"fat-tree:{self.oversubscription:g}"
        return self.kind


@dataclass(frozen=True)
class SystemConfig:
    """A multi-node GPU training system.

    Attributes:
        num_gpus: Total GPU count available to the training job.
        gpus_per_node: GPUs within one server node (NVLink domain).
        gpu: Device specification for every GPU in the system.
        internode_bandwidth: Aggregate inter-node bandwidth per node in
            bytes/s. The paper's cluster has four 200 Gbps HDR InfiniBand
            HCAs per node, i.e. 800 Gbps = 100 GB/s.
        internode_latency: Base latency of one inter-node message (seconds).
        bandwidth_effectiveness: The paper's alpha tuning knob (Section IV):
            the effective inter-node bandwidth is ``alpha * max bandwidth``.
            The paper found alpha = 1.0 minimised error on its cluster.
        intranode_latency: Base latency of one NVLink/NVSwitch transfer.
        nics_per_node: InfiniBand HCAs per node. ``internode_bandwidth``
            is the node aggregate, so one HCA carries
            ``internode_bandwidth / nics_per_node`` (the paper's cluster:
            four 200 Gbps HDR HCAs).
        network: Inter-node fabric spec — ``flat`` (the paper's
            Equation-1 aggregate pipe), ``rail`` (rail-optimized,
            NVSwitch + one non-blocking switch per HCA rail) or
            ``fat-tree:<ratio>`` (2-level fat tree with the given
            uplink oversubscription). Non-flat specs route collectives
            through :mod:`repro.network`.
    """

    num_gpus: int
    gpus_per_node: int = 8
    gpu: GPUSpec = field(default=A100_80GB)
    internode_bandwidth: float = 800 * GBPS
    internode_latency: float = 5e-6
    bandwidth_effectiveness: float = 1.0
    intranode_latency: float = 3e-6
    nics_per_node: int = 4
    network: str = "flat"

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ConfigError("num_gpus must be positive")
        if self.gpus_per_node <= 0:
            raise ConfigError("gpus_per_node must be positive")
        if self.num_gpus % self.gpus_per_node and self.num_gpus > self.gpus_per_node:
            raise ConfigError(
                f"num_gpus ({self.num_gpus}) must be a multiple of "
                f"gpus_per_node ({self.gpus_per_node})")
        if not 0.0 < self.bandwidth_effectiveness <= 1.0:
            raise ConfigError("bandwidth_effectiveness must be in (0, 1]")
        if self.internode_bandwidth <= 0:
            raise ConfigError("internode_bandwidth must be positive")
        if self.nics_per_node <= 0:
            raise ConfigError("nics_per_node must be positive")
        # Reject bad specs eagerly and store the canonical spelling
        # ("fat-tree:1" -> "fat-tree") so equal fabrics compare equal and
        # serialization round-trips.
        object.__setattr__(self, "network",
                           NetworkSpec.parse(self.network).canonical())

    @property
    def num_nodes(self) -> int:
        """Number of server nodes (at least one)."""
        return max(1, self.num_gpus // self.gpus_per_node)

    @property
    def effective_internode_bandwidth(self) -> float:
        """``alpha * Bmax`` — the Equation-1 effective bandwidth."""
        return self.bandwidth_effectiveness * self.internode_bandwidth

    @property
    def nic_bandwidth(self) -> float:
        """Effective bandwidth of one HCA (alpha applied, per rail)."""
        return self.effective_internode_bandwidth / self.nics_per_node

    @property
    def network_spec(self) -> NetworkSpec:
        """Parsed form of the ``network`` field."""
        return NetworkSpec.parse(self.network)

    def peak_system_flops(self) -> float:
        """Aggregate peak FP16 throughput across all GPUs (FLOP/s)."""
        return self.num_gpus * self.gpu.peak_fp16_flops

    def with_gpus(self, num_gpus: int) -> "SystemConfig":
        """Copy of this system resized to ``num_gpus`` GPUs."""
        return replace(self, num_gpus=num_gpus)

    def describe(self) -> str:
        """One-line summary used in logs and benchmark tables."""
        return (f"{self.num_gpus}x {self.gpu.name} "
                f"({self.num_nodes} nodes x {self.gpus_per_node} GPUs, "
                f"{self.internode_bandwidth / GBPS:.0f} Gbps inter-node)")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; the GPU is stored by its registry name.

        ``nics_per_node`` and ``network`` are emitted only when they
        differ from their defaults: the dict feeds the prediction-cache
        fingerprint (:func:`repro.dse.cache.fingerprint`), and a default
        ``flat``/4-HCA system must keep producing the exact payload it
        produced before these fields existed, so caches written by
        earlier versions stay valid.
        """
        payload = {
            "num_gpus": self.num_gpus,
            "gpus_per_node": self.gpus_per_node,
            "gpu": self.gpu.name,
            "internode_bandwidth": self.internode_bandwidth,
            "internode_latency": self.internode_latency,
            "bandwidth_effectiveness": self.bandwidth_effectiveness,
            "intranode_latency": self.intranode_latency,
        }
        if self.nics_per_node != 4:
            payload["nics_per_node"] = self.nics_per_node
        if self.network != "flat":
            payload["network"] = self.network  # canonical since __post_init__
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SystemConfig":
        """Inverse of :meth:`to_dict`; raises ConfigError on bad input."""
        raw = dict(payload)
        gpu_name = raw.pop("gpu", A100_80GB.name)
        try:
            return cls(gpu=gpu_by_name(gpu_name), **raw)
        except TypeError as exc:
            raise ConfigError(f"invalid system config: {exc}") from exc


def single_node(gpus_per_node: int = 8, gpu: GPUSpec = A100_80GB) -> SystemConfig:
    """A single server node — the paper's p4d validation setup (Fig. 9a)."""
    return SystemConfig(num_gpus=gpus_per_node, gpus_per_node=gpus_per_node,
                        gpu=gpu)


def multi_node(num_nodes: int, gpus_per_node: int = 8,
               gpu: GPUSpec = A100_80GB,
               network: str = "flat") -> SystemConfig:
    """A cluster of ``num_nodes`` nodes (Fig. 9b uses 64).

    ``network`` selects the inter-node fabric model (``flat``, ``rail``
    or ``fat-tree:<ratio>``); ``flat`` reproduces the paper's Equation-1
    aggregate-pipe behavior exactly.
    """
    if num_nodes <= 0:
        raise ConfigError("num_nodes must be positive")
    return SystemConfig(num_gpus=num_nodes * gpus_per_node,
                        gpus_per_node=gpus_per_node, gpu=gpu,
                        network=network)
