"""3D-parallelism and training-loop configuration.

A ``(t, d, p)``-way 3D parallelism (paper Figure 3) combines t-way tensor
parallelism, d-way data parallelism, and p-way pipeline parallelism, plus a
micro-batch size ``m`` that controls pipelining (Figure 7) and a pipeline
schedule (GPipe or 1F1B). Data-parallel gradient synchronisation may use
gradient bucketing (Figure 5) to overlap All-Reduce with backward compute.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.config.model import ModelConfig
from repro.errors import ConfigError, InfeasibleConfigError


class PipelineSchedule(enum.Enum):
    """Pipeline scheduling policy (paper Figure 7)."""

    GPIPE = "gpipe"
    ONE_F_ONE_B = "1f1b"


class RecomputeMode(enum.Enum):
    """Activation recomputation policy (Megatron-style).

    ``NONE`` stores all activations; ``SELECTIVE`` recomputes the attention
    score/softmax portion only; ``FULL`` stores only layer inputs and
    replays the entire forward pass during backward.
    """

    NONE = "none"
    SELECTIVE = "selective"
    FULL = "full"


@dataclass(frozen=True)
class ParallelismConfig:
    """A single point in the (t, d, p, m) design space.

    Attributes:
        tensor: Tensor-parallel degree ``t`` (intra-node in practice).
        data: Data-parallel degree ``d``.
        pipeline: Pipeline-parallel degree ``p``.
        micro_batch_size: Sequences per micro-batch ``m``.
        schedule: GPipe or 1F1B (paper Figure 7).
        virtual_stages: Virtual-pipeline (model-chunk) count ``v`` per
            device for Megatron's interleaved 1F1B schedule. The default
            ``1`` is the plain schedule; ``v > 1`` splits each stage's
            layers into ``v`` chunks scheduled round-robin, shrinking
            the pipeline bubble to ``(p-1)/(v*NMB + p-1)`` at the cost
            of ``v`` activation windows and extra inter-chunk P2P
            traffic. Requires ``p > 1`` and the 1F1B schedule; the
            layer count must divide by ``p*v`` and the micro-batch
            count by ``p`` (checked in :func:`validate_plan`).
        gradient_bucketing: Whether DP All-Reduce uses gradient buckets
            that overlap the backward pass (paper Figure 5).
        num_gradient_buckets: Number of buckets when bucketing is enabled.
        recompute: Activation recomputation mode.
        sequence_parallel: Megatron-style sequence parallelism
            (Korthikanti et al.): shard the LayerNorm/dropout regions
            along the sequence dimension across the tensor group, so
            *all* per-layer activations divide by ``t``. Communication
            volume is unchanged (each tensor-parallel All-Reduce splits
            into an equal-volume Reduce-Scatter + All-Gather pair), so
            the timing model keeps the All-Reduce cost; the win is
            memory (see :mod:`repro.memory.footprint`). Requires t > 1.
    """

    tensor: int
    data: int
    pipeline: int
    micro_batch_size: int = 1
    schedule: PipelineSchedule = PipelineSchedule.ONE_F_ONE_B
    virtual_stages: int = 1
    gradient_bucketing: bool = True
    num_gradient_buckets: int = 4
    recompute: RecomputeMode = RecomputeMode.SELECTIVE
    sequence_parallel: bool = False

    def __post_init__(self) -> None:
        for field in ("tensor", "data", "pipeline", "micro_batch_size",
                      "virtual_stages"):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"{field} must be a positive int, got {value!r}")
        if self.num_gradient_buckets <= 0:
            raise ConfigError("num_gradient_buckets must be positive")
        if self.sequence_parallel and self.tensor == 1:
            raise ConfigError(
                "sequence_parallel requires tensor parallelism (t > 1)")
        if self.virtual_stages > 1:
            if self.pipeline == 1:
                raise ConfigError(
                    "virtual_stages > 1 requires pipeline parallelism (p > 1)")
            if self.schedule is not PipelineSchedule.ONE_F_ONE_B:
                raise ConfigError(
                    "virtual_stages > 1 requires the 1f1b schedule "
                    "(GPipe has no interleaved variant)")

    @property
    def total_gpus(self) -> int:
        """GPUs consumed by this plan: ``t * d * p``."""
        return self.tensor * self.data * self.pipeline

    @property
    def way(self) -> tuple[int, int, int]:
        """The ``(t, d, p)`` triple, matching the paper's notation."""
        return (self.tensor, self.data, self.pipeline)

    def describe(self) -> str:
        """Paper-style label, e.g. ``"(8, 12, 21)-way, m=1, 1f1b"``
        (interleaved plans append ``, v=<chunks>``)."""
        t, d, p = self.way
        label = (f"({t}, {d}, {p})-way, m={self.micro_batch_size}, "
                 f"{self.schedule.value}")
        if self.virtual_stages > 1:
            label += f", v={self.virtual_stages}"
        return label

    def replaced(self, **changes) -> "ParallelismConfig":
        """Copy with selected fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation.

        ``virtual_stages`` is serialised only when non-default, so
        payloads (and the prediction-cache fingerprints hashed from
        them) are unchanged for every pre-interleaving plan.
        """
        payload = asdict(self)
        payload["schedule"] = self.schedule.value
        payload["recompute"] = self.recompute.value
        if self.virtual_stages == 1:
            del payload["virtual_stages"]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ParallelismConfig":
        """Inverse of :meth:`to_dict`; raises ConfigError on bad input."""
        raw = dict(payload)
        try:
            raw["schedule"] = PipelineSchedule(
                raw.get("schedule", PipelineSchedule.ONE_F_ONE_B.value))
            raw["recompute"] = RecomputeMode(
                raw.get("recompute", RecomputeMode.SELECTIVE.value))
            return cls(**raw)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"invalid parallelism config: {exc}") from exc


@dataclass(frozen=True)
class TrainingConfig:
    """Training-loop hyperparameters that determine end-to-end time.

    Attributes:
        global_batch_size: Sequences consumed per iteration across the
            whole system (MT-NLG: 1,920 sequences of 2,048 tokens).
        total_tokens: Total training tokens (MT-NLG: 270B).
    """

    global_batch_size: int
    total_tokens: int = 0

    def __post_init__(self) -> None:
        if self.global_batch_size <= 0:
            raise ConfigError("global_batch_size must be positive")
        if self.total_tokens < 0:
            raise ConfigError("total_tokens must be non-negative")

    def tokens_per_iteration(self, model: ModelConfig) -> int:
        """Tokens consumed by one iteration (``B * s``)."""
        return self.global_batch_size * model.seq_length

    def num_iterations(self, model: ModelConfig) -> int:
        """Iterations needed to consume ``total_tokens`` (ceiling)."""
        per_iter = self.tokens_per_iteration(model)
        return -(-self.total_tokens // per_iter) if self.total_tokens else 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrainingConfig":
        """Inverse of :meth:`to_dict`; raises ConfigError on bad input."""
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigError(f"invalid training config: {exc}") from exc


def validate_plan(model: ModelConfig, plan: ParallelismConfig,
                  training: TrainingConfig, num_gpus: int) -> None:
    """Check the structural constraints of a 3D-parallel plan.

    The constraints mirror Megatron-DeepSpeed's launch-time checks:

    * ``t * d * p`` must equal the available GPU count.
    * Pipeline stages receive an equal number of layers (``p | L``).
    * Attention heads split evenly across tensor ranks (``t | n``).
    * The per-replica batch splits evenly into micro-batches
      (``d * m | B``).
    * Interleaved plans (``v > 1``) additionally need equal-size model
      chunks (``p*v | L``) and a micro-batch count that is a multiple
      of the pipeline depth (``p | NMB``), mirroring Megatron-LM's
      interleaving asserts.

    Raises:
        InfeasibleConfigError: If any constraint is violated. The message
            names the violated constraint so DSE logs stay readable.
    """
    if plan.total_gpus != num_gpus:
        raise InfeasibleConfigError(
            f"plan {plan.way} needs {plan.total_gpus} GPUs, system has {num_gpus}")
    if model.num_layers % plan.pipeline != 0:
        raise InfeasibleConfigError(
            f"pipeline degree {plan.pipeline} does not divide "
            f"L={model.num_layers}")
    if plan.virtual_stages > 1 and (
            (model.num_layers // plan.pipeline) % plan.virtual_stages != 0):
        raise InfeasibleConfigError(
            f"virtual stages {plan.virtual_stages} do not divide the "
            f"{model.num_layers // plan.pipeline} layers per stage")
    if model.num_heads % plan.tensor != 0:
        raise InfeasibleConfigError(
            f"tensor degree {plan.tensor} does not divide n={model.num_heads}")
    if model.ffn_hidden_size % plan.tensor != 0:
        raise InfeasibleConfigError(
            f"tensor degree {plan.tensor} does not divide 4h")
    per_replica = training.global_batch_size // plan.data
    if training.global_batch_size % plan.data != 0:
        raise InfeasibleConfigError(
            f"data degree {plan.data} does not divide global batch "
            f"{training.global_batch_size}")
    if per_replica % plan.micro_batch_size != 0:
        raise InfeasibleConfigError(
            f"micro-batch {plan.micro_batch_size} does not divide "
            f"per-replica batch {per_replica}")
    if plan.virtual_stages > 1 and (
            (per_replica // plan.micro_batch_size) % plan.pipeline != 0):
        raise InfeasibleConfigError(
            f"interleaved schedule needs the micro-batch count "
            f"({per_replica // plan.micro_batch_size}) to be a multiple "
            f"of the pipeline depth ({plan.pipeline})")


def num_micro_batches(plan: ParallelismConfig,
                      training: TrainingConfig) -> int:
    """Micro-batches per pipeline per iteration: ``B / (d * m)``."""
    per_replica = training.global_batch_size // plan.data
    return per_replica // plan.micro_batch_size


def layers_per_stage(model: ModelConfig, plan: ParallelismConfig) -> int:
    """Decoder layers assigned to each pipeline stage: ``L / p``."""
    return model.num_layers // plan.pipeline
