"""The vTrain input description file (paper Figure 4, step 1).

An :class:`InputDescription` bundles everything the simulator needs for one
evaluation: the target LLM, the training-system configuration, the
parallelization strategy, and the training loop. It round-trips through
plain dictionaries / JSON so descriptions can live in files, exactly like
the paper's "input description file".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, TrainingConfig,
                                      validate_plan)
from repro.config.system import SystemConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class InputDescription:
    """A complete simulation input: model + system + plan + training loop."""

    model: ModelConfig
    system: SystemConfig
    plan: ParallelismConfig
    training: TrainingConfig

    def validate(self) -> "InputDescription":
        """Run structural checks; returns self so calls can chain.

        Raises:
            InfeasibleConfigError: If the plan cannot run on the system.
        """
        validate_plan(self.model, self.plan, self.training,
                      self.system.num_gpus)
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation."""
        return {
            "model": self.model.to_dict(),
            "system": self.system.to_dict(),
            "parallelism": self.plan.to_dict(),
            "training": self.training.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InputDescription":
        """Parse a description dict; raises ConfigError on bad input."""
        try:
            model = ModelConfig.from_dict(payload["model"])
            system = SystemConfig.from_dict(payload["system"])
            plan = ParallelismConfig.from_dict(payload["parallelism"])
            training = TrainingConfig.from_dict(payload["training"])
        except KeyError as exc:
            raise ConfigError(f"input description missing section {exc}") from exc
        return cls(model=model, system=system, plan=plan, training=training)

    def to_json(self, indent: int = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "InputDescription":
        """Parse a JSON description string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"input description is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> None:
        """Write the description to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "InputDescription":
        """Read a description from a JSON file."""
        return cls.from_json(Path(path).read_text())
