"""The vTrain input description file (paper Figure 4, step 1).

An :class:`InputDescription` bundles everything the simulator needs for one
evaluation: the target LLM, the training-system configuration, the
parallelization strategy, and the training loop. It round-trips through
plain dictionaries / JSON so descriptions can live in files, exactly like
the paper's "input description file".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig,
                                      validate_plan)
from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.hardware.gpu import A100_80GB, gpu_by_name


@dataclass(frozen=True)
class InputDescription:
    """A complete simulation input: model + system + plan + training loop."""

    model: ModelConfig
    system: SystemConfig
    plan: ParallelismConfig
    training: TrainingConfig

    def validate(self) -> "InputDescription":
        """Run structural checks; returns self so calls can chain.

        Raises:
            InfeasibleConfigError: If the plan cannot run on the system.
        """
        validate_plan(self.model, self.plan, self.training,
                      self.system.num_gpus)
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation."""
        payload = {
            "model": asdict(self.model),
            "system": {
                "num_gpus": self.system.num_gpus,
                "gpus_per_node": self.system.gpus_per_node,
                "gpu": self.system.gpu.name,
                "internode_bandwidth": self.system.internode_bandwidth,
                "internode_latency": self.system.internode_latency,
                "bandwidth_effectiveness": self.system.bandwidth_effectiveness,
                "intranode_latency": self.system.intranode_latency,
            },
            "parallelism": {
                "tensor": self.plan.tensor,
                "data": self.plan.data,
                "pipeline": self.plan.pipeline,
                "micro_batch_size": self.plan.micro_batch_size,
                "schedule": self.plan.schedule.value,
                "gradient_bucketing": self.plan.gradient_bucketing,
                "num_gradient_buckets": self.plan.num_gradient_buckets,
                "recompute": self.plan.recompute.value,
                "sequence_parallel": self.plan.sequence_parallel,
            },
            "training": asdict(self.training),
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InputDescription":
        """Parse a description dict; raises ConfigError on bad input."""
        try:
            model = ModelConfig(**payload["model"])
            sys_raw = dict(payload["system"])
            gpu_name = sys_raw.pop("gpu", A100_80GB.name)
            system = SystemConfig(gpu=gpu_by_name(gpu_name), **sys_raw)
            par_raw = dict(payload["parallelism"])
            par_raw["schedule"] = PipelineSchedule(
                par_raw.get("schedule", PipelineSchedule.ONE_F_ONE_B.value))
            par_raw["recompute"] = RecomputeMode(
                par_raw.get("recompute", RecomputeMode.SELECTIVE.value))
            plan = ParallelismConfig(**par_raw)
            training = TrainingConfig(**payload["training"])
        except KeyError as exc:
            raise ConfigError(f"input description missing section {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"invalid input description: {exc}") from exc
        return cls(model=model, system=system, plan=plan, training=training)

    def to_json(self, indent: int = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "InputDescription":
        """Parse a JSON description string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"input description is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> None:
        """Write the description to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "InputDescription":
        """Read a description from a JSON file."""
        return cls.from_json(Path(path).read_text())
