"""Operator taxonomy for the operator-granularity execution graph.

A layer-node in the paper's operator-granularity graph (Section III-B) is
either a *computation operator* — forward/backward pass of an MHA or FFN
block, embedding, LM head, weight update — or a *communication operator* —
All-Reduce or Send-Receive — inserted according to the parallelization
strategy (Figures 5, 6, 8).

Computation operators carry exactly the shape fields that determine their
CUDA-kernel decomposition; two operators with equal :attr:`signature`
decompose into identical kernel sequences. That equivalence is what makes
the paper's "necessary operator" optimisation sound: profiling one
representative per signature is enough (Section III-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config.parallelism import RecomputeMode
from repro.errors import ConfigError
from repro.hardware.interconnect import LinkType


class OpKind(enum.Enum):
    """Computation-operator kinds (forward order, then backward order)."""

    FWD_EMBEDDING = "fwd_embedding"
    FWD_MHA = "fwd_mha"
    FWD_FFN = "fwd_ffn"
    FWD_LM_HEAD = "fwd_lm_head"
    BWD_LM_HEAD = "bwd_lm_head"
    BWD_FFN = "bwd_ffn"
    BWD_MHA = "bwd_mha"
    BWD_EMBEDDING = "bwd_embedding"
    WEIGHT_UPDATE = "weight_update"


FORWARD_KINDS = frozenset({OpKind.FWD_EMBEDDING, OpKind.FWD_MHA,
                           OpKind.FWD_FFN, OpKind.FWD_LM_HEAD})
BACKWARD_KINDS = frozenset({OpKind.BWD_EMBEDDING, OpKind.BWD_MHA,
                            OpKind.BWD_FFN, OpKind.BWD_LM_HEAD})


@dataclass(frozen=True)
class CompOperator:
    """A computation layer-node with its kernel-determining shape.

    Attributes:
        kind: Which block this operator is.
        micro_batch: Sequences in the micro-batch (``b``).
        seq_length: Tokens per sequence (``s``).
        hidden_size: Model hidden dimension (``h``).
        num_heads: Attention heads (``n``); heads are split across tensor
            ranks.
        tensor_parallel: Tensor-parallel degree (``t``) — every weight
            matrix in the operator is sharded ``1/t``.
        vocab_size: Padded vocabulary (embedding / LM head only).
        recompute: Activation recomputation mode — changes the backward
            kernel sequence (re-executed forward kernels).
        num_params: Parameters updated (WEIGHT_UPDATE only).
        kv_length: KV-cache entries attention reads (decode-phase MHA
            only). Zero — the default, and the value for every training
            operator — means attention attends over the operator's own
            ``seq_length``; a positive value scales the attention
            score/context kernels to ``seq_length x kv_length``, the
            single-token-query-over-cached-keys shape of inference
            decode.
    """

    kind: OpKind
    micro_batch: int = 1
    seq_length: int = 1
    hidden_size: int = 1
    num_heads: int = 1
    tensor_parallel: int = 1
    vocab_size: int = 0
    recompute: RecomputeMode = RecomputeMode.NONE
    num_params: int = 0
    kv_length: int = 0

    def __post_init__(self) -> None:
        if self.kind is OpKind.WEIGHT_UPDATE:
            if self.num_params <= 0:
                raise ConfigError("WEIGHT_UPDATE requires num_params > 0")
            return
        for field in ("micro_batch", "seq_length", "hidden_size",
                      "num_heads", "tensor_parallel"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{field} must be positive for {self.kind}")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.tensor_parallel != 0:
            raise ConfigError("num_heads must be divisible by tensor_parallel")
        if self.kind in (OpKind.FWD_EMBEDDING, OpKind.BWD_EMBEDDING,
                         OpKind.FWD_LM_HEAD, OpKind.BWD_LM_HEAD):
            if self.vocab_size <= 0:
                raise ConfigError(f"{self.kind} requires vocab_size > 0")
        if self.kv_length < 0:
            raise ConfigError("kv_length must be non-negative")

    @property
    def signature(self) -> tuple:
        """Hashable profiling key — equal signature means equal kernels."""
        base = (self.kind.value, self.micro_batch, self.seq_length,
                self.hidden_size, self.num_heads, self.tensor_parallel,
                self.vocab_size, self.recompute.value, self.num_params)
        if self.kv_length:
            # Appended only when set, so every pre-workload (training)
            # signature — and therefore every profiling-table key —
            # stays byte-identical.
            return base + (self.kv_length,)
        return base

    @property
    def tokens(self) -> int:
        """Tokens processed by this operator (``b * s``)."""
        return self.micro_batch * self.seq_length

    @property
    def is_forward(self) -> bool:
        """True for forward-pass operators."""
        return self.kind in FORWARD_KINDS

    @property
    def is_backward(self) -> bool:
        """True for backward-pass operators."""
        return self.kind in BACKWARD_KINDS


class CommKind(enum.Enum):
    """Communication-operator kinds inserted by 3D parallelism."""

    ALL_REDUCE = "all_reduce"
    SEND_RECV = "send_recv"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"


class CommScope(enum.Enum):
    """Which parallelism dimension a communication operator serves."""

    TENSOR = "tensor"      # intra-node All-Reduce after MHA/FFN (Fig. 6)
    DATA = "data"          # gradient All-Reduce per bucket (Fig. 5)
    PIPELINE = "pipeline"  # Send-Receive at stage boundaries (Fig. 6)
    EMBEDDING = "embedding"  # tied embedding/LM-head gradient sync


@dataclass(frozen=True)
class CommOperator:
    """A communication layer-node.

    Attributes:
        kind: Collective / point-to-point type.
        scope: Parallelism dimension that inserted it.
        size_bytes: Payload size.
        group_size: Participating workers (``n`` in Equation 1).
        link: Intra-node (NVLink, profile table) or inter-node
            (Equation-1 model).
        concurrent_groups: How many sibling collectives share this
            group's node uplinks (the Figure-3 "four data parallel
            groups share the same ToR switch" count). The basic
            Equation-1 model ignores it; the contention-aware extension
            (:class:`repro.profiling.advanced.ContentionAwareNcclModel`)
            derates bandwidth with it.
    """

    kind: CommKind
    scope: CommScope
    size_bytes: float
    group_size: int
    link: LinkType
    concurrent_groups: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigError("size_bytes must be non-negative")
        if self.group_size < 1:
            raise ConfigError("group_size must be >= 1")
        if self.concurrent_groups < 1:
            raise ConfigError("concurrent_groups must be >= 1")
        if self.kind is CommKind.SEND_RECV and self.group_size != 2:
            raise ConfigError("SEND_RECV involves exactly 2 workers")

    @property
    def signature(self) -> tuple:
        """Hashable key for communication-latency caching."""
        return (self.kind.value, self.scope.value, float(self.size_bytes),
                self.group_size, self.link.value, self.concurrent_groups)


def tensor_allreduce(micro_batch: int, seq_length: int, hidden_size: int,
                     tensor_parallel: int, link: LinkType) -> CommOperator:
    """The All-Reduce following an MHA or FFN block under TP (Figure 6).

    Payload is the block's FP16 output activation, ``b * s * h`` elements.
    """
    size = 2.0 * micro_batch * seq_length * hidden_size
    return CommOperator(kind=CommKind.ALL_REDUCE, scope=CommScope.TENSOR,
                        size_bytes=size, group_size=tensor_parallel,
                        link=link)


def data_allreduce(grad_bytes: float, data_parallel: int, link: LinkType,
                   concurrent_groups: int = 1) -> CommOperator:
    """A gradient-bucket All-Reduce for data parallelism (Figure 5)."""
    return CommOperator(kind=CommKind.ALL_REDUCE, scope=CommScope.DATA,
                        size_bytes=grad_bytes, group_size=data_parallel,
                        link=link, concurrent_groups=concurrent_groups)


def pipeline_send_recv(micro_batch: int, seq_length: int, hidden_size: int,
                       link: LinkType) -> CommOperator:
    """The Send-Receive between adjacent pipeline stages (Figure 6)."""
    size = 2.0 * micro_batch * seq_length * hidden_size
    return CommOperator(kind=CommKind.SEND_RECV, scope=CommScope.PIPELINE,
                        size_bytes=size, group_size=2, link=link)
