"""Pipeline-parallel schedules: GPipe and 1F1B (paper Figure 7).

A schedule is, per pipeline stage, the *issue order* of forward and
backward micro-batch chunks on that stage's compute stream. Cross-stage
data dependencies (a stage cannot run micro-batch i before receiving it)
are separate graph edges added by the builder; together the two reproduce
the paper's two dependency families: "the execution order within each GPU"
and "the operators associated with the same micro-batch ... across GPUs".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.parallelism import PipelineSchedule
from repro.errors import ConfigError

FORWARD = "F"
BACKWARD = "B"


@dataclass(frozen=True)
class ScheduledChunk:
    """One entry in a stage's issue order."""

    phase: str  # FORWARD or BACKWARD
    micro_batch: int


def gpipe_order(num_micro_batches: int) -> list[ScheduledChunk]:
    """GPipe: all forwards in order, then all backwards in reverse.

    Backwards run most-recent-first because the last micro-batch's
    activations are freshest (Figure 7a).
    """
    _check(num_micro_batches)
    forwards = [ScheduledChunk(FORWARD, i) for i in range(num_micro_batches)]
    backwards = [ScheduledChunk(BACKWARD, i)
                 for i in reversed(range(num_micro_batches))]
    return forwards + backwards


def one_f_one_b_order(stage: int, num_stages: int,
                      num_micro_batches: int) -> list[ScheduledChunk]:
    """1F1B (PipeDream-Flush): warm up, alternate, cool down (Figure 7b).

    Stage ``i`` admits ``min(NMB, p - 1 - i)`` warm-up forwards, then
    alternates one forward with one backward, then drains the remaining
    backwards. The last stage has zero warm-up and strictly alternates.
    """
    _check(num_micro_batches)
    if not 0 <= stage < num_stages:
        raise ConfigError(f"stage {stage} outside pipeline of {num_stages}")
    warmup = min(num_micro_batches, num_stages - 1 - stage)
    order: list[ScheduledChunk] = []
    for i in range(warmup):
        order.append(ScheduledChunk(FORWARD, i))
    steady = num_micro_batches - warmup
    for i in range(steady):
        order.append(ScheduledChunk(FORWARD, warmup + i))
        order.append(ScheduledChunk(BACKWARD, i))
    for i in range(steady, num_micro_batches):
        order.append(ScheduledChunk(BACKWARD, i))
    return order


def schedule_order(schedule: PipelineSchedule, stage: int, num_stages: int,
                   num_micro_batches: int) -> list[ScheduledChunk]:
    """Issue order for one stage under the chosen scheduling policy."""
    if schedule is PipelineSchedule.GPIPE:
        return gpipe_order(num_micro_batches)
    if schedule is PipelineSchedule.ONE_F_ONE_B:
        return one_f_one_b_order(stage, num_stages, num_micro_batches)
    raise ConfigError(f"unknown schedule {schedule}")


def last_backward_micro_batch(schedule: PipelineSchedule,
                              num_micro_batches: int) -> int:
    """Micro-batch whose backward chunk is issued last on every stage.

    Gradient-bucket All-Reduces attach to this chunk: gradients are only
    complete once every micro-batch's backward has accumulated into them
    (Figure 5), and the per-stream chain makes the last-issued backward
    the synchronisation point.
    """
    _check(num_micro_batches)
    if schedule is PipelineSchedule.GPIPE:
        return 0  # backwards run in reverse order; micro-batch 0 is last
    return num_micro_batches - 1


def max_in_flight_micro_batches(schedule: PipelineSchedule, stage: int,
                                num_stages: int,
                                num_micro_batches: int) -> int:
    """Peak simultaneously-live micro-batches on a stage (memory model).

    GPipe holds every micro-batch's activations; 1F1B caps in-flight work
    at the pipeline depth remaining below the stage — the memory saving
    that motivated PipeDream (Section II-B).
    """
    _check(num_micro_batches)
    if schedule is PipelineSchedule.GPIPE:
        return num_micro_batches
    return min(num_micro_batches, num_stages - stage)


def pipeline_bubble_fraction(num_stages: int,
                             num_micro_batches: int) -> float:
    """Ideal bubble fraction ``(p-1) / (NMB + p - 1)`` for diagnostics."""
    _check(num_micro_batches)
    if num_stages <= 0:
        raise ConfigError("num_stages must be positive")
    return (num_stages - 1) / (num_micro_batches + num_stages - 1)


def _check(num_micro_batches: int) -> None:
    if num_micro_batches <= 0:
        raise ConfigError("num_micro_batches must be positive")
