"""Pipeline-parallel schedules: GPipe, 1F1B, and interleaved 1F1B.

A schedule is, per pipeline stage, the *issue order* of forward and
backward micro-batch chunks on that stage's compute stream. Cross-stage
data dependencies (a stage cannot run micro-batch i before receiving it)
are separate graph edges added by the builder; together the two reproduce
the paper's two dependency families: "the execution order within each GPU"
and "the operators associated with the same micro-batch ... across GPUs".

GPipe and 1F1B are the paper's Figure 7. The interleaved schedule is
Megatron-LM's virtual-pipeline variant of 1F1B (Narayanan et al., SC'21):
each device hosts ``v`` *model chunks* of ``L / (p * v)`` layers instead
of one contiguous block, and cycles through them in a round-robin of
``p`` micro-batches per chunk. The bubble shrinks by ``v`` —
``(p-1) / (v*NMB + p-1)`` — at the cost of ``v`` activation windows per
device and extra inter-chunk P2P traffic (the last stage feeds chunk
``c+1`` of the first stage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.parallelism import PipelineSchedule
from repro.errors import ConfigError

FORWARD = "F"
BACKWARD = "B"


@dataclass(frozen=True)
class ScheduledChunk:
    """One entry in a stage's issue order.

    ``chunk`` is the model-chunk (virtual-stage) index the entry runs on;
    it is always 0 for GPipe and plain 1F1B.
    """

    phase: str  # FORWARD or BACKWARD
    micro_batch: int
    chunk: int = 0


def gpipe_order(num_micro_batches: int) -> list[ScheduledChunk]:
    """GPipe: all forwards in order, then all backwards in reverse.

    Backwards run most-recent-first because the last micro-batch's
    activations are freshest (Figure 7a).
    """
    _check(num_micro_batches)
    forwards = [ScheduledChunk(FORWARD, i) for i in range(num_micro_batches)]
    backwards = [ScheduledChunk(BACKWARD, i)
                 for i in reversed(range(num_micro_batches))]
    return forwards + backwards


def one_f_one_b_order(stage: int, num_stages: int,
                      num_micro_batches: int) -> list[ScheduledChunk]:
    """1F1B (PipeDream-Flush): warm up, alternate, cool down (Figure 7b).

    Stage ``i`` admits ``min(NMB, p - 1 - i)`` warm-up forwards, then
    alternates one forward with one backward, then drains the remaining
    backwards. The last stage has zero warm-up and strictly alternates.
    """
    _check(num_micro_batches)
    if not 0 <= stage < num_stages:
        raise ConfigError(f"stage {stage} outside pipeline of {num_stages}")
    warmup = min(num_micro_batches, num_stages - 1 - stage)
    order: list[ScheduledChunk] = []
    for i in range(warmup):
        order.append(ScheduledChunk(FORWARD, i))
    steady = num_micro_batches - warmup
    for i in range(steady):
        order.append(ScheduledChunk(FORWARD, warmup + i))
        order.append(ScheduledChunk(BACKWARD, i))
    for i in range(steady, num_micro_batches):
        order.append(ScheduledChunk(BACKWARD, i))
    return order


def interleaved_order(stage: int, num_stages: int, num_micro_batches: int,
                      virtual_stages: int) -> list[ScheduledChunk]:
    """Megatron-LM interleaved 1F1B: ``v`` model chunks per stage.

    Reproduces ``forward_backward_pipelining_with_interleaving``: the
    unit of scheduling is one (chunk, micro-batch) pair, micro-batches
    advance in groups of ``p`` per chunk, warm-up admits
    ``2*(p - stage - 1) + (v - 1) * p`` units (all of them when
    ``NMB == p``, Megatron's all-warmup special case), then the stage
    alternates one forward unit with one backward unit and drains.
    Forward units walk chunks in ascending order; backward units walk
    them descending, so the final backward on every stage is chunk 0 of
    the last micro-batch.
    """
    _check(num_micro_batches)
    if not 0 <= stage < num_stages:
        raise ConfigError(f"stage {stage} outside pipeline of {num_stages}")
    if virtual_stages < 1:
        raise ConfigError("virtual_stages must be positive")
    if num_micro_batches % num_stages:
        raise ConfigError(
            f"interleaved schedule needs the micro-batch count "
            f"({num_micro_batches}) to be a multiple of the pipeline depth "
            f"({num_stages})")
    p, v = num_stages, virtual_stages
    total = num_micro_batches * v

    def forward_unit(k: int) -> ScheduledChunk:
        group, j = divmod(k, p * v)
        return ScheduledChunk(FORWARD, group * p + j % p, chunk=j // p)

    def backward_unit(k: int) -> ScheduledChunk:
        group, j = divmod(k, p * v)
        return ScheduledChunk(BACKWARD, group * p + j % p,
                              chunk=v - 1 - j // p)

    if num_micro_batches == p:
        warmup = total
    else:
        warmup = min(2 * (p - stage - 1) + (v - 1) * p, total)
    order = [forward_unit(k) for k in range(warmup)]
    for k in range(total - warmup):
        order.append(forward_unit(warmup + k))
        order.append(backward_unit(k))
    for k in range(total - warmup, total):
        order.append(backward_unit(k))
    return order


def schedule_order(schedule: PipelineSchedule, stage: int, num_stages: int,
                   num_micro_batches: int, *,
                   virtual_stages: int = 1) -> list[ScheduledChunk]:
    """Issue order for one stage under the chosen scheduling policy."""
    if virtual_stages < 1:
        raise ConfigError("virtual_stages must be positive")
    if schedule is PipelineSchedule.GPIPE:
        if virtual_stages > 1:
            raise ConfigError("GPipe has no interleaved variant; "
                              "virtual_stages requires the 1F1B schedule")
        return gpipe_order(num_micro_batches)
    if schedule is PipelineSchedule.ONE_F_ONE_B:
        if virtual_stages > 1:
            return interleaved_order(stage, num_stages, num_micro_batches,
                                     virtual_stages)
        return one_f_one_b_order(stage, num_stages, num_micro_batches)
    raise ConfigError(f"unknown schedule {schedule}")


def last_backward_micro_batch(schedule: PipelineSchedule,
                              num_micro_batches: int) -> int:
    """Micro-batch whose backward chunk is issued last on every stage.

    Gradient-bucket All-Reduces attach to this chunk: gradients are only
    complete once every micro-batch's backward has accumulated into them
    (Figure 5), and the per-stream chain makes the last-issued backward
    the synchronisation point.
    """
    _check(num_micro_batches)
    if schedule is PipelineSchedule.GPIPE:
        return 0  # backwards run in reverse order; micro-batch 0 is last
    return num_micro_batches - 1


def warmup_forwards(schedule: PipelineSchedule, stage: int, num_stages: int,
                    num_micro_batches: int, *,
                    virtual_stages: int = 1) -> int:
    """Leading forward units in a stage's issue order (closed form).

    Counts the forwards issued before the first backward, in schedule
    units — whole micro-batches for GPipe/1F1B, (chunk, micro-batch)
    pairs for the interleaved schedule. This is also the stage's peak
    count of simultaneously-live activation windows, because every
    schedule here retires one window per backward once the steady state
    starts.
    """
    _check(num_micro_batches)
    if schedule is PipelineSchedule.GPIPE:
        return num_micro_batches
    if virtual_stages > 1:
        total = num_micro_batches * virtual_stages
        if num_micro_batches == num_stages:
            return total
        return min(2 * (num_stages - stage - 1)
                   + (virtual_stages - 1) * num_stages + 1, total)
    return min(num_micro_batches, num_stages - stage)


def max_in_flight_micro_batches(schedule: PipelineSchedule, stage: int,
                                num_stages: int, num_micro_batches: int, *,
                                virtual_stages: int = 1) -> int:
    """Peak simultaneously-live schedule units on a stage (memory model).

    GPipe holds every micro-batch's activations; 1F1B caps in-flight work
    at the pipeline depth remaining below the stage — the memory saving
    that motivated PipeDream (Section II-B). Under the interleaved
    schedule (``virtual_stages > 1``) a unit is one *model chunk* of
    ``layers_per_stage / v`` layers, and the warm-up admits
    ``2*(p - stage - 1) + (v - 1)*p + 1`` of them — more windows, each
    ``v`` times thinner (the memory model divides by ``v`` accordingly).
    """
    return warmup_forwards(schedule, stage, num_stages, num_micro_batches,
                           virtual_stages=virtual_stages)


def pipeline_bubble_fraction(num_stages: int, num_micro_batches: int,
                             virtual_stages: int = 1) -> float:
    """Ideal bubble fraction ``(p-1) / (v*NMB + p - 1)`` for diagnostics.

    ``virtual_stages = 1`` gives the classic GPipe/1F1B bubble; the
    interleaved schedule divides the warm-up/drain ramp by ``v``
    (Narayanan et al., SC'21, Section 2.2).
    """
    _check(num_micro_batches)
    if num_stages <= 0:
        raise ConfigError("num_stages must be positive")
    if virtual_stages < 1:
        raise ConfigError("virtual_stages must be positive")
    return ((num_stages - 1)
            / (virtual_stages * num_micro_batches + num_stages - 1))


def _check(num_micro_batches: int) -> None:
    if num_micro_batches <= 0:
        raise ConfigError("num_micro_batches must be positive")
