"""Execution graphs: operators, pipeline schedules, builders, structure."""

from repro.graph.builder import (Granularity, GraphBuilder,
                                 clear_structure_cache,
                                 structure_cache_stats)
from repro.graph.operators import (CommKind, CommOperator, CommScope,
                                   CompOperator, OpKind, data_allreduce,
                                   pipeline_send_recv, tensor_allreduce)
from repro.graph.pipeline import (ScheduledChunk, gpipe_order,
                                  interleaved_order,
                                  last_backward_micro_batch,
                                  max_in_flight_micro_batches,
                                  one_f_one_b_order,
                                  pipeline_bubble_fraction, schedule_order,
                                  warmup_forwards)
from repro.graph.structure import (COMM_STREAM, COMPUTE_STREAM,
                                   ExecutionGraph, FlatAssembler,
                                   GraphAssembler, GraphStructure, TaskNode)

__all__ = [
    "COMM_STREAM",
    "COMPUTE_STREAM",
    "CommKind",
    "CommOperator",
    "CommScope",
    "CompOperator",
    "ExecutionGraph",
    "FlatAssembler",
    "Granularity",
    "GraphAssembler",
    "GraphBuilder",
    "GraphStructure",
    "OpKind",
    "clear_structure_cache",
    "structure_cache_stats",
    "ScheduledChunk",
    "TaskNode",
    "data_allreduce",
    "gpipe_order",
    "interleaved_order",
    "last_backward_micro_batch",
    "max_in_flight_micro_batches",
    "one_f_one_b_order",
    "pipeline_bubble_fraction",
    "pipeline_send_recv",
    "schedule_order",
    "tensor_allreduce",
    "warmup_forwards",
]
