"""Execution graphs: operators, pipeline schedules, builders, structure."""

from repro.graph.builder import Granularity, GraphBuilder
from repro.graph.operators import (CommKind, CommOperator, CommScope,
                                   CompOperator, OpKind, data_allreduce,
                                   pipeline_send_recv, tensor_allreduce)
from repro.graph.pipeline import (ScheduledChunk, gpipe_order,
                                  last_backward_micro_batch,
                                  max_in_flight_micro_batches,
                                  one_f_one_b_order,
                                  pipeline_bubble_fraction, schedule_order)
from repro.graph.structure import (COMM_STREAM, COMPUTE_STREAM,
                                   ExecutionGraph, GraphAssembler, TaskNode)

__all__ = [
    "COMM_STREAM",
    "COMPUTE_STREAM",
    "CommKind",
    "CommOperator",
    "CommScope",
    "CompOperator",
    "ExecutionGraph",
    "Granularity",
    "GraphAssembler",
    "GraphBuilder",
    "OpKind",
    "ScheduledChunk",
    "TaskNode",
    "data_allreduce",
    "gpipe_order",
    "last_backward_micro_batch",
    "max_in_flight_micro_batches",
    "one_f_one_b_order",
    "pipeline_bubble_fraction",
    "pipeline_send_recv",
    "schedule_order",
    "tensor_allreduce",
]
