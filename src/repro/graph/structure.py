"""Execution-graph data structure shared by all granularities.

An :class:`ExecutionGraph` is a DAG of :class:`TaskNode` objects. Nodes
carry a device (a logical pipeline stage), a stream (``compute`` or
``comm`` — modelling CUDA streams so DP All-Reduce can overlap backward
compute, Figure 5a), a duration, and a kind tag used for time-breakdown
reporting. Edges encode both data dependencies and the paper's explicit
intra-GPU execution-order constraints (Section III-B).

The structure is deliberately lightweight (plain lists, integer node ids)
because Figure-10-scale design-space sweeps simulate hundreds of graphs;
:meth:`ExecutionGraph.to_networkx` exports to networkx for analysis and
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import networkx as nx

from repro.errors import SimulationError

COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"

#: Node kind tags (drive the per-category time breakdown).
KIND_COMPUTE = "compute"
KIND_TP_COMM = "tp_allreduce"
KIND_DP_COMM = "dp_allreduce"
KIND_PP_COMM = "pp_sendrecv"
KIND_WEIGHT_UPDATE = "weight_update"

ALL_KINDS = (KIND_COMPUTE, KIND_TP_COMM, KIND_DP_COMM, KIND_PP_COMM,
             KIND_WEIGHT_UPDATE)


@dataclass
class TaskNode:
    """One schedulable unit of work (a task in Algorithm 1).

    Attributes:
        task_id: Index of this node in the graph's node list.
        device: Logical device (pipeline-stage index) executing the task.
        stream: ``compute`` or ``comm`` stream on that device.
        duration: Execution latency in seconds.
        kind: Category tag (see module constants).
        label: Human-readable name for traces and debugging.
        children: Task ids that depend on this task.
        num_parents: In-degree (Algorithm 1's initial ``ref`` count).
        payload: Optional reference to the originating operator/kernel.
    """

    task_id: int
    device: int
    stream: str
    duration: float
    kind: str
    label: str
    children: list[int] = field(default_factory=list)
    num_parents: int = 0
    payload: Any = None


class GraphAssembler:
    """Incrementally builds an :class:`ExecutionGraph`.

    Tracks the tail of every (device, stream) chain so consecutive tasks
    on one stream serialise via explicit edges — the paper's "execution
    order within each GPU must be modeled" requirement.
    """

    def __init__(self) -> None:
        self.nodes: list[TaskNode] = []
        self._chain_tail: dict[tuple[int, str], int] = {}

    def add(self, device: int, stream: str, duration: float, kind: str,
            label: str, *, deps: Iterable[int] = (), chain: bool = True,
            payload: Any = None) -> int:
        """Append a task; returns its id.

        Args:
            deps: Explicit extra dependencies (cross-device or
                cross-stream edges).
            chain: Serialise after the previous task on this
                (device, stream) pair.
        """
        if duration < 0:
            raise SimulationError(f"negative duration for task {label!r}")
        task_id = len(self.nodes)
        node = TaskNode(task_id=task_id, device=device, stream=stream,
                        duration=duration, kind=kind, label=label,
                        payload=payload)
        self.nodes.append(node)
        parents: set[int] = set(deps)
        if chain:
            tail = self._chain_tail.get((device, stream))
            if tail is not None:
                parents.add(tail)
            self._chain_tail[(device, stream)] = task_id
        for parent in parents:
            self.link(parent, task_id)
        return task_id

    def link(self, parent: int, child: int) -> None:
        """Add a dependency edge parent -> child."""
        if parent == child:
            raise SimulationError("a task cannot depend on itself")
        self.nodes[parent].children.append(child)
        self.nodes[child].num_parents += 1

    def chain_tail(self, device: int, stream: str) -> int | None:
        """Latest task id on a stream, or None if the stream is empty."""
        return self._chain_tail.get((device, stream))

    def finish(self, num_devices: int,
               metadata: dict[str, Any] | None = None) -> "ExecutionGraph":
        """Freeze the assembled nodes into an ExecutionGraph."""
        return ExecutionGraph(nodes=self.nodes, num_devices=num_devices,
                              metadata=dict(metadata or {}))


@dataclass
class ExecutionGraph:
    """A frozen task DAG ready for Algorithm-1 replay."""

    nodes: list[TaskNode]
    num_devices: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Total dependency-edge count."""
        return sum(len(node.children) for node in self.nodes)

    def roots(self) -> list[int]:
        """Tasks with no dependencies (Algorithm 1's initial queue)."""
        return [node.task_id for node in self.nodes if node.num_parents == 0]

    def total_duration_by_kind(self) -> dict[str, float]:
        """Sum of task durations per kind tag (all devices)."""
        totals = {kind: 0.0 for kind in ALL_KINDS}
        for node in self.nodes:
            totals[node.kind] = totals.get(node.kind, 0.0) + node.duration
        return totals

    def device_durations(self) -> dict[int, float]:
        """Sum of task durations per device (busy-time upper bound)."""
        totals: dict[int, float] = {}
        for node in self.nodes:
            totals[node.device] = totals.get(node.device, 0.0) + node.duration
        return totals

    def validate_acyclic(self) -> None:
        """Raise :class:`SimulationError` if the graph has a cycle."""
        indegree = [node.num_parents for node in self.nodes]
        stack = [i for i, deg in enumerate(indegree) if deg == 0]
        visited = 0
        while stack:
            current = stack.pop()
            visited += 1
            for child in self.nodes[current].children:
                indegree[child] -= 1
                if indegree[child] == 0:
                    stack.append(child)
        if visited != len(self.nodes):
            raise SimulationError(
                f"execution graph has a cycle ({visited}/{len(self.nodes)} "
                "tasks reachable)")

    def to_networkx(self) -> nx.DiGraph:
        """Export to a networkx DiGraph (tests and analysis)."""
        graph = nx.DiGraph()
        for node in self.nodes:
            graph.add_node(node.task_id, device=node.device,
                           stream=node.stream, duration=node.duration,
                           kind=node.kind, label=node.label)
        for node in self.nodes:
            for child in node.children:
                graph.add_edge(node.task_id, child)
        return graph
