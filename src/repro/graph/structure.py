"""Execution-graph data structures shared by all granularities.

An :class:`ExecutionGraph` is a DAG of :class:`TaskNode` objects. Nodes
carry a device (a logical pipeline stage), a stream (``compute`` or
``comm`` — modelling CUDA streams so DP All-Reduce can overlap backward
compute, Figure 5a), a duration, and a kind tag used for time-breakdown
reporting. Edges encode both data dependencies and the paper's explicit
intra-GPU execution-order constraints (Section III-B).

The structure is deliberately lightweight (plain lists, integer node ids)
because Figure-10-scale design-space sweeps simulate hundreds of graphs;
:meth:`ExecutionGraph.to_networkx` exports to networkx for analysis and
tests.

**Structure/timing split.** A :class:`GraphStructure` is the *compiled*
form of an execution graph: every per-task attribute flattened into
CSR-style arrays, renumbered into the replay order Algorithm 1's FIFO
queue would visit (which is purely structural — task durations never
influence it), with the per-task duration vector kept separate. Replays
become a single array pass (:func:`repro.sim.engine.simulate_retimed`),
and because the topology is immutable, one compiled structure can be
re-timed with fresh duration vectors — a perturbed device model, a new
NCCL table, a different tensor-parallel degree with the same shape —
without rebuilding or re-sorting anything.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import networkx as nx
import numpy as np

from repro.errors import SimulationError

COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"

#: Node kind tags (drive the per-category time breakdown).
KIND_COMPUTE = "compute"
KIND_TP_COMM = "tp_allreduce"
KIND_DP_COMM = "dp_allreduce"
KIND_PP_COMM = "pp_sendrecv"
KIND_WEIGHT_UPDATE = "weight_update"

ALL_KINDS = (KIND_COMPUTE, KIND_TP_COMM, KIND_DP_COMM, KIND_PP_COMM,
             KIND_WEIGHT_UPDATE)


@dataclass
class TaskNode:
    """One schedulable unit of work (a task in Algorithm 1).

    Attributes:
        task_id: Index of this node in the graph's node list.
        device: Logical device (pipeline-stage index) executing the task.
        stream: ``compute`` or ``comm`` stream on that device.
        duration: Execution latency in seconds.
        kind: Category tag (see module constants).
        label: Human-readable name for traces and debugging.
        children: Task ids that depend on this task.
        num_parents: In-degree (Algorithm 1's initial ``ref`` count).
        payload: Optional reference to the originating operator/kernel.
    """

    task_id: int
    device: int
    stream: str
    duration: float
    kind: str
    label: str
    children: list[int] = field(default_factory=list)
    num_parents: int = 0
    payload: Any = None


class _AssemblerBase:
    """Shared add/link/chain logic of the two assemblers.

    Both assemblers must wire identical edges in identical order (the
    replay order — and therefore bit-identical results — depends on it),
    so the dependency bookkeeping lives here and subclasses only decide
    how a task is *stored*: as a :class:`TaskNode`
    (:class:`GraphAssembler`, producing an :class:`ExecutionGraph`) or
    as flat per-attribute columns (:class:`FlatAssembler`, producing a
    :class:`GraphStructure` without ever materializing node objects).
    """

    def __init__(self) -> None:
        self.slots: list[str | None] = []
        self._chain_tail: dict[tuple[int, str], int] = {}

    def add(self, device: int, stream: str, duration: float, kind: str,
            label: str, *, deps: Iterable[int] = (), chain: bool = True,
            payload: Any = None, slot: str | None = None) -> int:
        """Append a task; returns its id.

        Args:
            deps: Explicit extra dependencies (cross-device or
                cross-stream edges).
            chain: Serialise after the previous task on this
                (device, stream) pair.
            slot: Optional timing-slot key naming the duration's source,
                so a compiled :class:`GraphStructure` can re-derive the
                duration vector from a fresh timing table
                (:meth:`GraphStructure.retime`).
        """
        if duration < 0:
            raise SimulationError(f"negative duration for task {label!r}")
        task_id = self._append(device, stream, duration, kind, label,
                               payload)
        self.slots.append(slot)
        parents: set[int] = set(deps)
        if chain:
            tail = self._chain_tail.get((device, stream))
            if tail is not None:
                parents.add(tail)
            self._chain_tail[(device, stream)] = task_id
        for parent in parents:
            self.link(parent, task_id)
        return task_id

    def chain_tail(self, device: int, stream: str) -> int | None:
        """Latest task id on a stream, or None if the stream is empty."""
        return self._chain_tail.get((device, stream))

    def _append(self, device: int, stream: str, duration: float, kind: str,
                label: str, payload: Any) -> int:
        raise NotImplementedError

    def link(self, parent: int, child: int) -> None:
        raise NotImplementedError


class GraphAssembler(_AssemblerBase):
    """Incrementally builds an :class:`ExecutionGraph`.

    Tracks the tail of every (device, stream) chain so consecutive tasks
    on one stream serialise via explicit edges — the paper's "execution
    order within each GPU must be modeled" requirement.
    """

    def __init__(self) -> None:
        super().__init__()
        self.nodes: list[TaskNode] = []

    def _append(self, device: int, stream: str, duration: float, kind: str,
                label: str, payload: Any) -> int:
        task_id = len(self.nodes)
        self.nodes.append(TaskNode(task_id=task_id, device=device,
                                   stream=stream, duration=duration,
                                   kind=kind, label=label, payload=payload))
        return task_id

    def link(self, parent: int, child: int) -> None:
        """Add a dependency edge parent -> child."""
        if parent == child:
            raise SimulationError("a task cannot depend on itself")
        self.nodes[parent].children.append(child)
        self.nodes[child].num_parents += 1

    def finish(self, num_devices: int,
               metadata: dict[str, Any] | None = None) -> "ExecutionGraph":
        """Freeze the assembled nodes into an ExecutionGraph."""
        return ExecutionGraph(nodes=self.nodes, num_devices=num_devices,
                              metadata=dict(metadata or {}))


class FlatAssembler(_AssemblerBase):
    """Column-oriented assembler feeding :meth:`compile` directly.

    Behaviourally identical to :class:`GraphAssembler` (same task ids,
    same edges in the same order) but stores per-task attributes in
    parallel lists, so compiling a :class:`GraphStructure` skips
    :class:`TaskNode` allocation entirely — the builder's fast path when
    the caller wants a compiled structure rather than a node graph.
    """

    def __init__(self) -> None:
        super().__init__()
        self.device: list[int] = []
        self.stream: list[str] = []
        self.duration: list[float] = []
        self.kind: list[str] = []
        self.label: list[str] = []
        self.payload: list[Any] = []
        self.children: list[list[int]] = []
        self.num_parents: list[int] = []

    def __len__(self) -> int:
        return len(self.device)

    def _append(self, device: int, stream: str, duration: float, kind: str,
                label: str, payload: Any) -> int:
        task_id = len(self.device)
        self.device.append(device)
        self.stream.append(stream)
        self.duration.append(duration)
        self.kind.append(kind)
        self.label.append(label)
        self.payload.append(payload)
        self.children.append([])
        self.num_parents.append(0)
        return task_id

    def link(self, parent: int, child: int) -> None:
        """Add a dependency edge parent -> child."""
        if parent == child:
            raise SimulationError("a task cannot depend on itself")
        self.children[parent].append(child)
        self.num_parents[child] += 1

    def compile(self, num_devices: int,
                metadata: dict[str, Any] | None = None) -> "GraphStructure":
        """Compile the assembled columns into a :class:`GraphStructure`.

        Raises:
            SimulationError: Device out of range, or a dependency cycle
                (reported with the reference engine's deadlock message).
        """
        num_tasks = len(self.device)
        for task_id, device in enumerate(self.device):
            if not 0 <= device < num_devices:
                raise SimulationError(
                    f"task {task_id} ({self.label[task_id]!r}) runs on "
                    f"device {device}, outside the graph's "
                    f"{num_devices} devices")
        order = _replay_order(self.children, self.num_parents)
        if len(order) != num_tasks:
            raise SimulationError(
                f"task graph deadlocked: {len(order)}/{num_tasks} tasks "
                "executed (dependency cycle)")
        return GraphStructure._from_columns(
            order=order, device=self.device, stream=self.stream,
            duration=self.duration, kind=self.kind, label=self.label,
            payload=self.payload, children=self.children,
            slots=self.slots, num_devices=num_devices,
            metadata=dict(metadata or {}))


def _replay_order(children: list[list[int]],
                  num_parents: list[int]) -> list[int]:
    """Kahn's algorithm with a FIFO queue — the exact pop order of the
    reference engine's Algorithm-1 loop, which is purely structural."""
    ref = list(num_parents)
    queue: deque[int] = deque(task for task, parents in enumerate(ref)
                              if parents == 0)
    order: list[int] = []
    order_append = order.append
    queue_pop = queue.popleft
    queue_push = queue.append
    while queue:
        task = queue_pop()
        order_append(task)
        for child in children[task]:
            remaining = ref[child] - 1
            ref[child] = remaining
            if not remaining:
                queue_push(child)
    return order


@dataclass
class ExecutionGraph:
    """A frozen task DAG ready for Algorithm-1 replay."""

    nodes: list[TaskNode]
    num_devices: int
    metadata: dict[str, Any] = field(default_factory=dict)
    _compiled: "GraphStructure | None" = field(default=None, init=False,
                                               repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_devices < 0:
            raise SimulationError("num_devices must be non-negative")
        for node in self.nodes:
            if not 0 <= node.device < self.num_devices:
                raise SimulationError(
                    f"task {node.task_id} ({node.label!r}) runs on device "
                    f"{node.device}, outside the graph's "
                    f"{self.num_devices} devices")

    def __len__(self) -> int:
        return len(self.nodes)

    def compiled(self) -> "GraphStructure":
        """The compiled replay form of this graph (built once, memoized).

        Memoization freezes the *topology* at the first call — edges
        added afterwards are not seen by later replays. Durations are
        not frozen: :func:`~repro.sim.engine.simulate` re-reads them
        from the nodes on every call, so mutating ``node.duration``
        between replays (sensitivity studies) behaves exactly like the
        reference engine.

        Raises:
            SimulationError: If the graph contains a dependency cycle.
        """
        if self._compiled is None:
            self._compiled = GraphStructure.compile(self)
        return self._compiled

    @property
    def num_edges(self) -> int:
        """Total dependency-edge count."""
        return sum(len(node.children) for node in self.nodes)

    def roots(self) -> list[int]:
        """Tasks with no dependencies (Algorithm 1's initial queue)."""
        return [node.task_id for node in self.nodes if node.num_parents == 0]

    def total_duration_by_kind(self) -> dict[str, float]:
        """Sum of task durations per kind tag (all devices)."""
        totals = {kind: 0.0 for kind in ALL_KINDS}
        for node in self.nodes:
            totals[node.kind] = totals.get(node.kind, 0.0) + node.duration
        return totals

    def device_durations(self) -> dict[int, float]:
        """Sum of task durations per device (busy-time upper bound)."""
        totals: dict[int, float] = {}
        for node in self.nodes:
            totals[node.device] = totals.get(node.device, 0.0) + node.duration
        return totals

    def validate_acyclic(self) -> None:
        """Raise :class:`SimulationError` if the graph has a cycle."""
        indegree = [node.num_parents for node in self.nodes]
        stack = [i for i, deg in enumerate(indegree) if deg == 0]
        visited = 0
        while stack:
            current = stack.pop()
            visited += 1
            for child in self.nodes[current].children:
                indegree[child] -= 1
                if indegree[child] == 0:
                    stack.append(child)
        if visited != len(self.nodes):
            raise SimulationError(
                f"execution graph has a cycle ({visited}/{len(self.nodes)} "
                "tasks reachable)")

    def to_networkx(self) -> nx.DiGraph:
        """Export to a networkx DiGraph (tests and analysis)."""
        graph = nx.DiGraph()
        for node in self.nodes:
            graph.add_node(node.task_id, device=node.device,
                           stream=node.stream, duration=node.duration,
                           kind=node.kind, label=node.label)
        for node in self.nodes:
            for child in node.children:
                graph.add_edge(node.task_id, child)
        return graph


class GraphStructure:
    """Immutable compiled topology of an execution graph.

    Tasks are renumbered into *replay order* — the exact order
    Algorithm 1's FIFO queue pops them (Kahn's algorithm with a FIFO
    queue seeded in node order), which depends only on the edge
    structure, never on durations. Every per-task attribute is a flat
    array indexed by replay position, and children are stored CSR-style
    (``child_ptr``/``child_idx``), so the replay engine touches no
    dicts, deques, or node objects.

    The baseline ``duration`` vector captured at compile time is one
    valid timing; :meth:`retime` derives fresh vectors from a timing
    table via the per-task ``slot`` keys the builder recorded, which is
    what makes retime-without-rebuild sweeps possible.

    Attributes:
        num_tasks / num_devices / num_edges: Sizes.
        task_id: Original task id at each replay position (``intp``).
        device: Executing device per position (``intp``).
        kinds: Distinct kind tags, in first-appearance order.
        kind_index: Index into ``kinds`` per position (``intp``).
        child_ptr / child_idx: CSR adjacency over replay positions —
            children of position ``k`` are
            ``child_idx[child_ptr[k]:child_ptr[k + 1]]``.
        duration: Baseline durations per position (``float64``,
            read-only).
        stream / label / payload: Per-position tuples (used only when a
            replay records its timeline, or by retiming consumers).
            Note that on a structure served from the process-wide cache
            these are *representative* of the build that compiled it —
            payloads in particular may belong to a different plan with
            the same topology. Consumers needing exact per-plan
            operators must resolve through ``slot_keys`` against their
            own builder (see ``GraphBuilder.slot_kernel_counts``).
        slot_keys: Distinct timing-slot keys, or ``None`` when the
            source assembler recorded no slots.
        slot_index: Index into ``slot_keys`` per position, or ``None``.
        metadata: The source graph's metadata (replays may override).
    """

    def __init__(self, *, task_ids: list[int], device_ids: list[int],
                 kinds: tuple[str, ...], kind_ids: list[int],
                 children: list[list[int]], duration_view: list[float],
                 stream: tuple[str, ...], label: tuple[str, ...],
                 payload: tuple[Any, ...], num_devices: int,
                 device_kind_order: tuple[tuple[int, ...], ...],
                 slot_keys: tuple[str, ...] | None,
                 slot_ids: list[int] | None,
                 metadata: dict[str, Any]) -> None:
        num_tasks = len(task_ids)
        self.num_tasks = num_tasks
        self.num_devices = num_devices
        # Python-native views for the replay hot loop (plain-list
        # iteration beats CSR index arithmetic in CPython; the CSR
        # arrays below stay the canonical, exportable representation).
        self.task_ids = task_ids
        self.device_ids = device_ids
        self.children_view = children
        self.duration_view = duration_view
        self.kinds = kinds
        self.stream = stream
        self.label = label
        self.payload = payload
        self.metadata = metadata
        # Flat-array form: per-task attributes and CSR adjacency.
        self.task_id = np.array(task_ids, dtype=np.intp)
        self.device = np.array(device_ids, dtype=np.intp)
        self.kind_index = np.array(kind_ids, dtype=np.intp)
        self.duration = np.array(duration_view, dtype=np.float64)
        self.duration.setflags(write=False)
        child_ptr = np.zeros(num_tasks + 1, dtype=np.intp)
        if num_tasks:
            np.cumsum(np.fromiter(map(len, children), dtype=np.intp,
                                  count=num_tasks), out=child_ptr[1:])
        self.child_ptr = child_ptr
        num_edges = int(child_ptr[-1])
        self.num_edges = num_edges
        self.child_idx = np.fromiter(
            (child for kids in children for child in kids),
            dtype=np.intp, count=num_edges)
        # Flat (device, kind) bucket per position for one-pass busy
        # accounting; device_kind_order lists each device's kinds in
        # first-appearance order so replay results reproduce the
        # reference engine's dict layout.
        self.busy_index = self.device * len(kinds) + self.kind_index
        self.device_kind_order = device_kind_order
        self.slot_keys = slot_keys
        self.slot_index = (np.array(slot_ids, dtype=np.intp)
                           if slot_ids is not None else None)
        self._batch_plan: BatchSweepPlan | None = None

    @classmethod
    def compile(cls, graph: ExecutionGraph,
                slots: list[str | None] | None = None) -> "GraphStructure":
        """Flatten ``graph`` into its compiled replay form.

        (Builders that only need the compiled form should prefer a
        :class:`FlatAssembler`, which skips node objects entirely.)

        Args:
            slots: Per-task timing-slot keys in *original* task order
                (from :attr:`GraphAssembler.slots`); omit (or include
                any ``None``) to compile a structure that replays but
                cannot :meth:`retime` by slot.

        Raises:
            SimulationError: If the graph contains a dependency cycle
                (reported with the reference engine's deadlock message).
        """
        nodes = graph.nodes
        num_tasks = len(nodes)
        children = [node.children for node in nodes]
        order = _replay_order(children,
                              [node.num_parents for node in nodes])
        if len(order) != num_tasks:
            raise SimulationError(
                f"task graph deadlocked: {len(order)}/{num_tasks} tasks "
                "executed (dependency cycle)")
        return cls._from_columns(
            order=order,
            device=[node.device for node in nodes],
            stream=[node.stream for node in nodes],
            duration=[node.duration for node in nodes],
            kind=[node.kind for node in nodes],
            label=[node.label for node in nodes],
            payload=[node.payload for node in nodes],
            children=children,
            slots=slots,
            num_devices=graph.num_devices,
            metadata=dict(graph.metadata))

    @classmethod
    def _from_columns(cls, *, order: list[int], device: list[int],
                      stream: list[str], duration: list[float],
                      kind: list[str], label: list[str],
                      payload: list[Any], children: list[list[int]],
                      slots: list[str | None] | None, num_devices: int,
                      metadata: dict[str, Any]) -> "GraphStructure":
        """Permute original-order columns into a replay-order structure."""
        num_tasks = len(device)
        position = [0] * num_tasks
        for pos, task in enumerate(order):
            position[task] = pos

        use_slots = (slots is not None and len(slots) == num_tasks
                     and None not in slots)
        kinds: list[str] = []
        kind_of: dict[str, int] = {}
        slot_list: list[str] = []
        slot_of: dict[str, int] = {}
        device_ids: list[int] = []
        kind_ids: list[int] = []
        durations: list[float] = []
        streams: list[str] = []
        labels: list[str] = []
        payloads: list[Any] = []
        children_view: list[list[int]] = []
        slot_ids: list[int] | None = [] if use_slots else None
        kind_order: list[list[int]] = [[] for _ in range(num_devices)]
        seen_busy: set[tuple[int, int]] = set()

        for task in order:
            dev = device[task]
            device_ids.append(dev)
            kind_id = kind_of.get(kind[task])
            if kind_id is None:
                kind_id = kind_of[kind[task]] = len(kinds)
                kinds.append(kind[task])
            kind_ids.append(kind_id)
            if (dev, kind_id) not in seen_busy:
                seen_busy.add((dev, kind_id))
                kind_order[dev].append(kind_id)
            durations.append(duration[task])
            streams.append(stream[task])
            labels.append(label[task])
            payloads.append(payload[task])
            children_view.append([position[child]
                                  for child in children[task]])
            if slot_ids is not None:
                slot_key = slots[task]
                slot = slot_of.get(slot_key)
                if slot is None:
                    slot = slot_of[slot_key] = len(slot_list)
                    slot_list.append(slot_key)
                slot_ids.append(slot)

        return cls(
            task_ids=order,
            device_ids=device_ids,
            kinds=tuple(kinds),
            kind_ids=kind_ids,
            children=children_view,
            duration_view=durations,
            stream=tuple(streams),
            label=tuple(labels),
            payload=tuple(payloads),
            num_devices=num_devices,
            device_kind_order=tuple(tuple(order_) for order_ in kind_order),
            slot_keys=tuple(slot_list) if use_slots else None,
            slot_ids=slot_ids,
            metadata=metadata)

    def retime(self, timings: Mapping[str, float]) -> np.ndarray:
        """Duration vector (replay order) from a fresh timing table.

        Args:
            timings: Slot key -> duration in seconds. Must cover every
                slot key this structure references.

        Raises:
            SimulationError: If the structure was compiled without slot
                keys, or ``timings`` is missing one of them.
        """
        if self.slot_keys is None or self.slot_index is None:
            raise SimulationError(
                "structure was compiled without timing slots; "
                "pass an explicit duration vector instead")
        try:
            values = [timings[key] for key in self.slot_keys]
        except KeyError as exc:
            raise SimulationError(
                f"timing table is missing slot {exc.args[0]!r}; the "
                "structure does not match this builder") from exc
        return np.asarray(values, dtype=np.float64)[self.slot_index]

    def batch_plan(self) -> "BatchSweepPlan":
        """The vectorized-sweep schedule for this structure (memoized).

        Built once per structure (it is purely structural, like the
        replay order) and reused by every
        :func:`~repro.sim.engine.simulate_retimed_batch` call, so
        sweeps over many duration matrices amortize its cost the same
        way they amortize compilation.
        """
        if self._batch_plan is None:
            self._batch_plan = BatchSweepPlan(self)
        return self._batch_plan

    def nbytes_estimate(self) -> int:
        """Rough memory footprint (cache budgeting)."""
        arrays = (self.task_id, self.device, self.kind_index,
                  self.child_ptr, self.child_idx, self.duration,
                  self.busy_index)
        total = sum(array.nbytes for array in arrays)
        if self.slot_index is not None:
            total += self.slot_index.nbytes
        # Tuples, label strings, and the children view dominate beyond
        # the arrays; ~200 bytes/task is a measured ballpark.
        return total + 200 * self.num_tasks


class BatchSweepPlan:
    """Precomputed schedule for batched finish-time propagation.

    The scalar replay visits positions one at a time; the batched
    engine instead visits *chunks* ``[a, b)`` of consecutive replay
    positions chosen so that no edge lands inside its own chunk. Every
    parent of a chunk's positions therefore lies in an earlier chunk,
    which means all starts in ``[a, b)`` are final when the chunk is
    entered and the whole chunk's finish rows — one row of N batch
    columns per position — can be computed in one vectorized operation.

    Chunk boundaries are purely structural: a chunk extends while the
    next position is smaller than the minimum child position seen so
    far (children always sit at later replay positions). Chain-heavy
    builder graphs yield chunks of roughly one task per concurrently
    runnable stream, a few dozen positions on MT-NLG-scale graphs.

    Per chunk, the outgoing edges are pre-sorted by child so duplicate
    targets (a task with several parents in one chunk) collapse through
    one ``maximum.reduceat`` segment pass; chunks whose targets are
    already unique — the overwhelming majority — skip the segment pass
    entirely. Because ``max`` is exact and order-independent and each
    finish is produced by the same single IEEE-754 addition as the
    scalar engine, the batched sweep is bit-identical column-for-column
    to :func:`~repro.sim.engine.simulate_retimed`.

    Attributes:
        chunks: ``(a, b, src, seg, dst)`` tuples — ``src`` is ``None``
            for chunks with no outgoing edges; ``seg`` is ``None`` when
            ``dst`` holds unique targets (then ``src``/``dst`` pair up
            edge by edge), else ``seg`` holds ``reduceat`` segment
            starts into ``src`` and ``dst`` holds one target per
            segment.
        device_order: Replay positions stably sorted by device.
        device_seg: ``reduceat`` segment starts into ``device_order``,
            one per present device.
        present_devices: Device id of each segment (devices with no
            tasks keep their zero timeline, as in the scalar engine).
    """

    def __init__(self, structure: GraphStructure) -> None:
        num_tasks = structure.num_tasks
        child_ptr = structure.child_ptr
        child_idx = structure.child_idx
        counts = np.diff(child_ptr)
        min_child = np.full(num_tasks, num_tasks + 1, dtype=np.intp)
        has_children = counts > 0
        if has_children.any():
            min_child[has_children] = np.minimum.reduceat(
                child_idx, child_ptr[:-1][has_children])
        bounds = [0]
        limit = num_tasks + 1
        for position in range(num_tasks):
            if position >= limit:
                bounds.append(position)
                limit = num_tasks + 1
            earliest = min_child[position]
            if earliest < limit:
                limit = earliest
        bounds.append(num_tasks)

        chunks: list[tuple[int, int, np.ndarray | None,
                           np.ndarray | None, np.ndarray | None]] = []
        for a, b in zip(bounds, bounds[1:]):
            dst = child_idx[child_ptr[a]:child_ptr[b]]
            if dst.size == 0:
                chunks.append((a, b, None, None, None))
                continue
            src = np.repeat(np.arange(a, b, dtype=np.intp), counts[a:b])
            order = np.argsort(dst, kind="stable")
            dst = dst[order]
            src = src[order]
            if dst.size == 1 or bool(np.all(dst[1:] != dst[:-1])):
                chunks.append((a, b, src, None, dst))
            else:
                seg = np.flatnonzero(np.r_[True, dst[1:] != dst[:-1]])
                chunks.append((a, b, src, seg, dst[seg]))
        self.chunks = chunks

        self.device_order = np.argsort(structure.device, kind="stable")
        devices = structure.device[self.device_order]
        if num_tasks:
            self.device_seg = np.flatnonzero(
                np.r_[True, devices[1:] != devices[:-1]])
            self.present_devices = devices[self.device_seg]
        else:
            self.device_seg = np.zeros(0, dtype=np.intp)
            self.present_devices = np.zeros(0, dtype=np.intp)
