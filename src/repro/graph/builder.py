"""Operator-granularity execution-graph construction (Figure 4, step 2).

The builder turns an input description into the task DAG of one training
iteration, inserting every communication operator the 3D-parallel plan
requires:

* tensor-parallel All-Reduces after each MHA and FFN block, forward and
  backward, sequentially dependent on their block (Figure 6);
* data-parallel gradient-bucket All-Reduces on the communication stream,
  overlapping backward compute (Figure 5a) — or one terminal All-Reduce
  when bucketing is off (Figure 5b);
* pipeline Send-Receives at stage boundaries, GPipe-, 1F1B-, or
  interleaved-ordered (Figure 7) with both intra-GPU issue order and
  cross-GPU micro-batch dependencies enforced (Figure 8). Interleaved
  plans (``virtual_stages > 1``) additionally emit the wrap-around
  Send-Receives that carry chunk ``c`` output from the last stage back
  to chunk ``c+1`` on the first stage.

**Symmetry reduction.** Tensor-parallel ranks within a stage execute
identical kernel streams, and data-parallel replicas are symmetric, so
the builder materialises one pipeline of ``p`` logical devices; TP
All-Reduces appear as inline comm tasks and DP All-Reduces as comm-stream
tasks. This is the paper's necessary-operator observation applied to the
graph itself; per-GPU behaviour is preserved exactly.

**Granularities.** ``KERNEL`` emits one task per CUDA kernel (the paper's
task-granularity graph, Figure 4 step 4); ``OPERATOR`` emits one task per
layer-node with duration equal to the sum of its kernels (exact, because
kernels run back-to-back on one stream); ``STAGE`` collapses each
(stage, micro-batch, phase) chunk into a single task for fast DSE sweeps,
splitting only the last backward chunk per bucket so gradient-bucket
overlap stays modelled.
"""

from __future__ import annotations

import enum
import os
import threading
from collections import OrderedDict

import numpy as np

from repro import obs
from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, TrainingConfig,
                                      layers_per_stage, num_micro_batches,
                                      validate_plan)
from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.graph.operators import (CompOperator, OpKind,
                                   data_allreduce, pipeline_send_recv,
                                   tensor_allreduce)
from repro.graph.pipeline import (FORWARD, ScheduledChunk,
                                  last_backward_micro_batch, schedule_order)
from repro.graph.structure import (COMM_STREAM, COMPUTE_STREAM,
                                   ExecutionGraph, FlatAssembler,
                                   GraphAssembler, GraphStructure,
                                   KIND_COMPUTE, KIND_DP_COMM, KIND_PP_COMM,
                                   KIND_TP_COMM, KIND_WEIGHT_UPDATE,
                                   _AssemblerBase)
from repro.hardware.cluster import ClusterTopology
from repro.profiling.lookup import OperatorToTaskTable
from repro.profiling.nccl import NcclModel
from repro.workload import DECODE, INFERENCE_PHASES, InferenceWorkload, PREFILL

FP16 = 2.0


class Granularity(enum.Enum):
    """Level of detail of the emitted execution graph."""

    KERNEL = "kernel"
    OPERATOR = "operator"
    STAGE = "stage"


# ---------------------------------------------------------------------------
# Process-wide structure cache
# ---------------------------------------------------------------------------
# Compiled GraphStructures keyed by their structural fingerprint
# (GraphBuilder.structure_key). Two plans that differ only in profiled
# durations — micro-batch *size* at the same micro-batch count, a
# different tensor degree with tensor parallelism still on, a perturbed
# device or NCCL model, or simply a repeated VTrain.predict of the same
# plan — share one compiled topology and only refill the duration
# vector. The cache is per-process by design (ParallelExplorer workers
# each warm their own), LRU-evicted against a total-task budget.
#
# All cache operations hold _STRUCTURE_CACHE_LOCK: the `repro serve`
# daemon retimes one shared cache from many handler threads, and the
# OrderedDict mutations (move_to_end on hit, popitem on eviction) are
# not atomic. The lock is uncontended in single-threaded use — one
# acquire per get/put, no allocation — so the warm fast path stays
# within the committed perf baselines.

_STRUCTURE_CACHE: "OrderedDict[str, GraphStructure]" = OrderedDict()
_STRUCTURE_CACHE_LOCK = threading.RLock()

# Hit/miss/eviction accounting lives on the process-wide obs registry
# (single source of truth for `repro stats`); structure_cache_stats()
# below remains the stable dict-shaped view callers and tests use.
_CACHE_HITS = obs.metrics.counter("graph.structure_cache.hits")
_CACHE_MISSES = obs.metrics.counter("graph.structure_cache.misses")
_CACHE_EVICTIONS = obs.metrics.counter("graph.structure_cache.evictions")

#: Default cap on the summed task count of cached structures (~200 MB
#: worst case); override with REPRO_STRUCTURE_CACHE_TASKS.
DEFAULT_STRUCTURE_CACHE_TASKS = 1_000_000


def _structure_cache_budget() -> int:
    raw = os.environ.get("REPRO_STRUCTURE_CACHE_TASKS")
    if raw is None:
        return DEFAULT_STRUCTURE_CACHE_TASKS
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_STRUCTURE_CACHE_TASKS


def structure_cache_get(key: str) -> GraphStructure | None:
    """Cached structure for ``key`` (counts a hit or a miss)."""
    with _STRUCTURE_CACHE_LOCK:
        structure = _STRUCTURE_CACHE.get(key)
        if structure is None:
            _CACHE_MISSES.increment()
            return None
        _STRUCTURE_CACHE.move_to_end(key)
        _CACHE_HITS.increment()
        return structure


def structure_cache_put(key: str, structure: GraphStructure) -> None:
    """Insert a structure, LRU-evicting down to the task budget."""
    with _STRUCTURE_CACHE_LOCK:
        _STRUCTURE_CACHE[key] = structure
        _STRUCTURE_CACHE.move_to_end(key)
        budget = _structure_cache_budget()
        total = sum(entry.num_tasks for entry in _STRUCTURE_CACHE.values())
        while total > budget and len(_STRUCTURE_CACHE) > 1:
            _, evicted = _STRUCTURE_CACHE.popitem(last=False)
            total -= evicted.num_tasks
            _CACHE_EVICTIONS.increment()


def structure_cache_evict(key: str) -> None:
    """Drop one entry (defensive fallback when a refill mismatches)."""
    with _STRUCTURE_CACHE_LOCK:
        _STRUCTURE_CACHE.pop(key, None)


def structure_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction/size counters for this process (thin view over
    the ``graph.structure_cache.*`` obs registry counters)."""
    with _STRUCTURE_CACHE_LOCK:
        return {"hits": _CACHE_HITS.value,
                "misses": _CACHE_MISSES.value,
                "evictions": _CACHE_EVICTIONS.value,
                "entries": len(_STRUCTURE_CACHE),
                "cached_tasks": sum(entry.num_tasks
                                    for entry in _STRUCTURE_CACHE.values())}


def clear_structure_cache() -> None:
    """Empty the cache and reset its counters (tests, benchmarks)."""
    with _STRUCTURE_CACHE_LOCK:
        _STRUCTURE_CACHE.clear()
        for counter in (_CACHE_HITS, _CACHE_MISSES, _CACHE_EVICTIONS):
            counter.reset()


def structure_fingerprint(model: ModelConfig, plan: ParallelismConfig,
                          training: TrainingConfig,
                          granularity: Granularity, *,
                          workload: InferenceWorkload | None = None,
                          phase: str | None = None) -> str:
    """Fingerprint of everything that shapes a plan's emitted topology.

    Two (model, plan, training, granularity) tuples with equal
    fingerprints produce graphs with identical node sequences, edges,
    devices, streams, labels, and timing slots — only slot *values*
    (durations) may differ. The fingerprint deliberately excludes pure
    timing inputs (hidden size, tensor/data degree magnitudes,
    interconnects, the device model, recompute outside KERNEL
    granularity) so sweeps re-time one compiled structure instead of
    rebuilding:

    * model shape enters as layers-per-stage (the only model property
      emission reads);
    * plan way enters as pipeline depth plus *whether* TP/DP
      collectives exist (their degree only scales durations);
    * micro-batch count and schedule fix the chunk issue order;
    * the gradient-bucket layout fixes DP All-Reduce tasks;
    * granularity fixes the stream layout; KERNEL graphs add the
      recompute mode because it changes the kernel sequence itself.

    Computable without any profiling state, so sweep engines use it to
    group plans for cache affinity before evaluating them.

    Inference phase graphs (``workload``/``phase`` set) append a
    workload tag so a prefill or decode structure is never confused
    with — or silently served for — a training structure, and vice
    versa; training fingerprints omit the tag entirely and stay
    byte-identical to every pre-workload release. For inference,
    ``training`` is the workload's proxy config
    (:meth:`~repro.workload.InferenceWorkload.training_proxy`).
    """
    lps = layers_per_stage(model, plan)
    nmb = num_micro_batches(plan, training)
    if plan.gradient_bucketing:
        buckets = min(plan.num_gradient_buckets, lps)
    else:
        buckets = 1
    base, extra = divmod(lps, buckets)  # mirrors the builder's layout
    sizes = [base + (1 if k < extra else 0) for k in range(buckets)]
    parts = [
        f"g={granularity.value}",
        f"sched={plan.schedule.value}",
        f"p={plan.pipeline}",
        f"lps={lps}",
        f"nmb={nmb}",
        f"tp={int(plan.tensor > 1)}",
        f"dp={int(plan.data > 1)}",
        f"buckets={','.join(str(size) for size in sizes)}",
    ]
    if plan.virtual_stages > 1:
        # Interleaving changes the chunk issue order, the per-chunk
        # layer slices, and adds wrap-around P2P tasks; a v=1 structure
        # silently reused for v>1 (or vice versa) would be wrong. The
        # part is omitted at v=1 so pre-interleaving fingerprints are
        # byte-identical.
        parts.append(f"v={plan.virtual_stages}")
    if granularity is Granularity.KERNEL:
        # Kernel graphs bake shape into the structure itself: the
        # recompute mode changes the kernel sequence, and kernel task
        # labels carry names derived from the sharded GEMM shapes.
        parts.append(f"rc={plan.recompute.value}")
        parts.append(f"shape={model.hidden_size}x{model.num_heads}"
                     f"x{model.seq_length}"
                     f"x{model.padded_vocab_size(plan.tensor)}")
        parts.append(f"mbs={plan.micro_batch_size}")
        parts.append(f"t={plan.tensor}")
    if phase is not None:
        if workload is None or phase not in INFERENCE_PHASES:
            raise ConfigError(
                f"inference fingerprint needs a workload and a phase in "
                f"{INFERENCE_PHASES}, got workload={workload!r} "
                f"phase={phase!r}")
        # Inference phase graphs carry their own sequence shape (the
        # prompt length for prefill, one token + KV depth for decode)
        # rather than the model's training seq_length, so the phase,
        # the per-phase sequence length, and the decode KV depth all
        # enter the fingerprint. Conservative on purpose: two decode
        # graphs differing only in KV depth share topology, but their
        # kernel labels differ, so they are cached separately.
        parts.append("wl=inference")
        parts.append(f"ph={phase}")
        if phase == PREFILL:
            parts.append(f"seq={workload.prompt_len}")
        else:
            parts.append(f"seq=1;kv={workload.decode_kv_length}")
    return ";".join(parts)


def structure_affinity(model: ModelConfig, plan: ParallelismConfig,
                       training: TrainingConfig,
                       granularity: Granularity) -> str | None:
    """Best-effort :func:`structure_fingerprint` for sweep grouping.

    Returns ``None`` for plans whose fingerprint cannot be computed
    (structurally invalid — they fail fast during evaluation anyway);
    sweep engines sort those last in their original order.
    """
    try:
        return structure_fingerprint(model, plan, training, granularity)
    except (ArithmeticError, ValueError):
        return None


class GraphBuilder:
    """Builds one workload step's execution graph.

    The default (no ``workload``/``phase``) emits the classic training
    iteration — forward, backward, gradient sync, weight update — and
    is bit-identical to the pre-workload builder. With an
    :class:`~repro.workload.InferenceWorkload` and a phase tag the same
    phase-composition machinery emits a serving phase graph instead:

    * ``PREFILL`` — the pipelined full-prompt forward pass (no
      backward, optimizer, or gradient-bucket tasks), reusing the exact
      forward-chunk emission of training, so a prefill graph is the
      forward-only subgraph of the matching training graph;
    * ``DECODE`` — one single-token forward step whose attention
      operators are scaled by the accumulated KV-cache length.

    Both phases reuse the TP All-Reduce and PP Send-Receive timing from
    the network layer, sized to the phase's sequence length.
    """

    def __init__(self, model: ModelConfig, system: SystemConfig,
                 plan: ParallelismConfig, training: TrainingConfig | None,
                 lookup: OperatorToTaskTable, nccl: NcclModel,
                 granularity: Granularity = Granularity.OPERATOR, *,
                 workload: InferenceWorkload | None = None,
                 phase: str | None = None) -> None:
        if (workload is None) != (phase is None):
            raise ConfigError(
                "workload and phase must be given together")
        if workload is not None:
            if phase not in INFERENCE_PHASES:
                raise ConfigError(
                    f"phase must be one of {INFERENCE_PHASES}, "
                    f"got {phase!r}")
            if plan.virtual_stages > 1:
                raise ConfigError(
                    "inference graphs do not support virtual pipeline "
                    "stages (interleaving is a training-schedule "
                    "optimisation)")
            if training is None:
                training = workload.training_proxy(plan.data)
        elif training is None:
            raise ConfigError("training config required for the "
                              "training workload")
        validate_plan(model, plan, training, plan.total_gpus)
        if plan.total_gpus > system.num_gpus:
            raise ConfigError(
                f"plan needs {plan.total_gpus} GPUs, system has "
                f"{system.num_gpus}")
        self.model = model
        self.system = system
        self.plan = plan
        self.training = training
        self.lookup = lookup
        self.nccl = nccl
        self.granularity = granularity
        self.workload = workload
        self.phase = phase
        # Phase shape: training and prefill run full sequences (the
        # model's seq_length / the workload's prompt length); decode
        # runs one token per sequence over the accumulated KV cache.
        if workload is None:
            self._seq = model.seq_length
            self._kv = 0
            self._compute_kind = KIND_COMPUTE
        elif phase == PREFILL:
            self._seq = workload.prompt_len
            self._kv = 0
            self._compute_kind = PREFILL
        else:
            self._seq = 1
            self._kv = workload.decode_kv_length
            self._compute_kind = DECODE

        self.topology = ClusterTopology(system, plan)
        self.nmb = num_micro_batches(plan, training)
        self.lps = layers_per_stage(model, plan)
        # Virtual pipelining: v model chunks of lpc layers per stage
        # (v == 1 means one chunk covering the whole stage).
        self.v = plan.virtual_stages
        self.lpc = self.lps // self.v
        self.vocab = model.padded_vocab_size(plan.tensor)
        self._init_operators()
        self._init_comm_times()
        self._init_stage_params()
        self._init_timings()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _init_operators(self) -> None:
        """Instantiate the necessary operators (one per signature).

        Operators take the *phase* sequence length (== the model's
        seq_length for training), and the forward MHA carries the
        phase's KV depth; backward operators exist only for the
        training workload.
        """
        model, plan = self.model, self.plan
        common = dict(micro_batch=plan.micro_batch_size,
                      seq_length=self._seq,
                      hidden_size=model.hidden_size,
                      num_heads=model.num_heads,
                      tensor_parallel=plan.tensor)
        self.op_fwd_mha = CompOperator(OpKind.FWD_MHA, kv_length=self._kv,
                                       **common)
        self.op_fwd_ffn = CompOperator(OpKind.FWD_FFN, **common)
        self.op_fwd_embed = CompOperator(OpKind.FWD_EMBEDDING,
                                         vocab_size=self.vocab, **common)
        self.op_fwd_head = CompOperator(OpKind.FWD_LM_HEAD,
                                        vocab_size=self.vocab, **common)
        if self.phase is not None:
            self.op_bwd_mha = None
            self.op_bwd_ffn = None
            self.op_bwd_embed = None
            self.op_bwd_head = None
            return
        self.op_bwd_mha = CompOperator(OpKind.BWD_MHA, recompute=plan.recompute,
                                       **common)
        self.op_bwd_ffn = CompOperator(OpKind.BWD_FFN, recompute=plan.recompute,
                                       **common)
        self.op_bwd_embed = CompOperator(OpKind.BWD_EMBEDDING,
                                         vocab_size=self.vocab, **common)
        self.op_bwd_head = CompOperator(OpKind.BWD_LM_HEAD,
                                        vocab_size=self.vocab, **common)

    def _init_comm_times(self) -> None:
        """Pre-time every communication operator the graph will use."""
        model, plan = self.model, self.plan
        b, s, h = plan.micro_batch_size, self._seq, model.hidden_size
        if plan.tensor > 1:
            link = self.topology.tensor_link()
            self.tp_ar = tensor_allreduce(b, s, h, plan.tensor, link)
            self.tp_ar_time = self.nccl.time(self.tp_ar)
        else:
            self.tp_ar = None
            self.tp_ar_time = 0.0
        self.send_time: list[float] = []
        for boundary in range(plan.pipeline - 1):
            link = self.topology.pipeline_hop_link(boundary)
            comm = pipeline_send_recv(b, s, h, link)
            self.send_time.append(self.nccl.time(comm))
        if self.v > 1:
            link = self.topology.pipeline_wrap_link()
            self.wrap_time = self.nccl.time(pipeline_send_recv(b, s, h, link))
        else:
            self.wrap_time = 0.0

    def _init_stage_params(self) -> None:
        """Per-stage parameter counts per GPU and gradient buckets."""
        model, plan = self.model, self.plan
        per_layer = model.params_per_layer() // plan.tensor
        embed = model.embedding_params() // plan.tensor
        final_norm = 2 * model.hidden_size
        self.stage_params: list[int] = []
        for stage in range(plan.pipeline):
            params = self.lps * per_layer
            if stage == 0:
                params += embed
            if stage == plan.pipeline - 1:
                params += final_norm
            self.stage_params.append(params)

        if plan.gradient_bucketing:
            buckets = min(plan.num_gradient_buckets, self.lps)
        else:
            buckets = 1
        # Contiguous layer partition: bucket k covers layers
        # [k*chunk, ...); the deepest bucket's gradients complete first.
        base, extra = divmod(self.lps, buckets)
        self.bucket_layers: list[list[int]] = []
        cursor = 0
        for k in range(buckets):
            width = base + (1 if k < extra else 0)
            self.bucket_layers.append(list(range(cursor, cursor + width)))
            cursor += width

    def _bucket_bytes(self, stage: int, bucket: int) -> float:
        """FP16 gradient payload of one bucket on one stage."""
        model, plan = self.model, self.plan
        per_layer = model.params_per_layer() // plan.tensor
        params = len(self.bucket_layers[bucket]) * per_layer
        if stage == 0 and 0 in self.bucket_layers[bucket]:
            params += model.embedding_params() // plan.tensor
        if stage == plan.pipeline - 1 and bucket == len(self.bucket_layers) - 1:
            params += 2 * model.hidden_size
        return FP16 * params

    def _init_timings(self) -> None:
        """Build the timing table: slot key -> duration in seconds.

        Every task the builder emits draws its duration from exactly one
        slot here, and records that slot key in the assembler; a
        compiled :class:`GraphStructure` can therefore be *re-timed* —
        its duration vector refilled from a fresh builder's table —
        without re-running graph assembly. Values are computed with the
        same expressions emission previously used inline, so graphs (and
        predictions) are bit-identical to the pre-split builder.
        """
        plan = self.plan
        timings: dict[str, float] = {}
        if self.phase is None:
            ops = self._comp_ops = (
                self.op_fwd_embed, self.op_fwd_mha, self.op_fwd_ffn,
                self.op_fwd_head, self.op_bwd_head, self.op_bwd_ffn,
                self.op_bwd_mha, self.op_bwd_embed)
        else:
            # Inference phases are forward-only: no backward, optimizer,
            # or gradient-sync slots exist in the table at all.
            ops = self._comp_ops = (
                self.op_fwd_embed, self.op_fwd_mha, self.op_fwd_ffn,
                self.op_fwd_head)
        for op in ops:
            timings[f"op:{op.kind.value}"] = self.lookup.duration_of(op)
        if self.granularity is Granularity.KERNEL:
            for op in ops:
                for index, kernel in enumerate(self.lookup.tasks_for(op)):
                    timings[f"k:{op.kind.value}:{index}"] = kernel.duration
        timings["tp_ar"] = self.tp_ar_time
        for boundary, seconds in enumerate(self.send_time):
            timings[f"pp:{boundary}"] = seconds
        if self.v > 1:
            timings["pp:wrap"] = self.wrap_time

        self._dp_comms: dict[tuple[int, int], object] = {}
        if plan.data > 1 and self.phase is None:
            dp_link = self.topology.data_link()
            dp_concurrency = self.topology.concurrent_data_groups_per_node()
            for stage in range(plan.pipeline):
                for bucket in range(len(self.bucket_layers)):
                    comm = data_allreduce(
                        self._bucket_bytes(stage, bucket), plan.data, dp_link,
                        concurrent_groups=dp_concurrency)
                    self._dp_comms[(stage, bucket)] = comm
                    timings[f"dp:{stage}:{bucket}"] = self.nccl.time(comm)

        self._wu_ops: dict[int, CompOperator] = {}
        if self.phase is None:
            for stage in range(plan.pipeline):
                wu_op = CompOperator(OpKind.WEIGHT_UPDATE,
                                     num_params=self.stage_params[stage])
                self._wu_ops[stage] = wu_op
                timings[f"wu:{stage}"] = self.lookup.duration_of(wu_op)

        if self.granularity is Granularity.STAGE:
            for stage in range(plan.pipeline):
                for chunk in range(self.v):
                    timings[self._slot("sf", stage, chunk)] = \
                        self._forward_stage_duration(stage, chunk)
                    if self.phase is None:
                        timings[self._slot("sb", stage, chunk)] = \
                            self._backward_stage_duration(stage, chunk)
            if self.phase is None:
                layer_dur = self._backward_layer_duration()
                for stage in range(plan.pipeline):
                    for chunk in range(self.v):
                        for seg_index, (bucket, width) in enumerate(
                                self._bucket_segments(chunk)):
                            duration = width * layer_dur
                            if (seg_index == 0 and stage == plan.pipeline - 1
                                    and chunk == self.v - 1):
                                duration += self.lookup.duration_of(
                                    self.op_bwd_head)
                            if bucket == 0 and stage == 0 and chunk == 0:
                                duration += self.lookup.duration_of(
                                    self.op_bwd_embed)
                            timings[self._slot("sbl", stage, chunk,
                                               bucket)] = duration
        self.timings = timings

    def _slot(self, tag: str, stage: int, chunk: int,
              bucket: int | None = None) -> str:
        """Stage-granularity slot key; ``v == 1`` keys omit the chunk so
        pre-interleaving structures and caches keep their exact keys."""
        parts = [tag, str(stage)]
        if self.v > 1:
            parts.append(str(chunk))
        if bucket is not None:
            parts.append(str(bucket))
        return ":".join(parts)

    def _bucket_segments(self, chunk: int) -> list[tuple[int, int]]:
        """``(bucket, layer-count)`` segments of one chunk's final
        backward, deepest layers first (the order backward visits them).

        Gradient buckets partition a stage's *local* layer range; under
        virtual pipelining a bucket can span chunk boundaries, so each
        chunk's last-micro-batch backward is split at the bucket
        intersections that fall inside its layer slice. With ``v == 1``
        the single chunk yields every bucket at full width — the
        pre-interleaving layout.
        """
        lo, hi = chunk * self.lpc, (chunk + 1) * self.lpc
        segments: list[tuple[int, int]] = []
        for bucket in reversed(range(len(self.bucket_layers))):
            width = sum(1 for layer in self.bucket_layers[bucket]
                        if lo <= layer < hi)
            if width:
                segments.append((bucket, width))
        return segments

    # ------------------------------------------------------------------
    # Structure fingerprint and metadata
    # ------------------------------------------------------------------
    @property
    def structure_key(self) -> str:
        """This builder's :func:`structure_fingerprint` (see there for
        exactly what the fingerprint covers and excludes)."""
        return structure_fingerprint(self.model, self.plan, self.training,
                                     self.granularity,
                                     workload=self.workload,
                                     phase=self.phase)

    def graph_metadata(self) -> dict:
        """The metadata dict a freshly built graph would carry."""
        metadata = {
            "plan": self.plan,
            "model": self.model.name or self.model.describe(),
            "granularity": self.granularity.value,
            "num_micro_batches": self.nmb,
            "layers_per_stage": self.lps,
            "schedule": self.plan.schedule.value,
            "virtual_stages": self.v,
        }
        if self.phase is not None:
            metadata["workload"] = "inference"
            metadata["phase"] = self.phase
        return metadata

    def slot_kernel_counts(self) -> dict[str, int]:
        """Kernel count behind each timing slot, for *this* builder's
        operators (launch-overhead accounting in the testbed emulator).

        Slots absent from the map (comm tasks, per-kernel tasks,
        stage-granularity chunks) execute one kernel launch. Keyed by
        slot so consumers resolve counts against the plan actually being
        measured — never against the representative payloads a cached
        structure captured from a different build.
        """
        counts: dict[str, int] = {}
        if self.granularity is Granularity.OPERATOR:
            for op in self._comp_ops:
                counts[f"op:{op.kind.value}"] = len(self.lookup.tasks_for(op))
        for stage, wu_op in self._wu_ops.items():
            counts[f"wu:{stage}"] = len(self.lookup.tasks_for(wu_op))
        return counts

    def fill_durations(self, structure: GraphStructure) -> np.ndarray:
        """Duration vector for ``structure`` under this builder's timings.

        The retime-without-rebuild fast path: broadcast this builder's
        timing table through the structure's per-task slot indices. The
        structure must have been compiled from a builder with an equal
        :attr:`structure_key` (a missing slot raises SimulationError —
        callers fall back to a full rebuild).
        """
        return structure.retime(self.timings)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def build(self) -> ExecutionGraph:
        """Assemble and return the iteration's execution graph."""
        asm = GraphAssembler()
        self._emit(asm)
        graph = asm.finish(num_devices=self.plan.pipeline,
                           metadata=self.graph_metadata())
        return graph

    def compile(self) -> GraphStructure:
        """Assemble the iteration directly into its compiled replay
        structure (no :class:`TaskNode` graph is materialized).

        The compiled structure carries timing-slot keys, so it can later
        be re-timed by any builder with the same :attr:`structure_key`.
        """
        asm = FlatAssembler()
        self._emit(asm)
        return asm.compile(num_devices=self.plan.pipeline,
                           metadata=self.graph_metadata())

    def _emit(self, asm: _AssemblerBase) -> None:
        if self.phase is not None:
            self._emit_inference(asm)
            return
        p = self.plan.pipeline
        orders = [schedule_order(self.plan.schedule, st, p, self.nmb,
                                 virtual_stages=self.v)
                  for st in range(p)]
        last_b = last_backward_micro_batch(self.plan.schedule, self.nmb)

        # Task-id maps keyed by (stage, chunk, micro_batch); chunk is
        # always 0 outside the interleaved schedule.
        f_entry: dict[tuple[int, int, int], int] = {}
        f_exit: dict[tuple[int, int, int], int] = {}
        b_entry: dict[tuple[int, int, int], int] = {}
        b_exit: dict[tuple[int, int, int], int] = {}
        # Per-stage gradient-readiness anchors: bucket index -> task id.
        bucket_anchor: dict[tuple[int, int], int] = {}

        for stage in range(p):
            # Weight-gradient tails of the *last* micro-batch's backward,
            # keyed by stage-local layer, accumulated across this stage's
            # chunks (all of one stage's layers live in one dict because
            # gradient buckets partition the stage, not the chunk).
            layer_tails: dict[int, int] = {}
            for unit in orders[stage]:
                key = (stage, unit.chunk, unit.micro_batch)
                if unit.phase == FORWARD:
                    entry, exit_ = self._emit_forward_chunk(asm, stage, unit)
                    f_entry[key] = entry
                    f_exit[key] = exit_
                else:
                    entry, exit_ = self._emit_backward_chunk(
                        asm, stage, unit, last_b=last_b,
                        layer_tails=layer_tails, bucket_anchor=bucket_anchor)
                    b_entry[key] = entry
                    b_exit[key] = exit_

        self._emit_pipeline_comm(asm, f_exit, f_entry, b_exit, b_entry)
        self._emit_gradient_sync(asm, b_exit, bucket_anchor, last_b)

    def _emit_inference(self, asm: _AssemblerBase) -> None:
        """One inference phase: the pipelined forward pass, nothing else.

        Each stage issues its micro-batches' forward chunks in ascending
        order — the forward sub-order of both GPipe and 1F1B — through
        the same :meth:`_emit_forward_chunk` the training path uses, so
        a prefill graph is exactly the forward-only subgraph of the
        matching training graph (same labels, durations, and issue
        order; compute tasks are tagged with the phase kind instead of
        ``compute``). Only the forward half of the pipeline P2P pass is
        emitted; no backward, gradient-sync, or weight-update tasks
        exist.
        """
        p = self.plan.pipeline
        f_entry: dict[tuple[int, int, int], int] = {}
        f_exit: dict[tuple[int, int, int], int] = {}
        for stage in range(p):
            for mb in range(self.nmb):
                unit = ScheduledChunk(FORWARD, mb)
                entry, exit_ = self._emit_forward_chunk(asm, stage, unit)
                f_entry[(stage, 0, mb)] = entry
                f_exit[(stage, 0, mb)] = exit_
        for boundary in range(p - 1):
            for mb in range(self.nmb):
                send = asm.add(boundary, COMM_STREAM,
                               self.send_time[boundary], KIND_PP_COMM,
                               f"s{boundary}->s{boundary + 1}/F{mb}",
                               deps=(f_exit[(boundary, 0, mb)],),
                               chain=False, slot=f"pp:{boundary}")
                asm.link(send, f_entry[(boundary + 1, 0, mb)])

    # ------------------------------------------------------------------
    # Chunk emission
    # ------------------------------------------------------------------
    def _emit_comp(self, asm: GraphAssembler, stage: int, op: CompOperator,
                   label: str, kind: str | None = None,
                   deps: tuple[int, ...] = ()) -> tuple[int, int]:
        """Emit one computation operator; returns (entry, exit) task ids."""
        if kind is None:
            kind = self._compute_kind
        op_key = op.kind.value
        if self.granularity is Granularity.KERNEL:
            first = None
            last = None
            for index, kernel in enumerate(self.lookup.tasks_for(op)):
                node = asm.add(stage, COMPUTE_STREAM, kernel.duration, kind,
                               f"{label}/{kernel.name}",
                               deps=deps if index == 0 else (),
                               payload=kernel, slot=f"k:{op_key}:{index}")
                first = node if first is None else first
                last = node
            if first is None:  # pragma: no cover - decompositions are non-empty
                raise ConfigError(f"operator {op.kind} produced no kernels")
            return first, last
        node = asm.add(stage, COMPUTE_STREAM, self.timings[f"op:{op_key}"],
                       kind, label, deps=deps, payload=op,
                       slot=f"op:{op_key}")
        return node, node

    def _emit_tp_allreduce(self, asm: GraphAssembler, stage: int,
                           label: str) -> int | None:
        """Inline tensor-parallel All-Reduce (sequential dependency)."""
        if self.tp_ar is None:
            return None
        return asm.add(stage, COMPUTE_STREAM, self.tp_ar_time, KIND_TP_COMM,
                       label, payload=self.tp_ar, slot="tp_ar")

    def _chunk_prefix(self, stage: int, chunk: int, phase: str,
                      mb: int) -> str:
        """Label prefix of one scheduled unit; ``v == 1`` labels carry no
        chunk component, matching the pre-interleaving graphs exactly."""
        if self.v == 1:
            return f"s{stage}/{phase}{mb}"
        return f"s{stage}/c{chunk}/{phase}{mb}"

    def _emit_forward_chunk(self, asm: GraphAssembler, stage: int,
                            unit: ScheduledChunk) -> tuple[int, int]:
        """Forward pass of one micro-batch chunk on one stage."""
        mb, chunk = unit.micro_batch, unit.chunk
        prefix = self._chunk_prefix(stage, chunk, "F", mb)
        if self.granularity is Granularity.STAGE:
            slot = self._slot("sf", stage, chunk)
            node = asm.add(stage, COMPUTE_STREAM, self.timings[slot],
                           self._compute_kind, prefix, slot=slot)
            return node, node
        p = self.plan.pipeline
        entry = None
        last = None
        if stage == 0 and chunk == 0:
            entry, last = self._emit_comp(asm, stage, self.op_fwd_embed,
                                          f"{prefix}/embed")
            ar = self._emit_tp_allreduce(asm, stage, f"{prefix}/embed_ar")
            last = ar if ar is not None else last
        for local in range(self.lpc):
            layer = chunk * self.lpc + local
            first, tail = self._emit_comp(asm, stage, self.op_fwd_mha,
                                          f"{prefix}/l{layer}/mha")
            entry = first if entry is None else entry
            ar = self._emit_tp_allreduce(asm, stage,
                                         f"{prefix}/l{layer}/mha_ar")
            _, tail = self._emit_comp(asm, stage, self.op_fwd_ffn,
                                      f"{prefix}/l{layer}/ffn")
            ar = self._emit_tp_allreduce(asm, stage,
                                         f"{prefix}/l{layer}/ffn_ar")
            last = ar if ar is not None else tail
        if stage == p - 1 and chunk == self.v - 1:
            first, last = self._emit_comp(asm, stage, self.op_fwd_head,
                                          f"{prefix}/lm_head")
            entry = first if entry is None else entry
        return entry, last

    def _emit_backward_chunk(self, asm: GraphAssembler, stage: int,
                             unit: ScheduledChunk, *, last_b: int,
                             layer_tails: dict[int, int],
                             bucket_anchor: dict[tuple[int, int], int],
                             ) -> tuple[int, int]:
        """Backward pass of one micro-batch chunk on one stage.

        Chunks of the last-synchronising micro-batch record their
        per-layer weight-gradient tails into ``layer_tails``; the final
        such chunk in issue order (chunk 0 — backward walks chunks
        descending) turns the accumulated tails into gradient-bucket
        anchors.
        """
        mb, chunk = unit.micro_batch, unit.chunk
        if self.granularity is Granularity.STAGE:
            return self._emit_backward_stage(asm, stage, unit, last_b,
                                             bucket_anchor)
        p = self.plan.pipeline
        prefix = self._chunk_prefix(stage, chunk, "B", mb)
        entry = None
        last = None
        if stage == p - 1 and chunk == self.v - 1:
            entry, last = self._emit_comp(asm, stage, self.op_bwd_head,
                                          f"{prefix}/lm_head")
        layer_tail: dict[int, int] = {}
        for local in reversed(range(self.lpc)):
            layer = chunk * self.lpc + local
            first, tail = self._emit_comp(asm, stage, self.op_bwd_ffn,
                                          f"{prefix}/l{layer}/ffn")
            entry = first if entry is None else entry
            self._emit_tp_allreduce(asm, stage,
                                    f"{prefix}/l{layer}/ffn_ar")
            _, tail = self._emit_comp(asm, stage, self.op_bwd_mha,
                                      f"{prefix}/l{layer}/mha")
            layer_tail[layer] = tail
            ar = self._emit_tp_allreduce(asm, stage,
                                         f"{prefix}/l{layer}/mha_ar")
            last = ar if ar is not None else tail
        if stage == 0 and chunk == 0:
            first, last = self._emit_comp(asm, stage, self.op_bwd_embed,
                                          f"{prefix}/embed")
            entry = first if entry is None else entry
            layer_tail[-1] = last  # embedding grads complete last
        if mb == last_b:
            layer_tails.update(layer_tail)
            if chunk == 0:
                self._record_bucket_anchors(stage, layer_tails, bucket_anchor)
        return entry, last

    def _record_bucket_anchors(self, stage: int, layer_tail: dict[int, int],
                               bucket_anchor: dict[tuple[int, int], int],
                               ) -> None:
        """Map each gradient bucket to the task completing its gradients.

        Backward visits layers deepest-first, so a bucket's gradients are
        ready when its *shallowest* layer's weight-gradient task retires
        (the embedding, on stage 0, retires after layer 0).
        """
        for bucket, layers in enumerate(self.bucket_layers):
            shallowest = min(layers)
            if stage == 0 and shallowest == 0 and -1 in layer_tail:
                anchor = layer_tail[-1]
            else:
                anchor = layer_tail[shallowest]
            bucket_anchor[(stage, bucket)] = anchor

    # ------------------------------------------------------------------
    # Stage-granularity chunk durations
    # ------------------------------------------------------------------
    def _forward_stage_duration(self, stage: int, chunk: int = 0) -> float:
        """Forward latency of one stage chunk (compute + TP AR)."""
        dur = self.lpc * (self.lookup.duration_of(self.op_fwd_mha)
                          + self.lookup.duration_of(self.op_fwd_ffn)
                          + 2 * self.tp_ar_time)
        if stage == 0 and chunk == 0:
            dur += self.lookup.duration_of(self.op_fwd_embed) + self.tp_ar_time
        if stage == self.plan.pipeline - 1 and chunk == self.v - 1:
            dur += self.lookup.duration_of(self.op_fwd_head)
        return dur

    def _backward_layer_duration(self) -> float:
        """Backward latency of one decoder layer (compute + TP AR)."""
        return (self.lookup.duration_of(self.op_bwd_ffn)
                + self.lookup.duration_of(self.op_bwd_mha)
                + 2 * self.tp_ar_time)

    def _backward_stage_duration(self, stage: int, chunk: int = 0) -> float:
        """Backward latency of one stage chunk."""
        dur = self.lpc * self._backward_layer_duration()
        if stage == self.plan.pipeline - 1 and chunk == self.v - 1:
            dur += self.lookup.duration_of(self.op_bwd_head)
        if stage == 0 and chunk == 0:
            dur += self.lookup.duration_of(self.op_bwd_embed)
        return dur

    def _emit_backward_stage(self, asm: GraphAssembler, stage: int,
                             unit: ScheduledChunk, last_b: int,
                             bucket_anchor: dict[tuple[int, int], int],
                             ) -> tuple[int, int]:
        """Stage-granularity backward chunk.

        Ordinary chunks are one task. The last micro-batch's chunks are
        split at gradient-bucket boundaries (deepest layers first) so
        bucket All-Reduces can still overlap the remaining backward
        compute; a bucket anchors in the chunk holding its shallowest
        layer, because backward visits chunks in descending order and
        that chunk therefore retires the bucket's final gradients.
        """
        mb, chunk = unit.micro_batch, unit.chunk
        label = self._chunk_prefix(stage, chunk, "B", mb)
        if mb != last_b:
            slot = self._slot("sb", stage, chunk)
            node = asm.add(stage, COMPUTE_STREAM, self.timings[slot],
                           KIND_COMPUTE, label, slot=slot)
            return node, node
        entry = None
        last = None
        for bucket, _width in self._bucket_segments(chunk):
            slot = self._slot("sbl", stage, chunk, bucket)
            node = asm.add(stage, COMPUTE_STREAM, self.timings[slot],
                           KIND_COMPUTE, f"{label}/bucket{bucket}",
                           slot=slot)
            if min(self.bucket_layers[bucket]) // self.lpc == chunk:
                bucket_anchor[(stage, bucket)] = node
            entry = node if entry is None else entry
            last = node
        return entry, last

    # ------------------------------------------------------------------
    # Communication passes
    # ------------------------------------------------------------------
    def _emit_pipeline_comm(self, asm, f_exit, f_entry, b_exit, b_entry):
        """Insert Send-Receive tasks at every stage boundary (Figure 6).

        Interleaved plans carry every chunk across each boundary, plus
        the wrap-around hops: forward output of chunk ``c`` on the last
        stage feeds chunk ``c+1`` on stage 0, and chunk ``c+1``'s
        gradient on stage 0 feeds chunk ``c``'s backward on the last
        stage.
        """
        p, v = self.plan.pipeline, self.v
        for boundary in range(p - 1):
            for mb in range(self.nmb):
                for chunk in range(v):
                    mid = "" if v == 1 else f"/c{chunk}"
                    send = asm.add(boundary, COMM_STREAM,
                                   self.send_time[boundary], KIND_PP_COMM,
                                   f"s{boundary}->s{boundary + 1}{mid}/F{mb}",
                                   deps=(f_exit[(boundary, chunk, mb)],),
                                   chain=False, slot=f"pp:{boundary}")
                    asm.link(send, f_entry[(boundary + 1, chunk, mb)])
                    recv = asm.add(boundary + 1, COMM_STREAM,
                                   self.send_time[boundary], KIND_PP_COMM,
                                   f"s{boundary + 1}->s{boundary}{mid}/B{mb}",
                                   deps=(b_exit[(boundary + 1, chunk, mb)],),
                                   chain=False, slot=f"pp:{boundary}")
                    asm.link(recv, b_entry[(boundary, chunk, mb)])
        for chunk in range(v - 1):
            for mb in range(self.nmb):
                send = asm.add(p - 1, COMM_STREAM, self.wrap_time,
                               KIND_PP_COMM,
                               f"s{p - 1}/c{chunk}->s0/c{chunk + 1}/F{mb}",
                               deps=(f_exit[(p - 1, chunk, mb)],),
                               chain=False, slot="pp:wrap")
                asm.link(send, f_entry[(0, chunk + 1, mb)])
                recv = asm.add(0, COMM_STREAM, self.wrap_time,
                               KIND_PP_COMM,
                               f"s0/c{chunk + 1}->s{p - 1}/c{chunk}/B{mb}",
                               deps=(b_exit[(0, chunk + 1, mb)],),
                               chain=False, slot="pp:wrap")
                asm.link(recv, b_entry[(p - 1, chunk, mb)])

    def _emit_gradient_sync(self, asm, b_exit, bucket_anchor,
                            last_b) -> None:
        """Insert DP gradient All-Reduces (Figure 5) and weight updates."""
        plan = self.plan
        d = plan.data
        num_buckets = len(self.bucket_layers)
        for stage in range(plan.pipeline):
            wu_deps: list[int] = []
            if d > 1:
                last_ar = None
                for bucket in reversed(range(num_buckets)):
                    comm = self._dp_comms[(stage, bucket)]
                    anchor = bucket_anchor[(stage, bucket)]
                    last_ar = asm.add(stage, COMM_STREAM,
                                      self.timings[f"dp:{stage}:{bucket}"],
                                      KIND_DP_COMM,
                                      f"s{stage}/dp_ar/bucket{bucket}",
                                      deps=(anchor,), payload=comm,
                                      slot=f"dp:{stage}:{bucket}")
                wu_deps.append(last_ar)
            wu_op = self._wu_ops[stage]
            # Chunk 0's backward is the final backward in every
            # schedule's issue order (backward walks chunks descending).
            wu_deps.append(b_exit[(stage, 0, last_b)])
            asm.add(stage, COMPUTE_STREAM, self.timings[f"wu:{stage}"],
                    KIND_WEIGHT_UPDATE, f"s{stage}/weight_update",
                    deps=tuple(wu_deps), payload=wu_op,
                    slot=f"wu:{stage}")
