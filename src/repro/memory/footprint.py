"""Per-GPU memory-footprint model and feasibility filter.

The paper's design-space exploration (Section V-A) only considers plans
that actually fit on the GPUs ("making sure the overall memory usage fits
within the GPU memory" is one of the systems chores the serverless
studies automate). This module implements the standard Megatron-style
accounting:

* **Model states** — FP16 weights (2 B) + FP16 gradients (2 B, the
  Megatron-DeepSpeed mixed-precision configuration MT-NLG trained with)
  + Adam optimizer states (FP32 master copy, momentum, variance: 12 B).
  With ZeRO-1 optimizer sharding (Megatron-DeepSpeed's default for
  MT-NLG-scale runs), the 12 B/param optimizer slab divides by the
  data-parallel degree.
* **Activations** — the Korthikanti et al. per-layer formulas:
  no recompute stores ``s*b*h*(10 + 24/t + 5*n*s/(h*t))`` bytes/layer,
  selective recompute drops the attention quadratic term
  (``s*b*h*(10 + 24/t)``), and full recompute keeps only the layer input
  (``2*s*b*h``). In-flight micro-batches per stage follow the schedule:
  all of them under GPipe, at most the remaining pipeline depth under
  1F1B (Section II-B).

Stage 0 is the peak: it holds the embedding table and the deepest
in-flight window, so feasibility is evaluated there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig,
                                      layers_per_stage, num_micro_batches)
from repro.config.system import SystemConfig
from repro.errors import InfeasibleConfigError
from repro.graph.pipeline import max_in_flight_micro_batches

FP16_BYTES = 2.0
GRAD_BYTES = 2.0       # FP16 gradient buffer (Megatron-DeepSpeed default)
OPTIMIZER_BYTES = 12.0  # FP32 master weights + Adam momentum + variance

#: Fraction of HBM usable by the framework (CUDA context, NCCL buffers,
#: workspace, fragmentation).
USABLE_MEMORY_FRACTION = 0.96


@dataclass(frozen=True)
class MemoryFootprint:
    """Peak per-GPU memory demand, broken down by category (bytes)."""

    weights: float
    gradients: float
    optimizer_states: float
    activations: float

    @property
    def model_states(self) -> float:
        """Weights + gradients + optimizer states."""
        return self.weights + self.gradients + self.optimizer_states

    @property
    def total(self) -> float:
        """Total peak bytes per GPU."""
        return self.model_states + self.activations

    @property
    def total_gib(self) -> float:
        """Total in GiB (for reporting)."""
        return self.total / float(1 << 30)


def activation_bytes_per_layer(model: ModelConfig,
                               plan: ParallelismConfig) -> float:
    """Stored activation bytes of one decoder layer, one micro-batch.

    Follows Korthikanti et al.: without sequence parallelism the
    LayerNorm/dropout regions replicate across tensor ranks (the ``10``
    bytes/token term); with it every per-layer term divides by ``t``.
    """
    s = model.seq_length
    b = plan.micro_batch_size
    h = model.hidden_size
    n = model.num_heads
    t = plan.tensor
    if plan.recompute is RecomputeMode.FULL:
        stored_input = 2.0 * s * b * h
        if plan.sequence_parallel:
            stored_input /= t
        return stored_input
    if plan.sequence_parallel:
        per_token = 34.0 / t
    else:
        per_token = 10.0 + 24.0 / t
    if plan.recompute is RecomputeMode.NONE:
        per_token += 5.0 * n * s / (h * t)
    return s * b * h * per_token


def stage_zero_params(model: ModelConfig, plan: ParallelismConfig) -> int:
    """Per-GPU parameter count on pipeline stage 0 (the peak stage)."""
    per_layer = model.params_per_layer() // plan.tensor
    embed = model.embedding_params() // plan.tensor
    return layers_per_stage(model, plan) * per_layer + embed


def memory_footprint(model: ModelConfig, plan: ParallelismConfig,
                     training: TrainingConfig, *,
                     zero1_sharding: bool = True,
                     zero_stage: int | None = None) -> MemoryFootprint:
    """Peak per-GPU footprint of a plan (evaluated at stage 0).

    Args:
        zero1_sharding: Legacy switch: True means ZeRO stage 1.
        zero_stage: Explicit ZeRO stage, overriding ``zero1_sharding``:
            0 = no sharding; 1 = optimizer states sharded across the
            data-parallel group (Megatron-DeepSpeed's default); 2 = plus
            gradient sharding; 3 = plus parameter sharding. Stages 2/3
            model the *memory* effect only — the extra All-Gather /
            Reduce-Scatter traffic of ZeRO-3 would also need graph-level
            operators (the :class:`~repro.profiling.nccl.NcclModel`
            exposes ``allgather_time`` / ``reduce_scatter_time`` for
            that extension).
    """
    if zero_stage is None:
        zero_stage = 1 if zero1_sharding else 0
    if not 0 <= zero_stage <= 3:
        raise InfeasibleConfigError(f"unknown ZeRO stage {zero_stage}")
    params = stage_zero_params(model, plan)
    weights = FP16_BYTES * params
    gradients = GRAD_BYTES * params
    optimizer = OPTIMIZER_BYTES * params
    if zero_stage >= 1:
        optimizer /= plan.data
    if zero_stage >= 2:
        gradients /= plan.data
    if zero_stage >= 3:
        weights /= plan.data
    nmb = num_micro_batches(plan, training)
    in_flight = max_in_flight_micro_batches(plan.schedule, 0, plan.pipeline,
                                            nmb)
    per_layer = activation_bytes_per_layer(model, plan)
    activations = (layers_per_stage(model, plan) * in_flight * per_layer)
    # Embedding output of in-flight micro-batches (stage 0 only).
    activations += (in_flight * FP16_BYTES * plan.micro_batch_size
                    * model.seq_length * model.hidden_size)
    return MemoryFootprint(weights=weights,
                           gradients=gradients,
                           optimizer_states=optimizer,
                           activations=activations)


def fits_in_memory(model: ModelConfig, plan: ParallelismConfig,
                   training: TrainingConfig, system: SystemConfig, *,
                   zero1_sharding: bool = True) -> bool:
    """Whether the plan's peak footprint fits the GPU's usable HBM."""
    footprint = memory_footprint(model, plan, training,
                                 zero1_sharding=zero1_sharding)
    return footprint.total <= system.gpu.memory_bytes * USABLE_MEMORY_FRACTION


def check_memory(model: ModelConfig, plan: ParallelismConfig,
                 training: TrainingConfig, system: SystemConfig, *,
                 zero1_sharding: bool = True) -> MemoryFootprint:
    """Footprint if feasible, else :class:`InfeasibleConfigError`."""
    footprint = memory_footprint(model, plan, training,
                                 zero1_sharding=zero1_sharding)
    budget = system.gpu.memory_bytes * USABLE_MEMORY_FRACTION
    if footprint.total > budget:
        raise InfeasibleConfigError(
            f"plan {plan.way} m={plan.micro_batch_size} needs "
            f"{footprint.total_gib:.1f} GiB/GPU, budget is "
            f"{budget / float(1 << 30):.1f} GiB ({system.gpu.name})")
    return footprint


def suggest_schedule_for_memory(model: ModelConfig, plan: ParallelismConfig,
                                training: TrainingConfig,
                                system: SystemConfig) -> PipelineSchedule:
    """Pick 1F1B when GPipe's full-batch activation residency would not
    fit — the PipeDream motivation retold as a helper."""
    gpipe = plan.replaced(schedule=PipelineSchedule.GPIPE)
    if fits_in_memory(model, gpipe, training, system):
        return PipelineSchedule.GPIPE
    return PipelineSchedule.ONE_F_ONE_B
