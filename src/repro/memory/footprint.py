"""Per-GPU memory-footprint model and feasibility filter.

The paper's design-space exploration (Section V-A) only considers plans
that actually fit on the GPUs ("making sure the overall memory usage fits
within the GPU memory" is one of the systems chores the serverless
studies automate). This module implements the standard Megatron-style
accounting:

* **Model states** — FP16 weights (2 B) + FP16 gradients (2 B, the
  Megatron-DeepSpeed mixed-precision configuration MT-NLG trained with)
  + Adam optimizer states (FP32 master copy, momentum, variance: 12 B).
  ZeRO sharding divides slabs by the data-parallel degree: stage 1
  shards the optimizer states (Megatron-DeepSpeed's default for
  MT-NLG-scale runs), stage 2 adds gradients, stage 3 adds weights.
* **Activations** — the Korthikanti et al. per-layer formulas:
  no recompute stores ``s*b*h*(10 + 24/t + 5*n*s/(h*t))`` bytes/layer,
  selective recompute drops the attention quadratic term
  (``s*b*h*(10 + 24/t)``), and full recompute keeps only the layer input
  (``2*s*b*h``). In-flight windows per stage follow the schedule: every
  micro-batch under GPipe, at most the remaining pipeline depth under
  1F1B (Section II-B), and under the interleaved schedule
  ``2*(p - stage - 1) + (v - 1)*p + 1`` windows of ``1/v`` the layers
  each — the activation cost of the smaller bubble.

Peak feasibility is evaluated at the boundary stages: stage 0 holds the
embedding table plus the deepest in-flight window *and* the live
embedding outputs, while the last stage holds the final LayerNorm and —
when the pipeline is deeper than one stage — the untied output-embedding
(LM-head) copy Megatron materialises there. The reported footprint is
the larger of the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig,
                                      layers_per_stage, num_micro_batches)
from repro.config.system import SystemConfig
from repro.errors import InfeasibleConfigError
from repro.graph.pipeline import max_in_flight_micro_batches

FP16_BYTES = 2.0
GRAD_BYTES = 2.0       # FP16 gradient buffer (Megatron-DeepSpeed default)
OPTIMIZER_BYTES = 12.0  # FP32 master weights + Adam momentum + variance

#: Fraction of HBM usable by the framework (CUDA context, NCCL buffers,
#: workspace, fragmentation).
USABLE_MEMORY_FRACTION = 0.96


@dataclass(frozen=True)
class MemoryFootprint:
    """Peak per-GPU memory demand, broken down by category (bytes).

    Training footprints populate gradients/optimizer states and leave
    ``kv_cache`` at zero; inference footprints do the reverse — the
    KV cache replaces the gradient and optimizer terms as the dominant
    non-weight resident (see :func:`inference_memory_footprint`).
    """

    weights: float
    gradients: float
    optimizer_states: float
    activations: float
    kv_cache: float = 0.0

    @property
    def model_states(self) -> float:
        """Weights + gradients + optimizer states."""
        return self.weights + self.gradients + self.optimizer_states

    @property
    def total(self) -> float:
        """Total peak bytes per GPU."""
        return self.model_states + self.activations + self.kv_cache

    @property
    def total_gib(self) -> float:
        """Total in GiB (for reporting)."""
        return self.total / float(1 << 30)


def activation_bytes_per_layer(model: ModelConfig,
                               plan: ParallelismConfig) -> float:
    """Stored activation bytes of one decoder layer, one micro-batch.

    Follows Korthikanti et al.: without sequence parallelism the
    LayerNorm/dropout regions replicate across tensor ranks (the ``10``
    bytes/token term); with it every per-layer term divides by ``t``.
    """
    s = model.seq_length
    b = plan.micro_batch_size
    h = model.hidden_size
    n = model.num_heads
    t = plan.tensor
    if plan.recompute is RecomputeMode.FULL:
        stored_input = 2.0 * s * b * h
        if plan.sequence_parallel:
            stored_input /= t
        return stored_input
    if plan.sequence_parallel:
        per_token = 34.0 / t
    else:
        per_token = 10.0 + 24.0 / t
    if plan.recompute is RecomputeMode.NONE:
        per_token += 5.0 * n * s / (h * t)
    return s * b * h * per_token


def stage_zero_params(model: ModelConfig, plan: ParallelismConfig) -> int:
    """Per-GPU parameter count on pipeline stage 0 (layers + embedding)."""
    per_layer = model.params_per_layer() // plan.tensor
    embed = model.embedding_params() // plan.tensor
    return layers_per_stage(model, plan) * per_layer + embed


def last_stage_params(model: ModelConfig, plan: ParallelismConfig) -> int:
    """Per-GPU parameter count on the last pipeline stage.

    Beyond its layer slice the last stage holds the final LayerNorm and,
    when the pipeline is deeper than one stage, the untied
    output-embedding (LM-head) copy that Megatron materialises on the
    last rank (with ``p == 1`` the head is tied to the input embedding,
    so nothing is duplicated).
    """
    per_layer = model.params_per_layer() // plan.tensor
    params = layers_per_stage(model, plan) * per_layer
    params += 2 * model.hidden_size  # final LayerNorm
    if plan.pipeline > 1:
        params += model.embedding_params() // plan.tensor
    return params


def _resolve_zero_stage(zero1_sharding: bool, zero_stage: int | None) -> int:
    if zero_stage is None:
        zero_stage = 1 if zero1_sharding else 0
    if not 0 <= zero_stage <= 3:
        raise InfeasibleConfigError(f"unknown ZeRO stage {zero_stage}")
    return zero_stage


def _stage_footprint(model: ModelConfig, plan: ParallelismConfig,
                     training: TrainingConfig, stage: int,
                     zero_stage: int) -> MemoryFootprint:
    """Footprint of one boundary stage (0 or the last)."""
    if stage == 0:
        params = stage_zero_params(model, plan)
    else:
        params = last_stage_params(model, plan)
    weights = FP16_BYTES * params
    gradients = GRAD_BYTES * params
    optimizer = OPTIMIZER_BYTES * params
    if zero_stage >= 1:
        optimizer /= plan.data
    if zero_stage >= 2:
        gradients /= plan.data
    if zero_stage >= 3:
        weights /= plan.data
    nmb = num_micro_batches(plan, training)
    v = plan.virtual_stages
    # In-flight windows are schedule units: whole micro-batches for
    # GPipe/1F1B, model chunks of lps/v layers under interleaving.
    in_flight = max_in_flight_micro_batches(plan.schedule, stage,
                                            plan.pipeline, nmb,
                                            virtual_stages=v)
    per_layer = activation_bytes_per_layer(model, plan)
    layers_per_window = layers_per_stage(model, plan) // v
    activations = layers_per_window * in_flight * per_layer
    if stage == 0:
        # Embedding output of in-flight micro-batches (stage 0 only);
        # with sequence parallelism the stage-0 embedding output is
        # already scattered ``s/t`` before the first layer consumes it.
        embed_out = (FP16_BYTES * plan.micro_batch_size
                     * model.seq_length * model.hidden_size)
        if plan.sequence_parallel:
            embed_out /= plan.tensor
        # Express the window count in micro-batch equivalents (one
        # embedding output per micro-batch, not per chunk).
        activations += -(-in_flight // v) * embed_out
    return MemoryFootprint(weights=weights,
                           gradients=gradients,
                           optimizer_states=optimizer,
                           activations=activations)


def memory_footprint(model: ModelConfig, plan: ParallelismConfig,
                     training: TrainingConfig, *,
                     zero1_sharding: bool = True,
                     zero_stage: int | None = None) -> MemoryFootprint:
    """Peak per-GPU footprint of a plan.

    Evaluated at both boundary stages — stage 0 (embedding + deepest
    in-flight window) and the last stage (final LayerNorm + untied
    LM-head copy) — returning whichever peaks higher, so LM-head-heavy
    configurations are not under-checked.

    Args:
        zero1_sharding: Legacy switch: True means ZeRO stage 1. Ignored
            when ``zero_stage`` is given.
        zero_stage: Explicit ZeRO stage: 0 = no sharding; 1 = optimizer
            states sharded across the data-parallel group
            (Megatron-DeepSpeed's default); 2 = plus gradient sharding;
            3 = plus parameter sharding. Stages 2/3 model the *memory*
            effect only — the extra All-Gather / Reduce-Scatter traffic
            of ZeRO-3 would also need graph-level operators (the
            :class:`~repro.profiling.nccl.NcclModel` exposes
            ``allgather_time`` / ``reduce_scatter_time`` for that
            extension).
    """
    resolved = _resolve_zero_stage(zero1_sharding, zero_stage)
    first = _stage_footprint(model, plan, training, 0, resolved)
    if plan.pipeline == 1:
        return first
    last = _stage_footprint(model, plan, training, plan.pipeline - 1,
                            resolved)
    return last if last.total > first.total else first


def fits_in_memory(model: ModelConfig, plan: ParallelismConfig,
                   training: TrainingConfig, system: SystemConfig, *,
                   zero1_sharding: bool = True,
                   zero_stage: int | None = None) -> bool:
    """Whether the plan's peak footprint fits the GPU's usable HBM."""
    footprint = memory_footprint(model, plan, training,
                                 zero1_sharding=zero1_sharding,
                                 zero_stage=zero_stage)
    return footprint.total <= system.gpu.memory_bytes * USABLE_MEMORY_FRACTION


def check_memory(model: ModelConfig, plan: ParallelismConfig,
                 training: TrainingConfig, system: SystemConfig, *,
                 zero1_sharding: bool = True,
                 zero_stage: int | None = None) -> MemoryFootprint:
    """Footprint if feasible, else :class:`InfeasibleConfigError`."""
    footprint = memory_footprint(model, plan, training,
                                 zero1_sharding=zero1_sharding,
                                 zero_stage=zero_stage)
    budget = system.gpu.memory_bytes * USABLE_MEMORY_FRACTION
    if footprint.total > budget:
        raise InfeasibleConfigError(
            f"plan {plan.way} m={plan.micro_batch_size} needs "
            f"{footprint.total_gib:.1f} GiB/GPU, budget is "
            f"{budget / float(1 << 30):.1f} GiB ({system.gpu.name})")
    return footprint


def inference_memory_footprint(model: ModelConfig, plan: ParallelismConfig,
                               workload) -> MemoryFootprint:
    """Peak per-GPU footprint of serving one inference batch.

    Inference holds no gradients or optimizer states; the KV cache
    replaces them as the dominant non-weight resident:

    ``kv = 2 * (L/p) * (prompt + gen) * batch * (h/t) * FP16_BYTES``

    — the factor 2 covers keys and values, each pipeline stage caches
    only its ``L/p`` layers, attention heads (and with them the ``h``
    dimension) shard across the ``t`` tensor ranks, and the cache must
    be provisioned for the *end-of-generation* sequence length. The
    activation term is the transient forward working set: one
    full-prompt hidden-state buffer per in-flight micro-batch.

    Args:
        workload: An :class:`~repro.workload.InferenceWorkload`
            (``batch_size`` is per replica; data parallelism replicates
            servers and does not shard the cache).
    """
    weights = FP16_BYTES * max(stage_zero_params(model, plan),
                               last_stage_params(model, plan))
    kv_cache = (2.0 * layers_per_stage(model, plan)
                * workload.max_kv_length * workload.batch_size
                * (model.hidden_size / plan.tensor) * FP16_BYTES)
    proxy = workload.training_proxy(plan.data)
    nmb = num_micro_batches(plan, proxy)
    in_flight = min(nmb, plan.pipeline)
    activations = (FP16_BYTES * plan.micro_batch_size * workload.prompt_len
                   * model.hidden_size * in_flight)
    return MemoryFootprint(weights=weights, gradients=0.0,
                           optimizer_states=0.0, activations=activations,
                           kv_cache=kv_cache)


def fits_inference_memory(model: ModelConfig, plan: ParallelismConfig,
                          workload, system: SystemConfig) -> bool:
    """Whether a serving plan's peak footprint fits usable HBM."""
    footprint = inference_memory_footprint(model, plan, workload)
    return footprint.total <= system.gpu.memory_bytes * USABLE_MEMORY_FRACTION


def check_inference_memory(model: ModelConfig, plan: ParallelismConfig,
                           workload,
                           system: SystemConfig) -> MemoryFootprint:
    """Footprint if feasible, else :class:`InfeasibleConfigError`."""
    footprint = inference_memory_footprint(model, plan, workload)
    budget = system.gpu.memory_bytes * USABLE_MEMORY_FRACTION
    if footprint.total > budget:
        raise InfeasibleConfigError(
            f"serving plan {plan.way} batch={workload.batch_size} "
            f"kv={workload.max_kv_length} needs "
            f"{footprint.total_gib:.1f} GiB/GPU, budget is "
            f"{budget / float(1 << 30):.1f} GiB ({system.gpu.name})")
    return footprint


def suggest_schedule_for_memory(model: ModelConfig, plan: ParallelismConfig,
                                training: TrainingConfig,
                                system: SystemConfig) -> PipelineSchedule:
    """Pick 1F1B when GPipe's full-batch activation residency would not
    fit — the PipeDream motivation retold as a helper.

    Interleaved plans (``virtual_stages > 1``) already require 1F1B —
    GPipe has no interleaved variant, so suggesting it would hand back
    a schedule the plan cannot adopt.
    """
    if plan.virtual_stages > 1:
        return PipelineSchedule.ONE_F_ONE_B
    gpipe = plan.replaced(schedule=PipelineSchedule.GPIPE)
    if fits_in_memory(model, gpipe, training, system):
        return PipelineSchedule.GPIPE
    return PipelineSchedule.ONE_F_ONE_B
