"""Per-GPU memory-footprint modelling."""

from repro.memory.footprint import (MemoryFootprint,
                                    activation_bytes_per_layer, check_memory,
                                    fits_in_memory, last_stage_params,
                                    memory_footprint, stage_zero_params,
                                    suggest_schedule_for_memory)

__all__ = [
    "MemoryFootprint",
    "activation_bytes_per_layer",
    "check_memory",
    "fits_in_memory",
    "last_stage_params",
    "memory_footprint",
    "stage_zero_params",
    "suggest_schedule_for_memory",
]
