"""repro — a reproduction of vTrain (MICRO 2024).

A profiling-driven simulation framework for evaluating cost-effective and
compute-optimal large language model training. See README.md for a tour
and DESIGN.md for the system inventory.

Quickstart::

    from repro import VTrain, ParallelismConfig, TrainingConfig, multi_node
    from repro.config.presets import MT_NLG_530B, MT_NLG_TRAINING

    system = multi_node(num_nodes=280)          # 2,240 A100 GPUs
    plan = ParallelismConfig(tensor=8, data=8, pipeline=35)
    vtrain = VTrain(system)
    estimate = vtrain.estimate_training(MT_NLG_530B, plan, MT_NLG_TRAINING)
    print(estimate.as_row())
"""

from repro.config import (InputDescription, ModelConfig, NetworkSpec,
                          ParallelismConfig, PipelineSchedule, RecomputeMode,
                          SystemConfig, TrainingConfig, multi_node,
                          single_node)
from repro.dse import DesignSpaceExplorer, SearchSpace
from repro.graph.builder import Granularity
from repro.network import TopologyAwareNcclModel, nccl_model_for
from repro.sim.estimator import VTrain
from repro.sim.results import (IterationPrediction, SimulationResult,
                               TrainingEstimate)
from repro.testbed import TestbedEmulator

__version__ = "1.0.0"

__all__ = [
    "DesignSpaceExplorer",
    "Granularity",
    "InputDescription",
    "IterationPrediction",
    "ModelConfig",
    "NetworkSpec",
    "ParallelismConfig",
    "PipelineSchedule",
    "RecomputeMode",
    "SearchSpace",
    "SimulationResult",
    "SystemConfig",
    "TestbedEmulator",
    "TopologyAwareNcclModel",
    "TrainingConfig",
    "TrainingEstimate",
    "VTrain",
    "multi_node",
    "nccl_model_for",
    "single_node",
    "__version__",
]
