"""Training-job descriptions for the multi-tenant cluster study.

A job is *serverless* (Section V-B): the submitter names the model it
wants trained, how many iterations it needs, and optionally a completion
deadline — all systems decisions (GPU count, parallelization plan) are
left to the cluster scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class JobSpec:
    """One submitted LLM training job.

    Attributes:
        job_id: Unique identifier within a trace.
        model_name: Key into the scheduler's throughput profiles (a
            Table III model).
        num_iterations: Training iterations the job must complete.
        arrival_time: Submission time (seconds since trace start).
        deadline: Absolute completion deadline, or None for best-effort.
        standalone_duration: The job's runtime at its reference
            allocation; deadlines were drawn as ``lambda * duration``
            relative to this (Section V-B).
    """

    job_id: int
    model_name: str
    num_iterations: int
    arrival_time: float
    deadline: float | None = None
    standalone_duration: float = 0.0

    def __post_init__(self) -> None:
        if self.num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        if self.arrival_time < 0:
            raise ConfigError("arrival_time must be non-negative")
        if self.deadline is not None and self.deadline <= self.arrival_time:
            raise ConfigError("deadline must be after arrival")


@dataclass(frozen=True)
class JobOutcome:
    """Final fate of one job after a cluster run.

    Attributes:
        spec: The submitted job.
        completion_time: When it finished, or None if terminated.
        terminated: True if the scheduler gave up on it (ElasticFlow
            terminates jobs that cannot meet their deadline).
        gpu_seconds: Total GPU-seconds consumed.
    """

    spec: JobSpec
    completion_time: float | None
    terminated: bool
    gpu_seconds: float

    @property
    def completed(self) -> bool:
        """Whether the job ran to completion."""
        return self.completion_time is not None

    @property
    def met_deadline(self) -> bool:
        """Whether the job finished within its deadline (False when it
        never completed; True for best-effort jobs that completed)."""
        if not self.completed:
            return False
        if self.spec.deadline is None:
            return True
        return self.completion_time <= self.spec.deadline + 1e-6

    @property
    def jct(self) -> float | None:
        """Job completion time: arrival to completion (None if killed)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.spec.arrival_time
