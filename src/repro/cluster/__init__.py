"""Multi-tenant GPU cluster scheduling (paper case study #2)."""

from repro.cluster.job import JobOutcome, JobSpec
from repro.cluster.metrics import (average_jct, completed_fraction,
                                   deadline_satisfactory_ratio, makespan)
from repro.cluster.scheduler import ElasticFlowScheduler, SchedulableJob
from repro.cluster.simulator import ClusterRunResult, ClusterSimulator
from repro.cluster.throughput import (DEFAULT_GPU_COUNTS, ThroughputProfile,
                                      clear_profile_cache,
                                      elasticflow_throughput_profile,
                                      vtrain_throughput_profile)
from repro.cluster.trace import makespan_trace, synthesize_trace

__all__ = [
    "ClusterRunResult",
    "ClusterSimulator",
    "DEFAULT_GPU_COUNTS",
    "ElasticFlowScheduler",
    "JobOutcome",
    "JobSpec",
    "SchedulableJob",
    "ThroughputProfile",
    "average_jct",
    "clear_profile_cache",
    "completed_fraction",
    "deadline_satisfactory_ratio",
    "elasticflow_throughput_profile",
    "makespan",
    "makespan_trace",
    "synthesize_trace",
    "vtrain_throughput_profile",
]
