"""Throughput profiles: iterations/second as a function of GPU count.

ElasticFlow's core mechanism is an offline-profiled throughput-scaling
curve per model, consulted for elastic allocation and deadline admission.
The *difference* between the baseline and the vTrain-enabled system
(Section V-B) is solely where that curve comes from:

* ``elasticflow_throughput_profile`` — ElasticFlow explores only data
  parallelism: the model is pinned to the minimum (t, p) able to hold
  it, and GPUs scale the data-parallel degree. This is the paper's
  faithful re-implementation of the baseline's restriction.
* ``vtrain_throughput_profile`` — vTrain's design-space search picks the
  best (t, d, p, m) plan at every GPU count, so the curve dominates the
  baseline's pointwise by construction.

Profiles are cached per (model, batch, flavor) because the cluster
benches replay many traces over the same three Table III models.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.presets import ClusterModelSpec
from repro.config.system import multi_node
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import SearchSpace
from repro.errors import ConfigError, InfeasibleConfigError
from repro.baselines.heuristic import minimal_model_parallel_footprint
from repro.graph.builder import Granularity

#: Allocation sizes the schedulers may hand out (powers of two, as in
#: ElasticFlow).
DEFAULT_GPU_COUNTS = (8, 16, 32, 64, 128, 256, 512, 1024)

#: Search space for the per-GPU-count vTrain optimisation: kept compact
#: because profiles are rebuilt for every model/batch combination.
PROFILE_SEARCH_SPACE = SearchSpace(max_tensor=8, max_data=128,
                                   max_pipeline=16,
                                   micro_batch_sizes=(1, 2, 4, 8))


@dataclass(frozen=True)
class ThroughputProfile:
    """Monotone map from GPU allocation to training rate.

    Attributes:
        model_name: The profiled model.
        table: Sorted (gpu_count, iterations_per_second) pairs; counts
            not in the table are not valid allocations.
    """

    model_name: str
    table: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.table:
            raise ConfigError(f"empty throughput profile for {self.model_name}")
        counts = [count for count, _ in self.table]
        if counts != sorted(set(counts)):
            raise ConfigError("profile GPU counts must be strictly increasing")

    @property
    def candidates(self) -> tuple[int, ...]:
        """Valid allocation sizes, ascending."""
        return tuple(count for count, _ in self.table)

    @property
    def min_gpus(self) -> int:
        """Smallest allocation able to run the model."""
        return self.table[0][0]

    @property
    def max_gpus(self) -> int:
        """Largest profiled allocation."""
        return self.table[-1][0]

    def rate(self, gpus: int) -> float:
        """Iterations/second at an allocation (0 for gpus below minimum).

        Non-candidate allocations floor to the largest candidate below —
        schedulers should allocate candidates exactly, but flooring keeps
        the simulator robust.
        """
        if gpus < self.min_gpus:
            return 0.0
        index = bisect_right(self.candidates, gpus) - 1
        return self.table[index][1]

    def next_step(self, gpus: int) -> int | None:
        """The next larger candidate allocation, or None at the top."""
        index = bisect_right(self.candidates, gpus)
        if index >= len(self.candidates):
            return None
        return self.candidates[index]

    def speedup(self, gpus: int) -> float:
        """Rate relative to the minimum allocation."""
        base = self.table[0][1]
        return self.rate(gpus) / base if base > 0 else 0.0


# ---------------------------------------------------------------------------
# Profile builders
# ---------------------------------------------------------------------------

_PROFILE_CACHE: dict[tuple, ThroughputProfile] = {}


def vtrain_throughput_profile(spec: ClusterModelSpec,
                              gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
                              *, granularity: Granularity = Granularity.STAGE,
                              ) -> ThroughputProfile:
    """Best-plan throughput at each GPU count (the vTrain-enabled curve)."""
    key = ("vtrain", spec.model.name, spec.global_batch_size, gpu_counts,
           granularity.value)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    training = TrainingConfig(global_batch_size=spec.global_batch_size)
    explorer = DesignSpaceExplorer(spec.model, training,
                                   granularity=granularity)
    rows: list[tuple[int, float]] = []
    for count in gpu_counts:
        result = explorer.explore(space=PROFILE_SEARCH_SPACE, num_gpus=count)
        if not result.num_feasible:
            continue
        best = result.best_by_iteration_time()
        rows.append((count, 1.0 / best.iteration_time))
    profile = ThroughputProfile(model_name=spec.model.name, table=tuple(rows))
    _PROFILE_CACHE[key] = profile
    return profile


def elasticflow_throughput_profile(
        spec: ClusterModelSpec,
        gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS, *,
        granularity: Granularity = Granularity.STAGE,
        micro_batch_size: int = 4) -> ThroughputProfile:
    """Data-parallel-only scaling over a fixed minimal (t, p) base."""
    key = ("elasticflow", spec.model.name, spec.global_batch_size, gpu_counts,
           granularity.value, micro_batch_size)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    training = TrainingConfig(global_batch_size=spec.global_batch_size)
    system = multi_node(max(gpu_counts) // 8)
    t, p = minimal_model_parallel_footprint(spec.model, training, system,
                                            micro_batch_size=1)
    explorer = DesignSpaceExplorer(spec.model, training,
                                   granularity=granularity)
    rows: list[tuple[int, float]] = []
    for count in gpu_counts:
        if count % (t * p):
            continue
        d = count // (t * p)
        if spec.global_batch_size % d:
            continue
        per_replica = spec.global_batch_size // d
        # ElasticFlow profiles the largest micro-batch that divides the
        # per-replica batch and fits memory (its only remaining knob).
        best_rate = None
        m = micro_batch_size
        while m >= 1:
            if per_replica % m == 0:
                plan = ParallelismConfig(tensor=t, data=d, pipeline=p,
                                         micro_batch_size=m)
                point = explorer.evaluate(plan)
                if point.feasible:
                    best_rate = 1.0 / point.iteration_time
                    break
            m //= 2
        if best_rate is not None:
            rows.append((count, best_rate))
    if not rows:
        raise InfeasibleConfigError(
            f"no feasible DP-only allocation for {spec.model.name}")
    profile = ThroughputProfile(model_name=spec.model.name, table=tuple(rows))
    _PROFILE_CACHE[key] = profile
    return profile


def clear_profile_cache() -> None:
    """Drop memoised profiles (tests use this for isolation)."""
    _PROFILE_CACHE.clear()
