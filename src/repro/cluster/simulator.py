"""Event-driven multi-tenant GPU cluster simulator (Section V-B).

Simulates "the entire lifetime of a training job, from its arrival to
its completion" on a shared cluster (the paper uses 128 nodes / 1,024
A100s). Events are job arrivals, projected completions, and deadline
expirations; between events every running job progresses at the rate its
current allocation sustains (from its throughput profile). At each event
the scheduler re-plans allocations — elastic scaling.

Deadline enforcement follows ElasticFlow: a job whose deadline passes
unfinished is terminated (which is why the paper evaluates JCT on
deadline-free traces separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.cluster.job import JobOutcome, JobSpec
from repro.cluster.scheduler import ElasticFlowScheduler, SchedulableJob
from repro.errors import SchedulingError

_EPSILON = 1e-9


@dataclass
class _RunningJob:
    spec: JobSpec
    remaining: float
    gpus: int = 0
    gpu_seconds: float = 0.0


@dataclass
class ClusterRunResult:
    """Outcome of one trace replay on one scheduler configuration."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    total_gpus: int = 0
    horizon: float = 0.0

    @property
    def num_jobs(self) -> int:
        """Jobs submitted in the trace."""
        return len(self.outcomes)

    def cluster_utilization(self) -> float:
        """Busy GPU-seconds over capacity x horizon."""
        if self.horizon <= 0 or self.total_gpus <= 0:
            return 0.0
        busy = sum(outcome.gpu_seconds for outcome in self.outcomes)
        return busy / (self.total_gpus * self.horizon)


class ClusterSimulator:
    """Replays a job trace against one scheduler."""

    def __init__(self, scheduler: ElasticFlowScheduler) -> None:
        self.scheduler = scheduler

    def run(self, jobs: list[JobSpec]) -> ClusterRunResult:
        """Simulate the full lifetime of every job in the trace."""
        event_counter = obs.metrics.counter("cluster.events")
        before = event_counter.value
        with obs.span("cluster.run", category="cluster",
                      jobs=len(jobs)) as tags:
            result = self._run(jobs)
            tags["events"] = event_counter.value - before
        return result

    def _run(self, jobs: list[JobSpec]) -> ClusterRunResult:
        pending = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        active: dict[int, _RunningJob] = {}
        outcomes: dict[int, JobOutcome] = {}
        now = 0.0
        max_events = 200 * max(1, len(jobs)) + 1000
        events = 0

        while pending or active:
            events += 1
            obs.count("cluster.events")
            if events > max_events:
                raise SchedulingError(
                    "cluster simulation exceeded its event budget "
                    "(allocation livelock?)")

            # Admit arrivals due now.
            while pending and pending[0].arrival_time <= now + _EPSILON:
                spec = pending.pop(0)
                active[spec.job_id] = _RunningJob(
                    spec=spec, remaining=float(spec.num_iterations))

            # Terminate jobs whose deadline has passed (ElasticFlow).
            for job_id in list(active):
                job = active[job_id]
                if (job.spec.deadline is not None
                        and now >= job.spec.deadline - _EPSILON
                        and job.remaining > _EPSILON):
                    outcomes[job_id] = JobOutcome(
                        spec=job.spec, completion_time=None, terminated=True,
                        gpu_seconds=job.gpu_seconds)
                    del active[job_id]

            # Re-plan allocations.
            views = [SchedulableJob(job_id=j.spec.job_id,
                                    model_name=j.spec.model_name,
                                    remaining_iterations=j.remaining,
                                    arrival_time=j.spec.arrival_time,
                                    deadline=j.spec.deadline)
                     for j in active.values()]
            allocation = self.scheduler.allocate(views, now)
            for job_id, job in active.items():
                job.gpus = allocation.get(job_id, 0)

            # Next event: arrival, completion, or deadline.
            next_time = self._next_event_time(pending, active, now)
            if next_time is None:
                if active:
                    # Jobs exist but nothing can ever progress them.
                    for job_id, job in list(active.items()):
                        outcomes[job_id] = JobOutcome(
                            spec=job.spec, completion_time=None,
                            terminated=True, gpu_seconds=job.gpu_seconds)
                        del active[job_id]
                break

            # Progress running jobs to the event time.
            delta = max(0.0, next_time - now)
            for job_id in list(active):
                job = active[job_id]
                rate = self._rate(job)
                job.remaining -= rate * delta
                job.gpu_seconds += job.gpus * delta
                if job.remaining <= _EPSILON:
                    outcomes[job_id] = JobOutcome(
                        spec=job.spec, completion_time=next_time,
                        terminated=False, gpu_seconds=job.gpu_seconds)
                    del active[job_id]
            now = next_time

        horizon = max((outcome.completion_time or outcome.spec.deadline
                       or outcome.spec.arrival_time
                       for outcome in outcomes.values()), default=0.0)
        ordered = [outcomes[spec.job_id]
                   for spec in sorted(jobs, key=lambda j: j.job_id)]
        return ClusterRunResult(outcomes=ordered,
                                total_gpus=self.scheduler.total_gpus,
                                horizon=horizon)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _rate(self, job: _RunningJob) -> float:
        profile = self.scheduler.profiles[job.spec.model_name]
        return profile.rate(job.gpus)

    def _next_event_time(self, pending: list[JobSpec],
                         active: dict[int, _RunningJob],
                         now: float) -> float | None:
        candidates: list[float] = []
        if pending:
            candidates.append(pending[0].arrival_time)
        for job in active.values():
            rate = self._rate(job)
            if rate > 0:
                candidates.append(now + job.remaining / rate)
            if job.spec.deadline is not None:
                candidates.append(job.spec.deadline)
        if not candidates:
            return None
        nxt = min(candidates)
        return max(nxt, now + _EPSILON)
