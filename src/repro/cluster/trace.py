"""Synthetic workload-trace generation (the ITP-trace substitute).

The paper models job arrivals by sampling N consecutive arrival points
from Microsoft's internal ITP cluster traces; those traces are not
available offline, so this module synthesises arrival processes with the
same character — bursty, heavy-tailed inter-arrival gaps inside a fixed
submission window — deterministically from a trace id (DESIGN.md,
"Substitutions").

Per the paper's methodology:

* every trace's jobs arrive within a fixed time period, so traces with
  more jobs stress the cluster harder (Figure 12's 64- vs 128-job
  comparison);
* each job draws one of the three Table III model configurations;
* iteration counts (and hence durations) are drawn per job;
* deadline traces set each deadline to ``lambda * duration`` after
  arrival with lambda ~ U[0.5, 1.5];
* makespan traces submit every job at time zero (Figure 14).
"""

from __future__ import annotations

from repro.cluster.job import JobSpec
from repro.cluster.throughput import ThroughputProfile
from repro.config.presets import TABLE_III_MODELS
from repro.errors import ConfigError
from repro.testbed import noise

HOURS = 3600.0

#: Submission window for arrival traces (the paper models clusters
#: operating for 400 hours; arrivals land inside the first part of it).
#: 60 hours puts a 64-job trace at ~90 % average GPU demand on the
#: 1,024-GPU cluster and a 128-job trace well past saturation — the
#: regime Figure 12 evaluates.
DEFAULT_SUBMISSION_WINDOW = 60 * HOURS

#: Iteration-count range per job. Combined with the Table III model
#: rates this yields standalone runtimes from a few hours to over a day,
#: the regime where 64-128 jobs saturate a 1,024-GPU cluster.
MIN_ITERATIONS = 400
MAX_ITERATIONS = 4000

#: Allocation at which a job's "duration" is quoted when deriving
#: deadlines (the user's expectation of service, system-independent).
REFERENCE_GPUS = 128


def _pick_model(key: str) -> str:
    """Weighted model choice: smaller models are more common (ITP-like)."""
    draw = noise.unit(key)
    if draw < 0.45:
        return TABLE_III_MODELS[0].model.name
    if draw < 0.80:
        return TABLE_III_MODELS[1].model.name
    return TABLE_III_MODELS[2].model.name


def _iterations(key: str) -> int:
    """Heavy-tailed iteration count (squared-uniform skews small)."""
    draw = noise.unit(key) ** 2
    return int(MIN_ITERATIONS + draw * (MAX_ITERATIONS - MIN_ITERATIONS))


def synthesize_trace(trace_id: int, num_jobs: int,
                     reference_profiles: dict[str, ThroughputProfile], *,
                     with_deadlines: bool = True,
                     submission_window: float = DEFAULT_SUBMISSION_WINDOW,
                     seed: str = "itp") -> list[JobSpec]:
    """Generate one workload trace.

    Args:
        trace_id: Trace index (the paper evaluates traces 1-9).
        num_jobs: Jobs in the trace (16-128 across the case studies).
        reference_profiles: Throughput curves used solely to quote each
            job's standalone duration for deadline derivation; pass the
            same profiles to both systems so deadlines are identical.
        with_deadlines: Attach ``lambda * duration`` deadlines.
        submission_window: Width of the arrival window in seconds.
        seed: Namespace for the deterministic noise stream.
    """
    if num_jobs <= 0:
        raise ConfigError("num_jobs must be positive")
    prefix = f"{seed}/trace{trace_id}"
    # Bursty arrivals: exponential-ish gaps with occasional long lulls,
    # normalised to the submission window.
    gaps = []
    for index in range(num_jobs):
        base = -_log_unit(f"{prefix}/gap/{index}")
        if noise.unit(f"{prefix}/burst/{index}") < 0.15:
            base *= 4.0  # lull between bursts
        gaps.append(base)
    scale = submission_window / max(sum(gaps), 1e-9)
    jobs: list[JobSpec] = []
    clock = 0.0
    for index, gap in enumerate(gaps):
        clock += gap * scale
        key = f"{prefix}/job/{index}"
        model_name = _pick_model(key + "/model")
        iterations = _iterations(key + "/iters")
        profile = reference_profiles[model_name]
        rate = profile.rate(REFERENCE_GPUS)
        if rate <= 0:
            rate = profile.rate(profile.max_gpus)
        duration = iterations / rate
        deadline = None
        if with_deadlines:
            slack = 0.5 + noise.unit(key + "/lambda")  # U[0.5, 1.5]
            deadline = clock + slack * duration
        jobs.append(JobSpec(job_id=index, model_name=model_name,
                            num_iterations=iterations, arrival_time=clock,
                            deadline=deadline,
                            standalone_duration=duration))
    return jobs


def makespan_trace(num_jobs: int,
                   reference_profiles: dict[str, ThroughputProfile], *,
                   trace_id: int = 0,
                   seed: str = "itp-makespan") -> list[JobSpec]:
    """All jobs submitted at time zero, no deadlines (Figure 14)."""
    jobs = synthesize_trace(trace_id, num_jobs, reference_profiles,
                            with_deadlines=False, seed=seed)
    return [JobSpec(job_id=job.job_id, model_name=job.model_name,
                    num_iterations=job.num_iterations, arrival_time=0.0,
                    deadline=None,
                    standalone_duration=job.standalone_duration)
            for job in jobs]


def _log_unit(key: str) -> float:
    """ln of a hash-uniform, guarded away from zero."""
    import math
    return math.log(max(noise.unit(key), 1e-12))
