"""ElasticFlow-style deadline-aware elastic GPU scheduling (Section V-B).

The paper implements "the exact same scheduling algorithm ElasticFlow
proposes" for both systems; only the throughput profiles differ. The
algorithm, per scheduling event:

1. **Admission / minimum shares** (deadline mode): jobs are considered
   in earliest-deadline-first order; each admitted job receives the
   *smallest* profiled allocation that can still meet its deadline.
   Jobs whose deadline is unreachable even at maximum allocation — or
   for which no capacity remains — receive nothing and will be
   terminated when their deadline passes (ElasticFlow declines them).
2. **Surplus distribution**: remaining GPUs go, step by step, to the
   job with the highest marginal throughput gain per GPU, moving each
   job up its profile's candidate ladder (power-of-two allocations).

In best-effort mode (the JCT and makespan studies, which the paper runs
deadline-free), step 1 degenerates to FIFO minimum allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.throughput import ThroughputProfile
from repro.errors import SchedulingError


@dataclass
class SchedulableJob:
    """Scheduler view of an active job."""

    job_id: int
    model_name: str
    remaining_iterations: float
    arrival_time: float
    deadline: float | None

    def time_budget(self, now: float) -> float | None:
        """Seconds left until the deadline (None if best-effort)."""
        if self.deadline is None:
            return None
        return self.deadline - now


class ElasticFlowScheduler:
    """Deadline-aware elastic allocator over throughput profiles.

    Args:
        profiles: Per-model throughput curves. The *baseline* system
            passes DP-only profiles; the *vTrain-enabled* system passes
            optimal-plan profiles. Everything else is identical.
        total_gpus: Cluster capacity (the paper uses 1,024).
    """

    def __init__(self, profiles: dict[str, ThroughputProfile],
                 total_gpus: int) -> None:
        if total_gpus <= 0:
            raise SchedulingError("total_gpus must be positive")
        self.profiles = profiles
        self.total_gpus = total_gpus

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def allocate(self, jobs: list[SchedulableJob],
                 now: float) -> dict[int, int]:
        """GPU allocation for every active job at a scheduling event."""
        allocation = {job.job_id: 0 for job in jobs}
        capacity = self.total_gpus
        admitted: list[SchedulableJob] = []

        for job in self._admission_order(jobs):
            minimum = self._minimum_satisfactory_share(job, now)
            if minimum is None or minimum > capacity:
                continue  # declined this round (terminated at deadline)
            allocation[job.job_id] = minimum
            capacity -= minimum
            admitted.append(job)

        capacity = self._distribute_surplus(admitted, allocation, capacity)
        return allocation

    # ------------------------------------------------------------------
    # Step 1: admission and minimum shares
    # ------------------------------------------------------------------
    @staticmethod
    def _admission_order(jobs: list[SchedulableJob]) -> list[SchedulableJob]:
        """EDF for deadline jobs, then FIFO for best-effort jobs."""
        with_deadline = sorted((j for j in jobs if j.deadline is not None),
                               key=lambda j: (j.deadline, j.job_id))
        best_effort = sorted((j for j in jobs if j.deadline is None),
                             key=lambda j: (j.arrival_time, j.job_id))
        return with_deadline + best_effort

    def _profile(self, job: SchedulableJob) -> ThroughputProfile:
        try:
            return self.profiles[job.model_name]
        except KeyError:
            raise SchedulingError(
                f"no throughput profile for model {job.model_name!r}") from None

    def _minimum_satisfactory_share(self, job: SchedulableJob,
                                    now: float) -> int | None:
        """Smallest allocation meeting the deadline (min_gpus if none).

        Returns None when even the maximum profiled allocation cannot
        finish the job in time — ElasticFlow's infeasibility test.
        """
        profile = self._profile(job)
        budget = job.time_budget(now)
        if budget is None:
            return profile.min_gpus
        if budget <= 0:
            return None
        for count in profile.candidates:
            rate = profile.rate(count)
            if rate > 0 and job.remaining_iterations / rate <= budget:
                return count
        return None

    # ------------------------------------------------------------------
    # Step 2: marginal-gain surplus distribution
    # ------------------------------------------------------------------
    def _distribute_surplus(self, admitted: list[SchedulableJob],
                            allocation: dict[int, int],
                            capacity: int) -> int:
        """Climb profile ladders by best marginal throughput per GPU."""
        while capacity > 0:
            best_job: SchedulableJob | None = None
            best_gain = 0.0
            best_step = 0
            for job in admitted:
                profile = self._profile(job)
                current = allocation[job.job_id]
                nxt = profile.next_step(current)
                if nxt is None or nxt - current > capacity:
                    continue
                gain = (profile.rate(nxt) - profile.rate(current)) / (
                    nxt - current)
                if gain > best_gain:
                    best_gain = gain
                    best_job = job
                    best_step = nxt
            if best_job is None:
                break
            capacity -= best_step - allocation[best_job.job_id]
            allocation[best_job.job_id] = best_step
        return capacity
