"""Scheduling metrics: deadline ratio, JCT, makespan (Figures 12-14)."""

from __future__ import annotations

from repro.cluster.simulator import ClusterRunResult
from repro.errors import SchedulingError


def deadline_satisfactory_ratio(result: ClusterRunResult) -> float:
    """Fraction of jobs that met their deadline (Figure 12's metric)."""
    if result.num_jobs == 0:
        raise SchedulingError("no jobs in result")
    met = sum(1 for outcome in result.outcomes if outcome.met_deadline)
    return met / result.num_jobs


def average_jct(result: ClusterRunResult) -> float:
    """Mean job completion time over completed jobs (Figure 13's metric).

    The paper derives JCT on deadline-free traces, where every job
    eventually completes; terminated jobs would artificially lower JCT.
    """
    jcts = [outcome.jct for outcome in result.outcomes
            if outcome.jct is not None]
    if not jcts:
        raise SchedulingError("no completed jobs; JCT undefined")
    return sum(jcts) / len(jcts)


def makespan(result: ClusterRunResult) -> float:
    """Time until the last job completes (Figure 14's metric)."""
    times = [outcome.completion_time for outcome in result.outcomes
             if outcome.completion_time is not None]
    if not times:
        raise SchedulingError("no completed jobs; makespan undefined")
    return max(times)


def completed_fraction(result: ClusterRunResult) -> float:
    """Fraction of jobs that ran to completion (not terminated)."""
    if result.num_jobs == 0:
        raise SchedulingError("no jobs in result")
    done = sum(1 for outcome in result.outcomes if outcome.completed)
    return done / result.num_jobs
