"""Profiling module: simulated CUPTI, kernel decomposition, NCCL models."""

from repro.profiling.advanced import ContentionAwareNcclModel
from repro.profiling.cupti import CuptiTracer, ProfilerStats, TraceRecord
from repro.profiling.decomposition import OperatorDecomposer
from repro.profiling.lookup import OperatorToTaskTable
from repro.profiling.nccl import PROFILE_SIZES, NcclModel

__all__ = [
    "ContentionAwareNcclModel",
    "CuptiTracer",
    "NcclModel",
    "OperatorDecomposer",
    "OperatorToTaskTable",
    "PROFILE_SIZES",
    "ProfilerStats",
    "TraceRecord",
]
