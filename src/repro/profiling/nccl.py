"""NCCL communication-latency models (paper Sections III-D and IV).

Two regimes, exactly as the paper separates them:

* **Intra-node** (NVLink/NVSwitch): vTrain *profiles* All-Reduce latencies
  over data sizes from 1 MB to 1024 MB and the participating GPU counts,
  then interpolates. We generate the same kind of table from the ring
  model in :mod:`repro.hardware.interconnect` — sampled at power-of-two
  sizes, looked up by log-linear interpolation — so the simulator consumes
  a profile table just like the paper's.
* **Inter-node** (InfiniBand): the Equation-1 latency-bandwidth model,
  ``t = S/B * 2(n-1)/n`` with ``B = alpha * Bmax`` (the
  bandwidth-effectiveness factor swept in Section IV).

An ``interference`` multiplier scales intra-node collective latency; the
paper measured NCCL primitives running ~30 % slower during real training
than in the isolated profiling environment. vTrain's *predictor* keeps
interference at 1.0 (it profiles in isolation — the acknowledged error
source); the testbed emulator sets it to ~1.3.
"""

from __future__ import annotations

import bisect
import math

from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.graph.operators import CommKind, CommOperator
from repro.hardware.interconnect import (LinkType, infiniband_ring,
                                         nvlink_ring, p2p_time)

MIB = float(1 << 20)

#: Profiled payload sizes: 1 MB .. 1024 MB in powers of two (Section IV).
PROFILE_SIZES = tuple(MIB * 2 ** i for i in range(11))


class NcclModel:
    """Times communication operators for one training system.

    Args:
        system: Cluster description (bandwidths, alpha, node size).
        interference: Multiplier on intra-node collective latency.
            1.0 = isolated profiling (vTrain's predictor); ~1.3 = the
            contention observed during real training (testbed).
    """

    def __init__(self, system: SystemConfig, *,
                 interference: float = 1.0) -> None:
        if interference < 1.0:
            raise ConfigError("interference must be >= 1.0")
        self.system = system
        self.interference = interference
        self._tables: dict[int, tuple[list[float], list[float]]] = {}

    # ------------------------------------------------------------------
    # Intra-node profile table
    # ------------------------------------------------------------------
    def profile_table(self, group_size: int) -> tuple[list[float], list[float]]:
        """(sizes, latencies) profile for an intra-node group.

        Built lazily once per group size, mimicking an NCCL profiling
        session over the standard size sweep.
        """
        if group_size < 2:
            raise ConfigError("profiling needs group_size >= 2")
        cached = self._tables.get(group_size)
        if cached is not None:
            return cached
        ring = nvlink_ring(self.system, group_size)
        sizes = list(PROFILE_SIZES)
        latencies = [ring.allreduce_time(size, group_size) for size in sizes]
        self._tables[group_size] = (sizes, latencies)
        return self._tables[group_size]

    def _interpolate(self, sizes: list[float], latencies: list[float],
                     size: float) -> float:
        """Log-linear interpolation inside the profiled range, linear
        extrapolation on the end slopes outside it."""
        if size <= sizes[0]:
            # Below 1 MB: scale the smallest profiled point by size ratio,
            # keeping its latency floor.
            smallest = latencies[0]
            bandwidth_part = smallest * (size / sizes[0])
            return max(bandwidth_part, smallest * 0.05)
        if size >= sizes[-1]:
            # Above 1024 MB the transfer is bandwidth-bound: extrapolate
            # with the last segment's slope.
            slope = ((latencies[-1] - latencies[-2])
                     / (sizes[-1] - sizes[-2]))
            return latencies[-1] + slope * (size - sizes[-1])
        index = bisect.bisect_left(sizes, size)
        lo_s, hi_s = sizes[index - 1], sizes[index]
        lo_t, hi_t = latencies[index - 1], latencies[index]
        frac = (math.log(size) - math.log(lo_s)) / (math.log(hi_s)
                                                    - math.log(lo_s))
        return lo_t + frac * (hi_t - lo_t)

    # ------------------------------------------------------------------
    # Collective timing
    # ------------------------------------------------------------------
    def allreduce_time(self, size_bytes: float, group_size: int,
                       link: LinkType) -> float:
        """All-Reduce latency over the given link type."""
        if group_size <= 1 or size_bytes <= 0:
            return 0.0
        if link is LinkType.INTRA_NODE:
            sizes, latencies = self.profile_table(group_size)
            return self._interpolate(sizes, latencies,
                                     size_bytes) * self.interference
        ring = infiniband_ring(self.system)
        return ring.allreduce_time(size_bytes, group_size)

    def allgather_time(self, size_bytes: float, group_size: int,
                       link: LinkType) -> float:
        """All-Gather latency (ZeRO-style extensions)."""
        if group_size <= 1 or size_bytes <= 0:
            return 0.0
        ring = (nvlink_ring(self.system, group_size)
                if link is LinkType.INTRA_NODE else infiniband_ring(self.system))
        scale = self.interference if link is LinkType.INTRA_NODE else 1.0
        return ring.allgather_time(size_bytes, group_size) * scale

    def reduce_scatter_time(self, size_bytes: float, group_size: int,
                            link: LinkType) -> float:
        """Reduce-Scatter latency (ZeRO-style extensions)."""
        return self.allgather_time(size_bytes, group_size, link)

    def sendrecv_time(self, size_bytes: float, link: LinkType) -> float:
        """Point-to-point Send-Receive latency (pipeline boundaries)."""
        return p2p_time(self.system, size_bytes, link)

    def time(self, comm: CommOperator) -> float:
        """Latency of any communication operator."""
        if comm.kind is CommKind.ALL_REDUCE:
            return self.allreduce_time(comm.size_bytes, comm.group_size,
                                       comm.link)
        if comm.kind is CommKind.SEND_RECV:
            return self.sendrecv_time(comm.size_bytes, comm.link)
        if comm.kind is CommKind.ALL_GATHER:
            return self.allgather_time(comm.size_bytes, comm.group_size,
                                       comm.link)
        if comm.kind is CommKind.REDUCE_SCATTER:
            return self.reduce_scatter_time(comm.size_bytes, comm.group_size,
                                            comm.link)
        raise ConfigError(f"unknown communication kind {comm.kind}")
