"""Simulated CUPTI tracer (paper Figure 4, step 3).

The real vTrain executes each computation operator on the target GPU and
collects CUDA kernel traces through CUPTI, then applies the Zhu et al.
(Daydream) task-to-layer mapping to associate kernels with operators. Our
substitute "executes" the operator on the analytical device model and
emits the same kind of trace records — kernel name, correlation id, and
duration — with the operator association available by construction.

The tracer deliberately preserves the two profiling artefacts the paper
relies on:

* determinism — profiling the same operator twice yields identical
  traces (the paper's "little variance across different runs"), and
* completeness — *all* kernels are traced, including short-lived
  element-wise ones, which Table V contrasts against sampling approaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.operators import CompOperator
from repro.hardware.kernels import DeviceModel, Kernel
from repro.profiling.decomposition import OperatorDecomposer


@dataclass(frozen=True)
class TraceRecord:
    """One CUPTI activity record associated with an operator."""

    correlation_id: int
    operator_signature: tuple
    kernel: Kernel


@dataclass
class ProfilerStats:
    """Counters demonstrating the necessary-operator optimisation."""

    operators_profiled: int = 0
    kernels_traced: int = 0
    signatures: set = field(default_factory=set)


class CuptiTracer:
    """Profiles operators on a device model and records kernel traces."""

    def __init__(self, device: DeviceModel) -> None:
        self.device = device
        self._decomposer = OperatorDecomposer(device)
        self._records: list[TraceRecord] = []
        self._next_correlation = 0
        self.stats = ProfilerStats()

    def trace_operator(self, op: CompOperator) -> tuple[Kernel, ...]:
        """Execute ``op`` once, returning its ordered kernel trace."""
        kernels = self._decomposer.decompose(op)
        self.stats.operators_profiled += 1
        self.stats.kernels_traced += len(kernels)
        self.stats.signatures.add(op.signature)
        for kernel in kernels:
            self._records.append(TraceRecord(self._next_correlation,
                                             op.signature, kernel))
            self._next_correlation += 1
        return kernels

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """All activity records collected so far, in issue order."""
        return tuple(self._records)

    def kernels_for(self, op: CompOperator) -> tuple[Kernel, ...]:
        """Task-to-layer mapping: kernels previously traced for ``op``."""
        return tuple(record.kernel for record in self._records
                     if record.operator_signature == op.signature)

    def reset(self) -> None:
        """Drop collected records and counters (new profiling session)."""
        self._records.clear()
        self._next_correlation = 0
        self.stats = ProfilerStats()
