"""Operator-to-kernel decomposition (the heart of the profiling module).

Mirrors how Megatron-DeepSpeed lowers each transformer block into CUDA
kernels under tensor parallelism: every weight matrix is sharded ``1/t``,
attention runs ``n/t`` heads per rank, and the backward pass issues one
data-gradient and one weight-gradient GEMM per forward GEMM. Activation
recomputation (none / selective / full) prepends re-executed forward
kernels to the backward sequence, exactly as the framework would — and
because vTrain profiles whatever kernels actually run, a recompute-policy
change is captured automatically (the paper's argument for profiling over
analytical modelling, Section VI).

The decomposer emits :class:`~repro.hardware.kernels.Kernel` objects timed
by the device model; the simulated CUPTI tracer and the operator-to-task
lookup table sit on top of this module.
"""

from __future__ import annotations

from repro.config.parallelism import RecomputeMode
from repro.errors import ProfilingError
from repro.graph.operators import CompOperator, OpKind
from repro.hardware.kernels import DeviceModel, Kernel


class OperatorDecomposer:
    """Lowers computation operators into timed CUDA-kernel sequences."""

    def __init__(self, device: DeviceModel) -> None:
        self.device = device

    def decompose(self, op: CompOperator) -> tuple[Kernel, ...]:
        """Return the kernel sequence executed for ``op`` on one GPU."""
        handlers = {
            OpKind.FWD_EMBEDDING: self._fwd_embedding,
            OpKind.FWD_MHA: self._fwd_mha,
            OpKind.FWD_FFN: self._fwd_ffn,
            OpKind.FWD_LM_HEAD: self._fwd_lm_head,
            OpKind.BWD_LM_HEAD: self._bwd_lm_head,
            OpKind.BWD_FFN: self._bwd_ffn,
            OpKind.BWD_MHA: self._bwd_mha,
            OpKind.BWD_EMBEDDING: self._bwd_embedding,
            OpKind.WEIGHT_UPDATE: self._weight_update,
        }
        try:
            handler = handlers[op.kind]
        except KeyError:  # pragma: no cover - enum is closed
            raise ProfilingError(f"no decomposition for {op.kind}") from None
        return tuple(handler(op))

    # ------------------------------------------------------------------
    # Shared shape helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _dims(op: CompOperator) -> tuple[int, int, int, int, int, int]:
        """(tokens, h, heads/rank, head_dim, h/t, 4h/t) for ``op``."""
        tokens = op.tokens
        h = op.hidden_size
        heads_local = op.num_heads // op.tensor_parallel
        head_dim = h // op.num_heads
        h_local = max(1, h // op.tensor_parallel)
        ffn_local = max(1, 4 * h // op.tensor_parallel)
        return tokens, h, heads_local, head_dim, h_local, ffn_local

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    def _fwd_embedding(self, op: CompOperator):
        tokens, h = op.tokens, op.hidden_size
        yield self.device.embedding_lookup(tokens, h,
                                           name="word_embedding_lookup")
        yield self.device.elementwise(tokens * h, reads=2, writes=1,
                                      name="position_embedding_add")
        yield self.device.elementwise(tokens * h, name="embedding_dropout")

    def _bwd_embedding(self, op: CompOperator):
        tokens, h = op.tokens, op.hidden_size
        yield self.device.elementwise(tokens * h, name="embedding_dropout_bwd")
        yield self.device.elementwise(tokens * h, reads=2, writes=1,
                                      name="embedding_grad_scatter")

    # ------------------------------------------------------------------
    # Multi-head attention block (Figure 2, left half of the decoder)
    # ------------------------------------------------------------------
    def _mha_forward_kernels(self, op: CompOperator, *, core_only: bool):
        """Forward MHA kernels; ``core_only`` keeps just the attention
        score/softmax/context portion (what selective recompute replays).

        With ``op.kv_length`` set (inference decode), the attention core
        attends ``seq_length`` queries over ``kv_length`` cached keys
        and values: scores are ``s x kv``, softmax rows span ``kv``
        columns, and the context GEMM contracts over ``kv``. At
        ``kv_length == 0`` (every training operator) ``kv == s`` and the
        kernel sequence is byte-identical to the pre-workload builder.
        """
        tokens, h, heads_local, head_dim, h_local, _ = self._dims(op)
        s = op.seq_length
        kv = op.kv_length or s
        batch_heads = op.micro_batch * heads_local
        if not core_only:
            yield self.device.reduction(tokens, h, passes=2.5,
                                        name="vectorized_layer_norm")
            yield self.device.gemm(tokens, 3 * h_local, h, layout="tn",
                                   name_hint="qkv_proj")
            yield self.device.elementwise(tokens * 3 * h_local,
                                          name="qkv_bias_add")
        yield self.device.gemm(s, kv, head_dim, batch=batch_heads,
                               layout="nt", name_hint="attn_scores")
        yield self.device.reduction(batch_heads * s, kv, passes=3.0,
                                    name="scaled_masked_softmax")
        yield self.device.elementwise(batch_heads * s * kv,
                                      name="attention_dropout")
        yield self.device.gemm(s, head_dim, kv, batch=batch_heads,
                               layout="nn", name_hint="attn_context")
        if not core_only:
            yield self.device.gemm(tokens, h, h_local, layout="tn",
                                   name_hint="attn_out_proj")
            yield self.device.elementwise(tokens * h, reads=2, writes=1,
                                          name="dropout_add_residual")

    def _fwd_mha(self, op: CompOperator):
        yield from self._mha_forward_kernels(op, core_only=False)

    def _bwd_mha(self, op: CompOperator):
        tokens, h, heads_local, head_dim, h_local, _ = self._dims(op)
        s = op.seq_length
        batch_heads = op.micro_batch * heads_local
        # Recomputation replays forward kernels before gradients flow.
        if op.recompute is RecomputeMode.FULL:
            yield from self._mha_forward_kernels(op, core_only=False)
        elif op.recompute is RecomputeMode.SELECTIVE:
            yield from self._mha_forward_kernels(op, core_only=True)
        yield self.device.elementwise(tokens * h, name="dropout_add_bwd")
        # Output projection: data grad then weight grad.
        yield self.device.gemm(tokens, h_local, h, layout="nn",
                               name_hint="attn_out_proj_dgrad")
        yield self.device.gemm(h_local, h, tokens, layout="nt",
                               name_hint="attn_out_proj_wgrad")
        # Context = softmax(S) @ V backward.
        yield self.device.gemm(s, s, head_dim, batch=batch_heads,
                               layout="nt", name_hint="attn_context_dgrad_s")
        yield self.device.gemm(s, head_dim, s, batch=batch_heads,
                               layout="tn", name_hint="attn_context_dgrad_v")
        yield self.device.elementwise(batch_heads * s * s,
                                      name="attention_dropout_bwd")
        yield self.device.reduction(batch_heads * s, s, passes=2.5,
                                    name="scaled_masked_softmax_bwd")
        # Scores = Q @ K^T backward (dQ and dK).
        yield self.device.gemm(s, head_dim, s, batch=batch_heads,
                               layout="nn", name_hint="attn_scores_dgrad_q")
        yield self.device.gemm(s, head_dim, s, batch=batch_heads,
                               layout="tn", name_hint="attn_scores_dgrad_k")
        # Fused QKV projection backward.
        yield self.device.gemm(tokens, h, 3 * h_local, layout="nn",
                               name_hint="qkv_proj_dgrad")
        yield self.device.gemm(h, 3 * h_local, tokens, layout="nt",
                               name_hint="qkv_proj_wgrad")
        yield self.device.reduction(tokens, h, passes=3.5,
                                    name="layer_norm_bwd")

    # ------------------------------------------------------------------
    # Feed-forward network block
    # ------------------------------------------------------------------
    def _ffn_forward_kernels(self, op: CompOperator):
        tokens, h, _, _, _, ffn_local = self._dims(op)
        yield self.device.reduction(tokens, h, passes=2.5,
                                    name="vectorized_layer_norm")
        yield self.device.gemm(tokens, ffn_local, h, layout="tn",
                               name_hint="ffn_h_to_4h")
        yield self.device.elementwise(tokens * ffn_local,
                                      name="gelu_bias_fused")
        yield self.device.gemm(tokens, h, ffn_local, layout="tn",
                               name_hint="ffn_4h_to_h")
        yield self.device.elementwise(tokens * h, reads=2, writes=1,
                                      name="dropout_add_residual")

    def _fwd_ffn(self, op: CompOperator):
        yield from self._ffn_forward_kernels(op)

    def _bwd_ffn(self, op: CompOperator):
        tokens, h, _, _, _, ffn_local = self._dims(op)
        if op.recompute is RecomputeMode.FULL:
            yield from self._ffn_forward_kernels(op)
        yield self.device.elementwise(tokens * h, name="dropout_add_bwd")
        yield self.device.gemm(tokens, ffn_local, h, layout="nn",
                               name_hint="ffn_4h_to_h_dgrad")
        yield self.device.gemm(ffn_local, h, tokens, layout="nt",
                               name_hint="ffn_4h_to_h_wgrad")
        yield self.device.elementwise(tokens * ffn_local,
                                      name="gelu_bwd_fused")
        yield self.device.gemm(tokens, h, ffn_local, layout="nn",
                               name_hint="ffn_h_to_4h_dgrad")
        yield self.device.gemm(h, ffn_local, tokens, layout="nt",
                               name_hint="ffn_h_to_4h_wgrad")
        yield self.device.reduction(tokens, h, passes=3.5,
                                    name="layer_norm_bwd")

    # ------------------------------------------------------------------
    # LM head (output layer, tied to the word embedding)
    # ------------------------------------------------------------------
    def _fwd_lm_head(self, op: CompOperator):
        tokens, h, _, _, _, _ = self._dims(op)
        vocab_local = max(1, op.vocab_size // op.tensor_parallel)
        yield self.device.reduction(tokens, h, passes=2.5,
                                    name="final_layer_norm")
        yield self.device.gemm(tokens, vocab_local, h, layout="tn",
                               name_hint="lm_head_logits")
        yield self.device.reduction(tokens, vocab_local, passes=2.0,
                                    name="vocab_parallel_cross_entropy")

    def _bwd_lm_head(self, op: CompOperator):
        tokens, h, _, _, _, _ = self._dims(op)
        vocab_local = max(1, op.vocab_size // op.tensor_parallel)
        yield self.device.elementwise(tokens * vocab_local,
                                      name="cross_entropy_bwd")
        yield self.device.gemm(tokens, h, vocab_local, layout="nn",
                               name_hint="lm_head_dgrad")
        yield self.device.gemm(h, vocab_local, tokens, layout="nt",
                               name_hint="lm_head_wgrad")
        yield self.device.reduction(tokens, h, passes=3.5,
                                    name="final_layer_norm_bwd")

    # ------------------------------------------------------------------
    # Optimizer
    # ------------------------------------------------------------------
    def _weight_update(self, op: CompOperator):
        yield self.device.elementwise(op.num_params,
                                      name="grad_scale_and_clip")
        yield self.device.optimizer_update(op.num_params)
