"""Operator-to-task lookup table (paper Figure 4, steps 3-4).

Maps a computation operator's *signature* to the list of CUDA kernels
(tasks) it executes and their profiled durations. The table embodies the
paper's key profiling-cost optimisation (Section III-C): because LLMs
stack identically-shaped decoder layers, partitioned evenly across GPUs,
only one representative of each signature — a *necessary operator* — ever
needs profiling. For an LLM with L layers and N_MB micro-batches the
naive cost is O(L x N_MB) profiles; the table makes it O(1).
"""

from __future__ import annotations

from repro.graph.operators import CompOperator
from repro.hardware.kernels import Kernel
from repro.profiling.cupti import CuptiTracer


class OperatorToTaskTable:
    """Caches operator -> (kernels, total duration), profiling on miss."""

    def __init__(self, tracer: CuptiTracer) -> None:
        self._tracer = tracer
        self._table: dict[tuple, tuple[Kernel, ...]] = {}
        self._hits = 0
        self._misses = 0

    def tasks_for(self, op: CompOperator) -> tuple[Kernel, ...]:
        """Kernels for ``op``, profiling the first representative only."""
        key = op.signature
        cached = self._table.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        kernels = self._tracer.trace_operator(op)
        self._table[key] = kernels
        return kernels

    def duration_of(self, op: CompOperator) -> float:
        """Total device time of ``op`` (its kernels run back-to-back)."""
        return sum(kernel.duration for kernel in self.tasks_for(op))

    # ------------------------------------------------------------------
    # Introspection (tested to demonstrate the O(1) property)
    # ------------------------------------------------------------------
    @property
    def num_profiled(self) -> int:
        """Necessary operators profiled so far (cache misses)."""
        return self._misses

    @property
    def num_reused(self) -> int:
        """Lookups served from the table (cache hits)."""
        return self._hits

    @property
    def signatures(self) -> tuple[tuple, ...]:
        """All signatures currently in the table."""
        return tuple(self._table)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, op: CompOperator) -> bool:
        return op.signature in self._table
