"""Contention-aware inter-node communication model (paper future work).

Section IV closes with vTrain's two acknowledged multi-node error
sources: the latency–bandwidth model "does not capture the effect of
straggler GPU node's training time at synchronization points, nor ...
the latency overheads of NCCL kernel launches", and it cannot model the
"dynamic behaviors of a large, complicated network topology" — e.g. the
four data-parallel groups of Figure 3 sharing the same ToR switches.
The authors "believe the simulation errors ... can be alleviated by
incorporating the dynamic nature of inter-node communication into our
analytical model".

This module is that incorporation. :class:`ContentionAwareNcclModel`
extends the Equation-1 model with three statically-derivable terms:

* **uplink sharing** — an inter-node collective whose node hosts ``g``
  concurrent sibling groups (known from the rank mapping at graph-build
  time) sees its effective bandwidth derated logarithmically in ``g``;
* **launch overhead** — each collective pays a fixed NCCL kernel-launch
  cost;
* **straggler margin** — a synchronisation over ``n`` workers waits for
  the slowest; with i.i.d. per-worker slack the expected margin grows
  with ``sqrt(2 ln n)`` (the Gumbel approximation of a max of
  near-Gaussian delays).

The extension bench (``benchmarks/bench_ext_comm_model.py``) shows the
multi-node validation error shrinking when this model replaces the basic
one, while single-node predictions are untouched — reproducing the
paper's improvement hypothesis.
"""

from __future__ import annotations

import math

from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.graph.operators import CommKind, CommOperator
from repro.hardware.interconnect import LinkType, infiniband_ring
from repro.profiling.nccl import NcclModel


class ContentionAwareNcclModel(NcclModel):
    """Equation-1 model augmented with dynamic-network corrections.

    Args:
        system: Cluster description.
        contention_per_group: Bandwidth derating per doubling of
            concurrent groups sharing a node's NICs.
        launch_overhead: Fixed NCCL kernel-launch latency charged per
            inter-node collective.
        straggler_slack: Per-worker slack scale (seconds) feeding the
            sqrt(2 ln n) synchronisation margin.
        interference: Inherited intra-node interference multiplier.
    """

    def __init__(self, system: SystemConfig, *,
                 contention_per_group: float = 0.05,
                 launch_overhead: float = 8e-6,
                 straggler_slack: float = 2e-4,
                 interference: float = 1.0) -> None:
        super().__init__(system, interference=interference)
        if contention_per_group < 0:
            raise ConfigError("contention_per_group must be non-negative")
        if launch_overhead < 0 or straggler_slack < 0:
            raise ConfigError("overheads must be non-negative")
        self.contention_per_group = contention_per_group
        self.launch_overhead = launch_overhead
        self.straggler_slack = straggler_slack

    # ------------------------------------------------------------------
    # Correction terms
    # ------------------------------------------------------------------
    def contention_factor(self, concurrent_groups: int) -> float:
        """Bandwidth-derating multiplier for shared node uplinks."""
        if concurrent_groups <= 1:
            return 1.0
        doublings = (concurrent_groups - 1).bit_length()
        return 1.0 + self.contention_per_group * doublings

    def straggler_margin(self, group_size: int) -> float:
        """Expected wait for the slowest of ``group_size`` workers."""
        if group_size <= 1:
            return 0.0
        return self.straggler_slack * math.sqrt(2.0 * math.log(group_size))

    # ------------------------------------------------------------------
    # Overrides
    # ------------------------------------------------------------------
    def internode_allreduce_time(self, size_bytes: float, group_size: int,
                                 concurrent_groups: int = 1) -> float:
        """Inter-node All-Reduce with contention/launch/straggler terms."""
        if group_size <= 1 or size_bytes <= 0:
            return 0.0
        base = infiniband_ring(self.system).allreduce_time(size_bytes,
                                                           group_size)
        return (base * self.contention_factor(concurrent_groups)
                + self.launch_overhead + self.straggler_margin(group_size))

    def time(self, comm: CommOperator) -> float:
        """Latency of a communication operator (corrected inter-node)."""
        if (comm.kind is CommKind.ALL_REDUCE
                and comm.link is LinkType.INTER_NODE):
            return self.internode_allreduce_time(comm.size_bytes,
                                                 comm.group_size,
                                                 comm.concurrent_groups)
        return super().time(comm)
