"""The vTrain facade: predict iteration time, utilization, days, dollars.

:class:`VTrain` wires the whole Figure-4 pipeline together — input
description, operator-granularity graph, profiling-backed lookup table,
task-granularity expansion, and the Algorithm-1 replay — behind two
calls::

    vtrain = VTrain(system)
    prediction = vtrain.predict(model, plan, training)       # one iteration
    estimate = vtrain.estimate_training(model, plan, training)  # end-to-end

The profiling state (CUPTI traces, operator-to-task table, NCCL profile
tables) is shared across predictions, so sweeping thousands of plans only
profiles each necessary operator once — the Section III-F performance
story.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import SystemConfig
from repro.cost.pricing import (DEFAULT_PRICING, SECONDS_PER_DAY,
                                SECONDS_PER_HOUR, PricingModel)
from repro.errors import SimulationError
from repro.graph.builder import (Granularity, GraphBuilder,
                                 structure_cache_evict, structure_cache_get,
                                 structure_cache_put)
from repro.graph.structure import ExecutionGraph, GraphStructure
from repro.hardware.kernels import DeviceModel
from repro.memory.footprint import (MemoryFootprint, check_inference_memory,
                                    check_memory, inference_memory_footprint,
                                    memory_footprint)
from repro.network.model import nccl_model_for
from repro.profiling.cupti import CuptiTracer
from repro.profiling.lookup import OperatorToTaskTable
from repro.profiling.nccl import NcclModel
from repro.sim.engine import simulate_retimed, simulate_retimed_batch
from repro.sim.results import (InferencePrediction, IterationPrediction,
                               SimulationResult, TrainingEstimate)
from repro.workload import (DECODE, PREFILL, InferenceWorkload,
                            TrainingWorkload, Workload)


@dataclass(frozen=True)
class PredictTiming:
    """Phase breakdown of one :meth:`VTrain.predict` call (seconds).

    ``builder_init_s`` is builder construction — network-model setup
    (NCCL timing tables) plus per-operator timing resolution — which
    runs on *every* predict, hit or miss; it used to go unreported, so
    cold breakdowns didn't add up. ``structure_s`` is graph assembly +
    compilation when the structure cache missed, ``0.0`` on a hit;
    ``fill_s`` is the slot-broadcast duration refill (hits only).
    Surfaced by ``repro predict --timing``.
    """

    memory_check_s: float
    builder_init_s: float
    structure_s: float
    fill_s: float
    replay_s: float
    total_s: float
    structure_cache_hit: bool

    @property
    def structure_source(self) -> str:
        """Where the replay topology came from."""
        return "cache hit" if self.structure_cache_hit else "built"

    @property
    def accounted_s(self) -> float:
        """Sum of the attributed phases.

        Tracks ``total_s`` to within bookkeeping noise on both cold and
        warm paths now that builder construction is attributed —
        previously cold calls could leave >30% of ``total_s``
        unaccounted for.
        """
        return (self.memory_check_s + self.builder_init_s
                + self.structure_s + self.fill_s + self.replay_s)

    def phases(self) -> dict[str, float]:
        """Ordered phase-name -> seconds mapping for reports."""
        return {
            "memory check": self.memory_check_s,
            "network setup": self.builder_init_s,
            "structure": self.structure_s,
            "duration fill": self.fill_s,
            "replay": self.replay_s,
        }


@dataclass(frozen=True)
class PreparedPlan:
    """A compiled, timed plan ready for (re-)replay.

    ``durations`` is in the structure's replay order; consumers such as
    the testbed emulator perturb it and call
    :func:`~repro.sim.engine.simulate_retimed` without ever rebuilding
    the graph. ``builder`` is the plan's own (graph-free) builder —
    resolve anything plan-specific (timing table, per-slot kernel
    counts) through it, not through the cached structure's
    representative ``payload`` objects, which may originate from a
    different build sharing the same topology.
    """

    structure: GraphStructure
    durations: np.ndarray
    metadata: dict
    builder: GraphBuilder
    structure_cache_hit: bool
    structure_s: float
    fill_s: float
    builder_init_s: float = 0.0


class VTrain:
    """Profiling-driven LLM training-time simulator (the paper's system).

    Args:
        system: Training-system description (GPUs, interconnects).
        granularity: Graph detail level. ``OPERATOR`` (default) matches
            the paper's reported accuracy at a fraction of the task count;
            ``KERNEL`` is the paper's full task-granularity replay;
            ``STAGE`` is the fast mode used for Figure-10-scale sweeps.
        device: Override the analytical device model (e.g. a testbed's
            perturbed model).
        nccl: Override the communication model (e.g. with interference).
            When omitted, the model follows ``system.network``: the flat
            Equation-1 :class:`NcclModel` for ``flat`` (the default,
            bit-identical to prior behavior) or a
            :class:`~repro.network.model.TopologyAwareNcclModel` for
            ``rail`` / ``fat-tree:<ratio>`` fabrics.
        check_memory_feasibility: Reject plans that exceed GPU memory.
        zero1_sharding: Deprecated alias for ``zero_stage``: True means
            ZeRO stage 1, False stage 0. Ignored when ``zero_stage`` is
            given.
        zero_stage: ZeRO sharding stage (0-3) assumed by the memory
            model (see :func:`repro.memory.footprint.memory_footprint`).
            Defaults to stage 1, Megatron-DeepSpeed's configuration.
    """

    def __init__(self, system: SystemConfig, *,
                 granularity: Granularity = Granularity.OPERATOR,
                 device: DeviceModel | None = None,
                 nccl: NcclModel | None = None,
                 check_memory_feasibility: bool = True,
                 zero1_sharding: bool = True,
                 zero_stage: int | None = None) -> None:
        self.system = system
        self.granularity = granularity
        self.device = device if device is not None else DeviceModel(system.gpu)
        self.tracer = CuptiTracer(self.device)
        self.lookup = OperatorToTaskTable(self.tracer)
        self.nccl = nccl if nccl is not None else nccl_model_for(system)
        self.check_memory_feasibility = check_memory_feasibility
        self.zero_stage = (zero_stage if zero_stage is not None
                           else (1 if zero1_sharding else 0))
        self.zero1_sharding = self.zero_stage >= 1  # legacy alias
        self.num_predictions = 0
        self.structure_cache_hits = 0
        self.structure_cache_misses = 0
        self.last_predict_timing: PredictTiming | None = None
        # Concurrent predicts (the `repro serve` daemon) race on the
        # instance counters above; `int +=` is not atomic across the
        # load/store, so keep the accounting exact under contention.
        # last_predict_timing stays last-writer-wins by design.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def build_graph(self, model: ModelConfig, plan: ParallelismConfig,
                    training: TrainingConfig) -> ExecutionGraph:
        """Build the execution graph for one iteration of this plan."""
        builder = GraphBuilder(model, self.system, plan, training,
                               self.lookup, self.nccl, self.granularity)
        return builder.build()

    def prepare(self, model: ModelConfig, plan: ParallelismConfig,
                training: TrainingConfig | None, *,
                workload: InferenceWorkload | None = None,
                phase: str | None = None) -> PreparedPlan:
        """Compiled structure + durations for one plan, ready to replay.

        Consults the process-wide structure cache: on a hit only the
        duration vector is refilled from this builder's timing table
        (retime-without-rebuild); on a miss the graph is assembled,
        compiled, and cached for every later predict that shares its
        structural fingerprint — across micro-batch sizes, parallel
        degrees, systems, and VTrain instances alike.

        Pass ``workload``/``phase`` together to compile an inference
        phase graph (prefill or decode) instead of the training
        iteration graph; ``training`` may then be ``None``.
        """
        tick = time.perf_counter()
        with obs.span("builder_init", granularity=self.granularity.value):
            builder = GraphBuilder(model, self.system, plan, training,
                                   self.lookup, self.nccl, self.granularity,
                                   workload=workload, phase=phase)
        builder_init_s = time.perf_counter() - tick
        key = builder.structure_key
        structure = structure_cache_get(key)
        cache_hit = structure is not None
        build_s = 0.0
        fill_s = 0.0
        if structure is not None:
            tick = time.perf_counter()
            try:
                with obs.span("duration_fill", tasks=structure.num_tasks):
                    durations = builder.fill_durations(structure)
            except SimulationError:
                # Structural drift the fingerprint failed to capture:
                # drop the stale entry and rebuild from scratch.
                structure_cache_evict(key)
                structure = None
                cache_hit = False
            else:
                fill_s = time.perf_counter() - tick
        if structure is None:
            tick = time.perf_counter()
            with obs.span("structure_build") as tags:
                structure = builder.compile()
                tags["tasks"] = structure.num_tasks
            build_s = time.perf_counter() - tick
            structure_cache_put(key, structure)
            durations = structure.duration
        if cache_hit:
            with self._stats_lock:
                self.structure_cache_hits += 1
            obs.observe("sim.duration_fill_s", fill_s)
        else:
            with self._stats_lock:
                self.structure_cache_misses += 1
            obs.observe("sim.structure_build_s", build_s)
        obs.observe("sim.builder_init_s", builder_init_s)
        return PreparedPlan(structure=structure, durations=durations,
                            metadata=builder.graph_metadata(),
                            builder=builder,
                            structure_cache_hit=cache_hit,
                            structure_s=build_s, fill_s=fill_s,
                            builder_init_s=builder_init_s)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, model: ModelConfig, plan: ParallelismConfig,
                training: TrainingConfig | None = None, *,
                workload: Workload | None = None,
                record_timeline: bool = False,
                ) -> IterationPrediction | InferencePrediction:
        """Predict one design point's latency for its workload.

        The default workload is training — ``predict(model, plan,
        training)`` is byte-for-byte the classic single-iteration
        path and returns an :class:`IterationPrediction`. Passing
        ``workload=TrainingWorkload(...)`` is the same path with the
        training shape drawn from the workload object. Passing an
        :class:`~repro.workload.InferenceWorkload` dispatches to
        :meth:`predict_inference` and returns an
        :class:`InferencePrediction`.

        Raises:
            InfeasibleConfigError: Structural violation, or (when memory
                checking is enabled) per-GPU memory overflow.
        """
        if isinstance(workload, InferenceWorkload):
            return self.predict_inference(model, plan, workload,
                                          record_timeline=record_timeline)
        if isinstance(workload, TrainingWorkload):
            training = workload.training
        if training is None:
            raise SimulationError(
                "predict() needs a TrainingConfig (or a workload)")
        with self._stats_lock:
            self.num_predictions += 1
        started = time.perf_counter()
        with obs.span(
                "predict",
                plan=f"t{plan.tensor} d{plan.data} p{plan.pipeline}") as span:
            with obs.span("memory_check"):
                if self.check_memory_feasibility:
                    footprint = check_memory(model, plan, training,
                                             self.system,
                                             zero_stage=self.zero_stage)
                else:
                    footprint = memory_footprint(
                        model, plan, training, zero_stage=self.zero_stage)
            memory_s = time.perf_counter() - started
            prepared = self.prepare(model, plan, training)
            tick = time.perf_counter()
            with obs.span("replay", tasks=prepared.structure.num_tasks):
                result = simulate_retimed(prepared.structure,
                                          prepared.durations,
                                          record_timeline=record_timeline,
                                          metadata=prepared.metadata)
            replay_s = time.perf_counter() - tick
            span["structure"] = ("cache hit" if prepared.structure_cache_hit
                                 else "built")
        total_s = time.perf_counter() - started
        obs.observe("sim.replay_s", replay_s)
        obs.observe("sim.predict_total_s", total_s)
        if replay_s > 0.0:
            obs.observe("sim.replay_tasks_per_s",
                        prepared.structure.num_tasks / replay_s)
        self.last_predict_timing = PredictTiming(
            memory_check_s=memory_s,
            builder_init_s=prepared.builder_init_s,
            structure_s=prepared.structure_s,
            fill_s=prepared.fill_s,
            replay_s=replay_s,
            total_s=total_s,
            structure_cache_hit=prepared.structure_cache_hit)
        return self._prediction(model, plan, training, footprint, result)

    def predict_inference(self, model: ModelConfig, plan: ParallelismConfig,
                          workload: InferenceWorkload, *,
                          record_timeline: bool = False,
                          ) -> InferencePrediction:
        """Predict serving latencies for one static-batch design point.

        Replays two phase graphs through the shared structure cache: the
        prefill graph (full-prompt pipelined forward; makespan is the
        time to first token) and the decode-step graph (single-token
        forward with KV-scaled attention; makespan is the time per
        output token). ``plan.data`` is read as the number of
        data-parallel server replicas — it multiplies throughput, never
        latency, the vLLM-style TP-vs-DP trade-off.

        Raises:
            InfeasibleConfigError: Structural violation, or (when memory
                checking is enabled) weights + KV cache exceeding HBM.
        """
        with self._stats_lock:
            self.num_predictions += 1
        with obs.span(
                "predict_inference",
                plan=f"t{plan.tensor} d{plan.data} p{plan.pipeline}"):
            with obs.span("memory_check"):
                if self.check_memory_feasibility:
                    footprint = check_inference_memory(model, plan, workload,
                                                       self.system)
                else:
                    footprint = inference_memory_footprint(model, plan,
                                                           workload)
            phases = {}
            for phase in (PREFILL, DECODE):
                prepared = self.prepare(model, plan, None,
                                        workload=workload, phase=phase)
                with obs.span("replay", phase=phase,
                              tasks=prepared.structure.num_tasks):
                    phases[phase] = simulate_retimed(
                        prepared.structure, prepared.durations,
                        record_timeline=record_timeline,
                        metadata=prepared.metadata)
        return InferencePrediction(
            prefill_time=phases[PREFILL].iteration_time,
            decode_step_time=phases[DECODE].iteration_time,
            batch_size=workload.batch_size,
            prompt_len=workload.prompt_len,
            gen_len=workload.gen_len,
            num_replicas=plan.data,
            num_gpus=plan.total_gpus,
            memory_per_gpu=footprint.total,
            prefill_simulation=phases[PREFILL],
            decode_simulation=phases[DECODE],
        )

    @staticmethod
    def _observe_replay(tasks: int, columns: int, elapsed: float) -> None:
        """Record replay latency/throughput histograms (gated; a batch
        sweep counts ``tasks x columns`` replayed tasks)."""
        if not obs.enabled():
            return
        obs.observe("sim.replay_s", elapsed)
        if elapsed > 0.0:
            obs.observe("sim.replay_tasks_per_s",
                        tasks * columns / elapsed)

    def _prediction(self, model: ModelConfig, plan: ParallelismConfig,
                    training: TrainingConfig, footprint: MemoryFootprint,
                    result: SimulationResult) -> IterationPrediction:
        """Wrap one replay result in the predict() output contract."""
        tokens = training.tokens_per_iteration(model)
        model_flops = model.model_flops_per_iteration(tokens)
        peak = plan.total_gpus * self.system.gpu.peak_fp16_flops
        utilization = model_flops / (peak * result.iteration_time)
        return IterationPrediction(
            iteration_time=result.iteration_time,
            gpu_compute_utilization=utilization,
            tokens_per_iteration=tokens,
            model_flops=model_flops,
            num_gpus=plan.total_gpus,
            memory_per_gpu=footprint.total,
            simulation=result,
        )

    def prepare_checked(self, model: ModelConfig, plan: ParallelismConfig,
                        training: TrainingConfig,
                        ) -> tuple[MemoryFootprint, PreparedPlan]:
        """:meth:`predict`'s front half: memory check, then compile.

        Performs exactly the checks :meth:`predict` performs, in the
        same order (so infeasible plans raise before any graph work),
        and returns the pieces a batched replay needs. Callers that
        group several structure-affine plans hand the results to
        :meth:`predict_prepared`.

        Raises:
            InfeasibleConfigError: Structural violation, or (when memory
                checking is enabled) per-GPU memory overflow.
        """
        if self.check_memory_feasibility:
            footprint = check_memory(model, plan, training, self.system,
                                     zero_stage=self.zero_stage)
        else:
            footprint = memory_footprint(model, plan, training,
                                         zero_stage=self.zero_stage)
        return footprint, self.prepare(model, plan, training)

    def predict_prepared(
            self, model: ModelConfig, training: TrainingConfig,
            entries: list[tuple[ParallelismConfig, MemoryFootprint,
                                PreparedPlan]],
    ) -> list[IterationPrediction]:
        """Replay already-prepared plans, batching structure-affine runs.

        ``entries`` come from :meth:`prepare_checked`. Runs sharing one
        compiled :class:`~repro.graph.structure.GraphStructure` object
        (the common case inside an affinity-sorted DSE sweep, where the
        process-wide structure cache returns the same instance) are
        stacked into a ``(tasks x N)`` matrix and replayed by a single
        :func:`~repro.sim.engine.simulate_retimed_batch` sweep; the rest
        replay through the scalar engine. Either path yields
        bit-identical :class:`IterationPrediction` values, returned in
        entry order.
        """
        groups: dict[int, list[int]] = {}
        for position, (_, _, prepared) in enumerate(entries):
            groups.setdefault(id(prepared.structure), []).append(position)
        results: list[SimulationResult | None] = [None] * len(entries)
        for positions in groups.values():
            if len(positions) == 1:
                _, _, prepared = entries[positions[0]]
                tick = time.perf_counter()
                with obs.span("replay", tasks=prepared.structure.num_tasks):
                    results[positions[0]] = simulate_retimed(
                        prepared.structure, prepared.durations,
                        metadata=prepared.metadata)
                self._observe_replay(prepared.structure.num_tasks, 1,
                                     time.perf_counter() - tick)
                continue
            structure = entries[positions[0]][2].structure
            matrix = np.stack(
                [entries[p][2].durations for p in positions], axis=1)
            tick = time.perf_counter()
            with obs.span("replay_batch", tasks=structure.num_tasks,
                          columns=len(positions)):
                batch = simulate_retimed_batch(structure, matrix)
            self._observe_replay(structure.num_tasks, len(positions),
                                 time.perf_counter() - tick)
            obs.observe("sim.batch_columns", len(positions))
            for column, position in enumerate(positions):
                results[position] = batch.column(
                    column, metadata=entries[position][2].metadata)
        with self._stats_lock:
            self.num_predictions += len(entries)
        return [self._prediction(model, plan, training, footprint, result)
                for (plan, footprint, _), result in zip(entries, results)]

    def predict_batch(self, model: ModelConfig,
                      plans: list[ParallelismConfig],
                      training: TrainingConfig) -> list[IterationPrediction]:
        """Predict several plans for one model, batching shared structures.

        Equivalent to ``[self.predict(model, p, training) for p in
        plans]`` — bit-identical predictions in plan order — but plans
        whose compiled structures coincide replay in one vectorized
        sweep. Like :meth:`predict`, raises on the first infeasible
        plan; callers that need per-plan feasibility (the DSE explorers)
        call :meth:`prepare_checked` / :meth:`predict_prepared`
        themselves.
        """
        entries = []
        for plan in plans:
            footprint, prepared = self.prepare_checked(model, plan, training)
            entries.append((plan, footprint, prepared))
        return self.predict_prepared(model, training, entries)

    def predict_description(self, description: InputDescription,
                            ) -> IterationPrediction:
        """Predict from a paper-style input description file."""
        description.validate()
        return self.predict(description.model, description.plan,
                            description.training)

    # ------------------------------------------------------------------
    # End-to-end estimation
    # ------------------------------------------------------------------
    def estimate_training(self, model: ModelConfig, plan: ParallelismConfig,
                          training: TrainingConfig, *,
                          pricing: PricingModel = DEFAULT_PRICING,
                          ) -> TrainingEstimate:
        """End-to-end wall-clock time and dollar cost (Table I columns).

        Total time = predicted iteration time x (total tokens / tokens
        per iteration), as in Section III-E.
        """
        prediction = self.predict(model, plan, training)
        iterations = training.num_iterations(model)
        total_seconds = prediction.iteration_time * iterations
        dollars_per_hour = pricing.dollars_per_hour(plan.total_gpus)
        dollars_total = pricing.cost(plan.total_gpus, total_seconds)
        return TrainingEstimate(
            iteration_time=prediction.iteration_time,
            num_iterations=iterations,
            total_days=total_seconds / SECONDS_PER_DAY,
            gpu_compute_utilization=prediction.gpu_compute_utilization,
            num_gpus=plan.total_gpus,
            dollars_per_hour=dollars_per_hour,
            dollars_total=dollars_total,
        )

    # ------------------------------------------------------------------
    # Profiling introspection (Section III-F)
    # ------------------------------------------------------------------
    @property
    def profiling_stats(self) -> dict[str, int]:
        """Necessary-operator counters proving the O(1) profiling cost,
        plus this instance's structure-cache hit/miss split."""
        return {
            "operators_profiled": self.lookup.num_profiled,
            "lookups_served_from_table": self.lookup.num_reused,
            "kernels_traced": self.tracer.stats.kernels_traced,
            "predictions": self.num_predictions,
            "structure_cache_hits": self.structure_cache_hits,
            "structure_cache_misses": self.structure_cache_misses,
        }


def training_days_for_utilization(model: ModelConfig, total_tokens: int,
                                  num_gpus: int, utilization: float,
                                  peak_flops_per_gpu: float) -> float:
    """Closed-form training days at a given achieved utilization.

    The Figure-1 curve: total FLOPs to train the LLM divided by the
    aggregate *effective* FLOPS of the cluster.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    total_flops = model.flops_per_token() * total_tokens
    effective = num_gpus * peak_flops_per_gpu * utilization
    return total_flops / effective / SECONDS_PER_DAY


def cost_for_utilization(model: ModelConfig, total_tokens: int,
                         num_gpus: int, utilization: float,
                         peak_flops_per_gpu: float, *,
                         pricing: PricingModel = DEFAULT_PRICING) -> float:
    """Training cost in dollars at a given achieved utilization."""
    days = training_days_for_utilization(model, total_tokens, num_gpus,
                                         utilization, peak_flops_per_gpu)
    return pricing.dollars_per_hour(num_gpus) * days * (SECONDS_PER_DAY
                                                        / SECONDS_PER_HOUR)
