"""Algorithm 1: replaying the task-granularity execution graph.

Implements the paper's simulation algorithm verbatim: initialise a
per-GPU timeline and a FIFO task queue with all dependency-free tasks;
repeatedly pop a task, advance its device's timeline to
``max(T[i], start + duration)``, propagate the finish time to children,
decrement their reference counts, and enqueue newly-ready tasks. The
iteration time is the maximum timeline across devices.

Computation/communication overlap (Figure 5a) falls out naturally: tasks
on a device's ``comm`` stream have no chain edge to the compute stream,
so a gradient-bucket All-Reduce's start time is bound only by its data
dependency, letting it run concurrently with backward compute — exactly
the behaviour line 12 of Algorithm 1 must "faithfully model".

The engine never mutates the graph, so one built graph can be replayed
many times (e.g. with scaled durations for sensitivity studies).
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.graph.structure import COMPUTE_STREAM, ExecutionGraph
from repro.sim.results import SimulationResult, TimelineEvent


def simulate(graph: ExecutionGraph, *,
             record_timeline: bool = False) -> SimulationResult:
    """Estimate single-iteration training time from a task graph.

    Args:
        graph: Execution graph from :class:`~repro.graph.builder.GraphBuilder`.
        record_timeline: Also record per-task (start, finish) events —
            costs memory on large graphs, invaluable for tests and traces.

    Returns:
        A :class:`~repro.sim.results.SimulationResult` whose
        ``iteration_time`` is the predicted single-iteration latency.

    Raises:
        SimulationError: If the graph contains a dependency cycle (some
            tasks never become ready).
    """
    nodes = graph.nodes
    num_tasks = len(nodes)
    if num_tasks == 0:
        raise SimulationError("cannot simulate an empty graph")

    ref = [node.num_parents for node in nodes]
    start = [0.0] * num_tasks
    queue: deque[int] = deque(node.task_id for node in nodes
                              if node.num_parents == 0)

    timeline: dict[int, float] = {device: 0.0
                                  for device in range(graph.num_devices)}
    busy: dict[int, dict[str, float]] = {
        device: {} for device in range(graph.num_devices)}
    events: list[TimelineEvent] = [] if record_timeline else None
    executed = 0
    makespan = 0.0

    while queue:
        task_id = queue.popleft()  # fetch a task in FIFO order
        node = nodes[task_id]
        task_start = start[task_id]
        finish = task_start + node.duration
        device_clock = timeline.get(node.device, 0.0)
        timeline[node.device] = max(device_clock, finish)
        makespan = max(makespan, finish)
        executed += 1

        device_busy = busy.setdefault(node.device, {})
        device_busy[node.kind] = device_busy.get(node.kind, 0.0) + node.duration
        if events is not None:
            events.append(TimelineEvent(task_id=task_id, device=node.device,
                                        stream=node.stream, kind=node.kind,
                                        label=node.label, start=task_start,
                                        finish=finish))

        for child in node.children:
            if start[child] < finish:
                start[child] = finish
            ref[child] -= 1
            if ref[child] == 0:
                queue.append(child)

    if executed != num_tasks:
        raise SimulationError(
            f"task graph deadlocked: {executed}/{num_tasks} tasks executed "
            "(dependency cycle)")

    return SimulationResult(iteration_time=makespan, num_tasks=num_tasks,
                            device_timeline=timeline, device_busy=busy,
                            events=events, metadata=dict(graph.metadata))


def critical_path_length(graph: ExecutionGraph) -> float:
    """Longest dependency chain (ignoring stream serialisation).

    A lower bound on the iteration time, useful as a simulation
    cross-check: ``critical_path <= simulate(...).iteration_time``.
    """
    nodes = graph.nodes
    finish = [0.0] * len(nodes)
    ref = [node.num_parents for node in nodes]
    queue: deque[int] = deque(graph.roots())
    visited = 0
    best = 0.0
    while queue:
        task_id = queue.popleft()
        node = nodes[task_id]
        end = finish[task_id] + node.duration
        best = max(best, end)
        visited += 1
        for child in node.children:
            if finish[child] < end:
                finish[child] = end
            ref[child] -= 1
            if ref[child] == 0:
                queue.append(child)
    if visited != len(nodes):
        raise SimulationError("graph has a cycle; critical path undefined")
    return best


def compute_idle_fraction(result: SimulationResult) -> float:
    """Average fraction of the iteration each device's compute sits idle.

    This is the pipeline-bubble + exposed-communication fraction the
    paper's utilization analysis turns into wasted dollars (Figure 1).
    """
    total = result.iteration_time
    if total <= 0:
        return 0.0
    fractions = []
    for device in sorted(result.device_busy):
        compute = sum(duration for kind, duration
                      in result.device_busy[device].items()
                      if kind in ("compute", "weight_update"))
        fractions.append(max(0.0, 1.0 - compute / total))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def stream_serialisation_check(graph: ExecutionGraph,
                               result: SimulationResult) -> bool:
    """Verify no two compute tasks of one device overlap in a recorded
    timeline — the invariant the chain edges are meant to guarantee."""
    if result.events is None:
        raise SimulationError("run simulate(record_timeline=True) first")
    by_device: dict[int, list[TimelineEvent]] = {}
    for event in result.events:
        if event.stream == COMPUTE_STREAM:
            by_device.setdefault(event.device, []).append(event)
    tolerance = 1e-12
    for device_events in by_device.values():
        device_events.sort(key=lambda e: e.start)
        for earlier, later in zip(device_events, device_events[1:]):
            if later.start < earlier.finish - tolerance:
                return False
    return True
