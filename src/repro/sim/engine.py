"""Algorithm 1: replaying the task-granularity execution graph.

Implements the paper's simulation algorithm: initialise a per-GPU
timeline and a FIFO task queue with all dependency-free tasks;
repeatedly pop a task, advance its device's timeline to
``max(T[i], start + duration)``, propagate the finish time to children,
decrement their reference counts, and enqueue newly-ready tasks. The
iteration time is the maximum timeline across devices.

Computation/communication overlap (Figure 5a) falls out naturally: tasks
on a device's ``comm`` stream have no chain edge to the compute stream,
so a gradient-bucket All-Reduce's start time is bound only by its data
dependency, letting it run concurrently with backward compute — exactly
the behaviour line 12 of Algorithm 1 must "faithfully model".

Two engines implement the algorithm:

* :func:`simulate_reference` — the verbatim per-task Python loop over
  :class:`~repro.graph.structure.TaskNode` objects, kept as the
  executable specification and equivalence-test oracle.
* :func:`simulate` / :func:`simulate_retimed` — the compiled engine.
  The FIFO pop order of Algorithm 1 is purely structural (durations
  never change which task is popped next), so it is precomputed once
  when a graph is compiled into a
  :class:`~repro.graph.structure.GraphStructure`; replay is then a
  single array pass in that order — no dicts, no deque, no per-task
  object churn, :class:`~repro.sim.results.TimelineEvent` objects
  materialized only when ``record_timeline=True``. Results are
  bit-identical to the reference engine (same floating-point operations
  in the same order; see ``tests/test_sim_equivalence.py``).

Neither engine mutates the graph, so one built graph can be replayed
many times — and one *compiled structure* can be replayed with many
duration vectors (``simulate_retimed``), which is what design-space
sweeps and perturbed-hardware studies exploit. When a consumer holds a
whole *batch* of duration vectors for one structure — a group of
structure-affine DSE candidates, K testbed perturbation samples, an
alpha ablation's derating grid — :func:`simulate_retimed_batch` sweeps
all of them in one pass over a ``(tasks x N)`` matrix, bit-identical
column-for-column to the scalar engine (``tests/test_sim_batch.py``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.graph.structure import (COMPUTE_STREAM, ExecutionGraph,
                                   GraphStructure)
from repro.sim.results import SimulationResult, TimelineEvent


def simulate(graph: ExecutionGraph | GraphStructure, *,
             record_timeline: bool = False) -> SimulationResult:
    """Estimate single-iteration training time from a task graph.

    Compiles the graph into its :class:`GraphStructure` replay form
    (memoized on the graph object) and replays it with the compiled
    engine. Results are bit-identical to :func:`simulate_reference`.

    Args:
        graph: Execution graph from
            :class:`~repro.graph.builder.GraphBuilder`, or an
            already-compiled :class:`GraphStructure`.
        record_timeline: Also record per-task (start, finish) events —
            costs memory on large graphs, invaluable for tests and traces.

    Returns:
        A :class:`~repro.sim.results.SimulationResult` whose
        ``iteration_time`` is the predicted single-iteration latency.

    Raises:
        SimulationError: If the graph contains a dependency cycle (some
            tasks never become ready).
    """
    if isinstance(graph, GraphStructure):
        return simulate_retimed(graph, record_timeline=record_timeline)
    if len(graph.nodes) == 0:
        raise SimulationError("cannot simulate an empty graph")
    structure = graph.compiled()
    # The compiled topology is memoized on the graph, but durations are
    # re-read from the nodes every call: replaying one graph with
    # scaled/mutated durations (sensitivity studies) must see the
    # current values, exactly as the reference engine does.
    nodes = graph.nodes
    durations = [nodes[task].duration for task in structure.task_ids]
    return simulate_retimed(structure, durations,
                            record_timeline=record_timeline,
                            metadata=graph.metadata)


def simulate_retimed(structure: GraphStructure,
                     durations: "np.ndarray | list[float] | None" = None, *,
                     record_timeline: bool = False,
                     metadata: dict | None = None) -> SimulationResult:
    """Replay a compiled structure under a given duration vector.

    This is the compiled engine's core: one pass over the precomputed
    replay order propagating finish times through the CSR child arrays,
    then vectorized reductions for the per-device timelines and busy
    accounting. Sweeps that only change task *timings* (micro-batch
    size re-timing, perturbed device/NCCL models, testbed noise) call
    this directly and skip graph construction entirely.

    Args:
        structure: Compiled topology
            (:meth:`~repro.graph.structure.GraphStructure.compile` or
            :meth:`~repro.graph.builder.GraphBuilder.compile`).
        durations: Per-task durations in *replay order* (as produced by
            :meth:`~repro.graph.structure.GraphStructure.retime`).
            Defaults to the structure's baseline durations.
        record_timeline: Materialize per-task TimelineEvents.
        metadata: Override the result metadata (defaults to the
            structure's compile-time metadata).

    Raises:
        SimulationError: Empty structure, wrong-length duration vector,
            or negative durations.
    """
    num_tasks = structure.num_tasks
    if num_tasks == 0:
        raise SimulationError("cannot simulate an empty graph")
    if durations is None or durations is structure.duration:
        durations_np = structure.duration
        duration_list = structure.duration_view
    else:
        durations_np = np.asarray(durations, dtype=np.float64)
        if durations_np.shape != (num_tasks,):
            raise SimulationError(
                f"duration vector has {durations_np.shape} entries, "
                f"structure has {num_tasks} tasks")
        if durations_np.size and float(durations_np.min()) < 0.0:
            raise SimulationError("durations must be non-negative")
        duration_list = durations_np.tolist()

    # Hot loop: finish-time propagation in precompiled replay order.
    # Children always sit at later positions, so each task's start is
    # final when visited. Same float operations in the same order as
    # the reference engine's queue loop.
    start = [0.0] * num_tasks
    position = 0
    for children in structure.children_view:
        finish = start[position] + duration_list[position]
        for child in children:
            if start[child] < finish:
                start[child] = finish
        position += 1

    finish_np = np.asarray(start, dtype=np.float64) + durations_np
    makespan = float(finish_np.max())
    num_devices = structure.num_devices
    timeline_np = np.zeros(num_devices, dtype=np.float64)
    np.maximum.at(timeline_np, structure.device, finish_np)
    timeline = dict(enumerate(timeline_np.tolist()))
    busy = _busy_dict(structure, durations_np)

    events: list[TimelineEvent] | None = None
    if record_timeline:
        kinds = structure.kinds
        events = [
            TimelineEvent(task_id=task_id, device=device, stream=stream,
                          kind=kinds[kind], label=label, start=task_start,
                          finish=task_finish)
            for task_id, device, stream, kind, label, task_start, task_finish
            in zip(structure.task_ids, structure.device_ids,
                   structure.stream, structure.kind_index.tolist(),
                   structure.label, start, finish_np.tolist())]

    source = structure.metadata if metadata is None else metadata
    return SimulationResult(iteration_time=makespan, num_tasks=num_tasks,
                            device_timeline=timeline, device_busy=busy,
                            events=events, metadata=dict(source))


def _busy_dict(structure: GraphStructure,
               durations_np: np.ndarray) -> dict[int, dict[str, float]]:
    """Per-device, per-kind busy accounting for one duration vector.

    Shared by the scalar and batched engines so a batch column's busy
    dict is produced by the byte-for-byte same accumulation (and dict
    insertion order) as a scalar replay of that column.
    """
    num_devices = structure.num_devices
    num_kinds = len(structure.kinds)
    busy_flat = np.bincount(structure.busy_index, weights=durations_np,
                            minlength=num_devices * num_kinds).tolist()
    kinds = structure.kinds
    return {device: {kinds[kind]: busy_flat[device * num_kinds + kind]
                     for kind in structure.device_kind_order[device]}
            for device in range(num_devices)}


class BatchSimulationResult:
    """Output of one batched replay: N columns, one result each.

    ``makespans[j]`` is bit-identical to
    ``simulate_retimed(structure, durations_matrix[:, j]).iteration_time``
    — the batched sweep performs the same IEEE-754 operations as the
    scalar engine, only grouped across columns (see
    :class:`~repro.graph.structure.BatchSweepPlan`). Full per-column
    :class:`SimulationResult` objects (timeline and busy dicts in the
    scalar engine's exact layout) are materialized on demand via
    :meth:`column`, so makespan-only consumers — DSE objective sweeps,
    throughput benches — never pay for N dict constructions. The device
    timeline matrix is likewise computed lazily on first access (it
    needs a full gather of the finish matrix, comparable in cost to the
    whole chunked sweep) and the finish matrix is released afterwards.

    Attributes:
        makespans: Per-column iteration times, shape ``(batch_size,)``.
        num_tasks: Tasks replayed per column.
        batch_size: Number of duration columns replayed.
        metadata: Default metadata attached to materialized columns.
    """

    def __init__(self, *, structure: GraphStructure, makespans: np.ndarray,
                 finish_matrix: np.ndarray, durations_matrix: np.ndarray,
                 metadata: dict) -> None:
        self._structure = structure
        self._durations = durations_matrix
        self._finish = finish_matrix
        self._device_timeline: np.ndarray | None = None
        self.makespans = makespans
        self.num_tasks = structure.num_tasks
        self.batch_size = int(durations_matrix.shape[1])
        self.metadata = metadata

    @property
    def device_timeline(self) -> np.ndarray:
        """Per-device final clocks, shape ``(num_devices, batch_size)``.

        Each value is the exact maximum of its device's finish times —
        the same quantity the scalar engine accumulates with
        ``np.maximum.at`` — computed here by one segmented fold over
        the device-sorted finish rows.
        """
        if self._device_timeline is None:
            plan = self._structure.batch_plan()
            timeline = np.zeros((self._structure.num_devices,
                                 self.batch_size), dtype=np.float64)
            if self.batch_size:
                timeline[plan.present_devices] = np.maximum.reduceat(
                    self._finish[plan.device_order], plan.device_seg,
                    axis=0)
            self._device_timeline = timeline
            self._finish = None  # free the (tasks x N) buffer
        return self._device_timeline

    def __len__(self) -> int:
        return self.batch_size

    def iteration_times(self) -> list[float]:
        """Per-column makespans as plain floats."""
        return self.makespans.tolist()

    def device_busy(self, column: int) -> dict[int, dict[str, float]]:
        """Busy accounting of one column (scalar engine's dict layout)."""
        return _busy_dict(self._structure,
                          np.ascontiguousarray(self._durations[:, column]))

    def column(self, column: int, *,
               metadata: dict | None = None) -> SimulationResult:
        """Materialize one column as a full :class:`SimulationResult`.

        Bit-identical to ``simulate_retimed(structure, matrix[:, column],
        metadata=metadata)`` field for field (no recorded timeline).
        """
        source = self.metadata if metadata is None else metadata
        return SimulationResult(
            iteration_time=float(self.makespans[column]),
            num_tasks=self.num_tasks,
            device_timeline=dict(enumerate(
                self.device_timeline[:, column].tolist())),
            device_busy=self.device_busy(column),
            events=None,
            metadata=dict(source))


def simulate_retimed_batch(structure: GraphStructure,
                           durations_matrix: "np.ndarray | list", *,
                           metadata: dict | None = None,
                           ) -> BatchSimulationResult:
    """Replay a compiled structure under N duration vectors in one pass.

    The batched core of the replay engine: one sweep over the
    structure's chunked schedule (:meth:`GraphStructure.batch_plan`)
    propagates all N columns' finish times together, so the graph walk
    — the scalar engine's per-task Python cost — is amortized across
    the whole batch. Design-space sweeps evaluating structure-affine
    candidate groups, the testbed emulator's perturbation samples, and
    alpha/noise ablations all feed dozens of timing vectors for one
    topology; batched replay keeps their per-vector cost near the
    memory-bandwidth floor (~10x scalar throughput at N=64 on the
    MT-NLG structure, gated in ``benchmarks/bench_sim_speed.py``).

    Every column is **bit-identical** to a scalar
    :func:`simulate_retimed` of that column: finishes are produced by
    the same single IEEE-754 addition, and all cross-task combination
    is through ``max``, which is exact and order-independent
    (property-enforced in ``tests/test_sim_batch.py``).

    Args:
        structure: Compiled topology.
        durations_matrix: ``(num_tasks, N)`` array of per-task durations
            in replay order, one column per replay. Any dtype/layout
            castable to float64 is accepted (float32, Fortran-ordered,
            strided views); ``N = 0`` yields an empty result.
        metadata: Default metadata for materialized columns (falls back
            to the structure's compile-time metadata).

    Raises:
        SimulationError: Empty structure, wrong-shape matrix, or
            negative durations.
    """
    num_tasks = structure.num_tasks
    if num_tasks == 0:
        raise SimulationError("cannot simulate an empty graph")
    matrix = np.ascontiguousarray(durations_matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != num_tasks:
        raise SimulationError(
            f"durations matrix has shape {matrix.shape}, expected "
            f"({num_tasks}, N) — one replay-order column per batched "
            "replay")
    if matrix.size and float(matrix.min()) < 0.0:
        raise SimulationError("durations must be non-negative")

    batch = matrix.shape[1]
    plan = structure.batch_plan()
    start = np.zeros((num_tasks, batch), dtype=np.float64)
    finish = np.empty((num_tasks, batch), dtype=np.float64)
    for a, b, src, seg, dst in plan.chunks:
        # All parents of [a, b) live in earlier chunks, so these starts
        # are final; finish rows use the same single addition as the
        # scalar hot loop.
        np.add(start[a:b], matrix[a:b], out=finish[a:b])
        if src is None:
            continue
        contribution = finish[src]
        if seg is not None:
            # Duplicate targets within the chunk: fold them first.
            contribution = np.maximum.reduceat(contribution, seg, axis=0)
        np.maximum(start[dst], contribution, out=contribution)
        start[dst] = contribution

    makespans = finish.max(axis=0) if batch else np.zeros(0)

    source = structure.metadata if metadata is None else metadata
    return BatchSimulationResult(structure=structure, makespans=makespans,
                                 finish_matrix=finish,
                                 durations_matrix=matrix,
                                 metadata=dict(source))


def simulate_reference(graph: ExecutionGraph, *,
                       record_timeline: bool = False) -> SimulationResult:
    """Reference Algorithm-1 implementation (per-task Python loop).

    Kept verbatim as the executable specification: the compiled engine
    (:func:`simulate` / :func:`simulate_retimed`) must be bit-identical
    to this on makespan, per-device timelines, busy accounting, and
    recorded event order (property-tested in
    ``tests/test_sim_equivalence.py``). Prefer :func:`simulate` for
    anything performance-sensitive.
    """
    nodes = graph.nodes
    num_tasks = len(nodes)
    if num_tasks == 0:
        raise SimulationError("cannot simulate an empty graph")

    ref = [node.num_parents for node in nodes]
    start = [0.0] * num_tasks
    queue: deque[int] = deque(node.task_id for node in nodes
                              if node.num_parents == 0)

    timeline: dict[int, float] = {device: 0.0
                                  for device in range(graph.num_devices)}
    busy: dict[int, dict[str, float]] = {
        device: {} for device in range(graph.num_devices)}
    events: list[TimelineEvent] | None = [] if record_timeline else None
    executed = 0
    makespan = 0.0

    while queue:
        task_id = queue.popleft()  # fetch a task in FIFO order
        node = nodes[task_id]
        task_start = start[task_id]
        finish = task_start + node.duration
        device_clock = timeline.get(node.device, 0.0)
        timeline[node.device] = max(device_clock, finish)
        makespan = max(makespan, finish)
        executed += 1

        device_busy = busy.setdefault(node.device, {})
        device_busy[node.kind] = device_busy.get(node.kind, 0.0) + node.duration
        if events is not None:
            events.append(TimelineEvent(task_id=task_id, device=node.device,
                                        stream=node.stream, kind=node.kind,
                                        label=node.label, start=task_start,
                                        finish=finish))

        for child in node.children:
            if start[child] < finish:
                start[child] = finish
            ref[child] -= 1
            if ref[child] == 0:
                queue.append(child)

    if executed != num_tasks:
        raise SimulationError(
            f"task graph deadlocked: {executed}/{num_tasks} tasks executed "
            "(dependency cycle)")

    return SimulationResult(iteration_time=makespan, num_tasks=num_tasks,
                            device_timeline=timeline, device_busy=busy,
                            events=events, metadata=dict(graph.metadata))


def critical_path_length(graph: ExecutionGraph) -> float:
    """Longest dependency chain (ignoring stream serialisation).

    A lower bound on the iteration time, useful as a simulation
    cross-check: ``critical_path <= simulate(...).iteration_time``.
    """
    nodes = graph.nodes
    finish = [0.0] * len(nodes)
    ref = [node.num_parents for node in nodes]
    queue: deque[int] = deque(graph.roots())
    visited = 0
    best = 0.0
    while queue:
        task_id = queue.popleft()
        node = nodes[task_id]
        end = finish[task_id] + node.duration
        best = max(best, end)
        visited += 1
        for child in node.children:
            if finish[child] < end:
                finish[child] = end
            ref[child] -= 1
            if ref[child] == 0:
                queue.append(child)
    if visited != len(nodes):
        raise SimulationError("graph has a cycle; critical path undefined")
    return best


def compute_idle_fraction(result: SimulationResult) -> float:
    """Average fraction of the iteration each device's compute sits idle.

    This is the pipeline-bubble + exposed-communication fraction the
    paper's utilization analysis turns into wasted dollars (Figure 1).
    """
    total = result.iteration_time
    if total <= 0:
        return 0.0
    fractions = []
    for device in sorted(result.device_busy):
        compute = sum(duration for kind, duration
                      in result.device_busy[device].items()
                      if kind in ("compute", "weight_update"))
        fractions.append(max(0.0, 1.0 - compute / total))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def stream_serialisation_check(graph: ExecutionGraph,
                               result: SimulationResult) -> bool:
    """Verify no two compute tasks of one device overlap in a recorded
    timeline — the invariant the chain edges are meant to guarantee."""
    if result.events is None:
        raise SimulationError("run simulate(record_timeline=True) first")
    by_device: dict[int, list[TimelineEvent]] = {}
    for event in result.events:
        if event.stream == COMPUTE_STREAM:
            by_device.setdefault(event.device, []).append(event)
    tolerance = 1e-12
    for device_events in by_device.values():
        device_events.sort(key=lambda e: e.start)
        for earlier, later in zip(device_events, device_events[1:]):
            if later.start < earlier.finish - tolerance:
                return False
    return True
