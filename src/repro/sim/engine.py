"""Algorithm 1: replaying the task-granularity execution graph.

Implements the paper's simulation algorithm: initialise a per-GPU
timeline and a FIFO task queue with all dependency-free tasks;
repeatedly pop a task, advance its device's timeline to
``max(T[i], start + duration)``, propagate the finish time to children,
decrement their reference counts, and enqueue newly-ready tasks. The
iteration time is the maximum timeline across devices.

Computation/communication overlap (Figure 5a) falls out naturally: tasks
on a device's ``comm`` stream have no chain edge to the compute stream,
so a gradient-bucket All-Reduce's start time is bound only by its data
dependency, letting it run concurrently with backward compute — exactly
the behaviour line 12 of Algorithm 1 must "faithfully model".

Two engines implement the algorithm:

* :func:`simulate_reference` — the verbatim per-task Python loop over
  :class:`~repro.graph.structure.TaskNode` objects, kept as the
  executable specification and equivalence-test oracle.
* :func:`simulate` / :func:`simulate_retimed` — the compiled engine.
  The FIFO pop order of Algorithm 1 is purely structural (durations
  never change which task is popped next), so it is precomputed once
  when a graph is compiled into a
  :class:`~repro.graph.structure.GraphStructure`; replay is then a
  single array pass in that order — no dicts, no deque, no per-task
  object churn, :class:`~repro.sim.results.TimelineEvent` objects
  materialized only when ``record_timeline=True``. Results are
  bit-identical to the reference engine (same floating-point operations
  in the same order; see ``tests/test_sim_equivalence.py``).

Neither engine mutates the graph, so one built graph can be replayed
many times — and one *compiled structure* can be replayed with many
duration vectors (``simulate_retimed``), which is what design-space
sweeps and perturbed-hardware studies exploit.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.graph.structure import (COMPUTE_STREAM, ExecutionGraph,
                                   GraphStructure)
from repro.sim.results import SimulationResult, TimelineEvent


def simulate(graph: ExecutionGraph | GraphStructure, *,
             record_timeline: bool = False) -> SimulationResult:
    """Estimate single-iteration training time from a task graph.

    Compiles the graph into its :class:`GraphStructure` replay form
    (memoized on the graph object) and replays it with the compiled
    engine. Results are bit-identical to :func:`simulate_reference`.

    Args:
        graph: Execution graph from
            :class:`~repro.graph.builder.GraphBuilder`, or an
            already-compiled :class:`GraphStructure`.
        record_timeline: Also record per-task (start, finish) events —
            costs memory on large graphs, invaluable for tests and traces.

    Returns:
        A :class:`~repro.sim.results.SimulationResult` whose
        ``iteration_time`` is the predicted single-iteration latency.

    Raises:
        SimulationError: If the graph contains a dependency cycle (some
            tasks never become ready).
    """
    if isinstance(graph, GraphStructure):
        return simulate_retimed(graph, record_timeline=record_timeline)
    if len(graph.nodes) == 0:
        raise SimulationError("cannot simulate an empty graph")
    structure = graph.compiled()
    # The compiled topology is memoized on the graph, but durations are
    # re-read from the nodes every call: replaying one graph with
    # scaled/mutated durations (sensitivity studies) must see the
    # current values, exactly as the reference engine does.
    nodes = graph.nodes
    durations = [nodes[task].duration for task in structure.task_ids]
    return simulate_retimed(structure, durations,
                            record_timeline=record_timeline,
                            metadata=graph.metadata)


def simulate_retimed(structure: GraphStructure,
                     durations: "np.ndarray | list[float] | None" = None, *,
                     record_timeline: bool = False,
                     metadata: dict | None = None) -> SimulationResult:
    """Replay a compiled structure under a given duration vector.

    This is the compiled engine's core: one pass over the precomputed
    replay order propagating finish times through the CSR child arrays,
    then vectorized reductions for the per-device timelines and busy
    accounting. Sweeps that only change task *timings* (micro-batch
    size re-timing, perturbed device/NCCL models, testbed noise) call
    this directly and skip graph construction entirely.

    Args:
        structure: Compiled topology
            (:meth:`~repro.graph.structure.GraphStructure.compile` or
            :meth:`~repro.graph.builder.GraphBuilder.compile`).
        durations: Per-task durations in *replay order* (as produced by
            :meth:`~repro.graph.structure.GraphStructure.retime`).
            Defaults to the structure's baseline durations.
        record_timeline: Materialize per-task TimelineEvents.
        metadata: Override the result metadata (defaults to the
            structure's compile-time metadata).

    Raises:
        SimulationError: Empty structure, wrong-length duration vector,
            or negative durations.
    """
    num_tasks = structure.num_tasks
    if num_tasks == 0:
        raise SimulationError("cannot simulate an empty graph")
    if durations is None or durations is structure.duration:
        durations_np = structure.duration
        duration_list = structure.duration_view
    else:
        durations_np = np.asarray(durations, dtype=np.float64)
        if durations_np.shape != (num_tasks,):
            raise SimulationError(
                f"duration vector has {durations_np.shape} entries, "
                f"structure has {num_tasks} tasks")
        if durations_np.size and float(durations_np.min()) < 0.0:
            raise SimulationError("durations must be non-negative")
        duration_list = durations_np.tolist()

    # Hot loop: finish-time propagation in precompiled replay order.
    # Children always sit at later positions, so each task's start is
    # final when visited. Same float operations in the same order as
    # the reference engine's queue loop.
    start = [0.0] * num_tasks
    position = 0
    for children in structure.children_view:
        finish = start[position] + duration_list[position]
        for child in children:
            if start[child] < finish:
                start[child] = finish
        position += 1

    finish_np = np.asarray(start, dtype=np.float64) + durations_np
    makespan = float(finish_np.max())
    num_devices = structure.num_devices
    num_kinds = len(structure.kinds)
    timeline_np = np.zeros(num_devices, dtype=np.float64)
    np.maximum.at(timeline_np, structure.device, finish_np)
    busy_flat = np.bincount(structure.busy_index, weights=durations_np,
                            minlength=num_devices * num_kinds).tolist()

    timeline = dict(enumerate(timeline_np.tolist()))
    kinds = structure.kinds
    busy = {device: {kinds[kind]: busy_flat[device * num_kinds + kind]
                     for kind in structure.device_kind_order[device]}
            for device in range(num_devices)}

    events: list[TimelineEvent] | None = None
    if record_timeline:
        events = [
            TimelineEvent(task_id=task_id, device=device, stream=stream,
                          kind=kinds[kind], label=label, start=task_start,
                          finish=task_finish)
            for task_id, device, stream, kind, label, task_start, task_finish
            in zip(structure.task_ids, structure.device_ids,
                   structure.stream, structure.kind_index.tolist(),
                   structure.label, start, finish_np.tolist())]

    source = structure.metadata if metadata is None else metadata
    return SimulationResult(iteration_time=makespan, num_tasks=num_tasks,
                            device_timeline=timeline, device_busy=busy,
                            events=events, metadata=dict(source))


def simulate_reference(graph: ExecutionGraph, *,
                       record_timeline: bool = False) -> SimulationResult:
    """Reference Algorithm-1 implementation (per-task Python loop).

    Kept verbatim as the executable specification: the compiled engine
    (:func:`simulate` / :func:`simulate_retimed`) must be bit-identical
    to this on makespan, per-device timelines, busy accounting, and
    recorded event order (property-tested in
    ``tests/test_sim_equivalence.py``). Prefer :func:`simulate` for
    anything performance-sensitive.
    """
    nodes = graph.nodes
    num_tasks = len(nodes)
    if num_tasks == 0:
        raise SimulationError("cannot simulate an empty graph")

    ref = [node.num_parents for node in nodes]
    start = [0.0] * num_tasks
    queue: deque[int] = deque(node.task_id for node in nodes
                              if node.num_parents == 0)

    timeline: dict[int, float] = {device: 0.0
                                  for device in range(graph.num_devices)}
    busy: dict[int, dict[str, float]] = {
        device: {} for device in range(graph.num_devices)}
    events: list[TimelineEvent] | None = [] if record_timeline else None
    executed = 0
    makespan = 0.0

    while queue:
        task_id = queue.popleft()  # fetch a task in FIFO order
        node = nodes[task_id]
        task_start = start[task_id]
        finish = task_start + node.duration
        device_clock = timeline.get(node.device, 0.0)
        timeline[node.device] = max(device_clock, finish)
        makespan = max(makespan, finish)
        executed += 1

        device_busy = busy.setdefault(node.device, {})
        device_busy[node.kind] = device_busy.get(node.kind, 0.0) + node.duration
        if events is not None:
            events.append(TimelineEvent(task_id=task_id, device=node.device,
                                        stream=node.stream, kind=node.kind,
                                        label=node.label, start=task_start,
                                        finish=finish))

        for child in node.children:
            if start[child] < finish:
                start[child] = finish
            ref[child] -= 1
            if ref[child] == 0:
                queue.append(child)

    if executed != num_tasks:
        raise SimulationError(
            f"task graph deadlocked: {executed}/{num_tasks} tasks executed "
            "(dependency cycle)")

    return SimulationResult(iteration_time=makespan, num_tasks=num_tasks,
                            device_timeline=timeline, device_busy=busy,
                            events=events, metadata=dict(graph.metadata))


def critical_path_length(graph: ExecutionGraph) -> float:
    """Longest dependency chain (ignoring stream serialisation).

    A lower bound on the iteration time, useful as a simulation
    cross-check: ``critical_path <= simulate(...).iteration_time``.
    """
    nodes = graph.nodes
    finish = [0.0] * len(nodes)
    ref = [node.num_parents for node in nodes]
    queue: deque[int] = deque(graph.roots())
    visited = 0
    best = 0.0
    while queue:
        task_id = queue.popleft()
        node = nodes[task_id]
        end = finish[task_id] + node.duration
        best = max(best, end)
        visited += 1
        for child in node.children:
            if finish[child] < end:
                finish[child] = end
            ref[child] -= 1
            if ref[child] == 0:
                queue.append(child)
    if visited != len(nodes):
        raise SimulationError("graph has a cycle; critical path undefined")
    return best


def compute_idle_fraction(result: SimulationResult) -> float:
    """Average fraction of the iteration each device's compute sits idle.

    This is the pipeline-bubble + exposed-communication fraction the
    paper's utilization analysis turns into wasted dollars (Figure 1).
    """
    total = result.iteration_time
    if total <= 0:
        return 0.0
    fractions = []
    for device in sorted(result.device_busy):
        compute = sum(duration for kind, duration
                      in result.device_busy[device].items()
                      if kind in ("compute", "weight_update"))
        fractions.append(max(0.0, 1.0 - compute / total))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def stream_serialisation_check(graph: ExecutionGraph,
                               result: SimulationResult) -> bool:
    """Verify no two compute tasks of one device overlap in a recorded
    timeline — the invariant the chain edges are meant to guarantee."""
    if result.events is None:
        raise SimulationError("run simulate(record_timeline=True) first")
    by_device: dict[int, list[TimelineEvent]] = {}
    for event in result.events:
        if event.stream == COMPUTE_STREAM:
            by_device.setdefault(event.device, []).append(event)
    tolerance = 1e-12
    for device_events in by_device.values():
        device_events.sort(key=lambda e: e.start)
        for earlier, later in zip(device_events, device_events[1:]):
            if later.start < earlier.finish - tolerance:
                return False
    return True
