"""Simulation core: Algorithm-1 engine, results, and the VTrain facade."""

from repro.sim.analysis import (DeviceProfile, critical_device,
                                device_profiles, exposed_dp_fraction,
                                pipeline_bubble_time,
                                stage_utilization_profile, summarize)
from repro.sim.engine import (BatchSimulationResult, compute_idle_fraction,
                              critical_path_length, simulate,
                              simulate_reference, simulate_retimed,
                              simulate_retimed_batch,
                              stream_serialisation_check)
from repro.sim.estimator import (PredictTiming, PreparedPlan, VTrain,
                                 cost_for_utilization,
                                 training_days_for_utilization)
from repro.sim.results import (IterationPrediction, SimulationResult,
                               TimelineEvent, TrainingEstimate)

__all__ = [
    "DeviceProfile",
    "critical_device",
    "device_profiles",
    "exposed_dp_fraction",
    "pipeline_bubble_time",
    "stage_utilization_profile",
    "summarize",
    "IterationPrediction",
    "PredictTiming",
    "PreparedPlan",
    "SimulationResult",
    "TimelineEvent",
    "TrainingEstimate",
    "VTrain",
    "BatchSimulationResult",
    "compute_idle_fraction",
    "cost_for_utilization",
    "critical_path_length",
    "simulate",
    "simulate_reference",
    "simulate_retimed",
    "simulate_retimed_batch",
    "stream_serialisation_check",
    "training_days_for_utilization",
]
