"""Timeline analysis: where does an iteration's time go?

The raw Algorithm-1 result gives one number (iteration time) plus busy
counters. This module turns a *recorded* timeline into the quantities
practitioners actually reason about when reading Figure 10/11-style
results:

* per-device pipeline bubble (idle compute time);
* exposed vs. overlapped communication (how much of the DP All-Reduce
  actually hid under backward compute — the Figure 5 story, measured);
* a per-stage utilization profile (first/last stages carry the
  embedding/LM-head extras, interior stages idle in the bubble);
* the critical device (the stage that sets the iteration time).

All functions take the :class:`~repro.sim.results.SimulationResult` of
``simulate(graph, record_timeline=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.graph.structure import (COMPUTE_STREAM, KIND_COMPUTE,
                                   KIND_DP_COMM, KIND_PP_COMM, KIND_TP_COMM,
                                   KIND_WEIGHT_UPDATE)
from repro.sim.results import SimulationResult, TimelineEvent

COMPUTE_KINDS = (KIND_COMPUTE, KIND_WEIGHT_UPDATE)


def _require_events(result: SimulationResult) -> list[TimelineEvent]:
    if result.events is None:
        raise SimulationError(
            "timeline analysis needs simulate(..., record_timeline=True)")
    return result.events


@dataclass(frozen=True)
class DeviceProfile:
    """Time accounting for one logical device (pipeline stage).

    All fields are in seconds over one iteration.
    """

    device: int
    compute_busy: float
    tp_comm: float
    dp_comm_total: float
    dp_comm_exposed: float
    pp_comm_total: float
    idle: float

    @property
    def compute_utilization(self) -> float:
        """Fraction of the iteration this stage spent computing."""
        total = self.compute_busy + self.tp_comm + self.idle
        if total <= 0:
            return 0.0
        return self.compute_busy / total


def _merge_intervals(intervals: list[tuple[float, float]]
                     ) -> list[tuple[float, float]]:
    """Union of possibly-overlapping [start, finish) intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, finish in intervals[1:]:
        last_start, last_finish = merged[-1]
        if start <= last_finish:
            merged[-1] = (last_start, max(last_finish, finish))
        else:
            merged.append((start, finish))
    return merged


def _interval_overlap(a: list[tuple[float, float]],
                      b: list[tuple[float, float]]) -> float:
    """Total length of the intersection of two merged interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def device_profiles(result: SimulationResult) -> dict[int, DeviceProfile]:
    """Per-device time accounting from a recorded timeline."""
    events = _require_events(result)
    horizon = result.iteration_time

    by_device: dict[int, list[TimelineEvent]] = {}
    for event in events:
        by_device.setdefault(event.device, []).append(event)

    profiles: dict[int, DeviceProfile] = {}
    for device, device_events in sorted(by_device.items()):
        compute = sum(e.duration for e in device_events
                      if e.kind in COMPUTE_KINDS)
        tp = sum(e.duration for e in device_events if e.kind == KIND_TP_COMM)
        dp_total = sum(e.duration for e in device_events
                       if e.kind == KIND_DP_COMM)
        pp_total = sum(e.duration for e in device_events
                       if e.kind == KIND_PP_COMM)
        busy_windows = _merge_intervals(
            [(e.start, e.finish) for e in device_events
             if e.stream == COMPUTE_STREAM])
        dp_windows = _merge_intervals(
            [(e.start, e.finish) for e in device_events
             if e.kind == KIND_DP_COMM])
        overlapped = _interval_overlap(busy_windows, dp_windows)
        compute_stream_busy = sum(hi - lo for lo, hi in busy_windows)
        profiles[device] = DeviceProfile(
            device=device,
            compute_busy=compute,
            tp_comm=tp,
            dp_comm_total=dp_total,
            dp_comm_exposed=max(0.0, dp_total - overlapped),
            pp_comm_total=pp_total,
            idle=max(0.0, horizon - compute_stream_busy),
        )
    return profiles


def pipeline_bubble_time(result: SimulationResult) -> float:
    """Average per-device compute-stream idle time (the bubble)."""
    profiles = device_profiles(result)
    if not profiles:
        return 0.0
    return sum(p.idle for p in profiles.values()) / len(profiles)


def exposed_dp_fraction(result: SimulationResult) -> float:
    """Fraction of DP All-Reduce time not hidden under compute.

    Close to 0 means gradient bucketing achieved the Figure 5(a)
    overlap; close to 1 reproduces the Figure 5(b) exposed reduction.
    """
    profiles = device_profiles(result)
    total = sum(p.dp_comm_total for p in profiles.values())
    if total <= 0:
        return 0.0
    exposed = sum(p.dp_comm_exposed for p in profiles.values())
    return exposed / total


def critical_device(result: SimulationResult) -> int:
    """The stage whose timeline sets the iteration time."""
    if not result.device_timeline:
        raise SimulationError("no devices in result")
    return max(result.device_timeline, key=result.device_timeline.get)


def stage_utilization_profile(result: SimulationResult) -> list[float]:
    """Compute utilization per pipeline stage, in stage order.

    Interior stages of a deep pipeline show the classic bubble dip at
    the start/end; the first stage pays the embedding, the last the LM
    head.
    """
    profiles = device_profiles(result)
    return [profiles[device].compute_utilization
            for device in sorted(profiles)]


def summarize(result: SimulationResult) -> dict[str, float]:
    """One-call summary used by reports and notebooks."""
    profiles = device_profiles(result)
    num = max(1, len(profiles))
    return {
        "iteration_time": result.iteration_time,
        "avg_bubble_s": pipeline_bubble_time(result),
        "avg_bubble_fraction": pipeline_bubble_time(result)
        / result.iteration_time if result.iteration_time else 0.0,
        "exposed_dp_fraction": exposed_dp_fraction(result),
        "avg_tp_comm_s": sum(p.tp_comm for p in profiles.values()) / num,
        "critical_device": float(critical_device(result)),
    }
