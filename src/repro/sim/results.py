"""Result containers for simulation, prediction, and cost estimation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graph.structure import (KIND_COMPUTE, KIND_DP_COMM, KIND_PP_COMM,
                                   KIND_TP_COMM, KIND_WEIGHT_UPDATE)

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class TimelineEvent:
    """One executed task in a recorded timeline (chrome-trace friendly)."""

    task_id: int
    device: int
    stream: str
    kind: str
    label: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Task latency in seconds."""
        return self.finish - self.start


@dataclass
class SimulationResult:
    """Raw output of Algorithm 1 for one graph replay.

    Attributes:
        iteration_time: Predicted single-iteration training time (s).
        num_tasks: Tasks executed.
        device_timeline: Final per-device clock (Algorithm 1's ``T``).
        device_busy: Per-device, per-kind busy seconds.
        events: Recorded timeline (None unless requested).
        metadata: Graph metadata (plan, granularity, ...).
    """

    iteration_time: float
    num_tasks: int
    device_timeline: dict[int, float]
    device_busy: dict[int, dict[str, float]]
    events: list[TimelineEvent] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def busy_seconds(self, kind: str) -> float:
        """Total busy seconds across devices for one task kind."""
        return sum(per_device.get(kind, 0.0)
                   for per_device in self.device_busy.values())

    def breakdown(self) -> dict[str, float]:
        """Aggregate busy time by category (compute, TP/DP/PP comm, WU)."""
        return {kind: self.busy_seconds(kind)
                for kind in (KIND_COMPUTE, KIND_TP_COMM, KIND_DP_COMM,
                             KIND_PP_COMM, KIND_WEIGHT_UPDATE)}

    def to_chrome_trace(self) -> list[dict[str, Any]]:
        """Chrome ``chrome://tracing`` JSON events (requires a recorded
        timeline)."""
        if self.events is None:
            return []
        trace = []
        for event in self.events:
            trace.append({
                "name": event.label,
                "cat": event.kind,
                "ph": "X",
                "ts": event.start * 1e6,
                "dur": event.duration * 1e6,
                "pid": event.device,
                "tid": event.stream,
            })
        return trace


@dataclass(frozen=True)
class IterationPrediction:
    """vTrain's answer for one design point.

    Attributes:
        iteration_time: Predicted single-iteration latency (s).
        gpu_compute_utilization: Model FLOPs achieved relative to the
            aggregate hardware peak (the Figure 1 / Figure 10(b) metric),
            in [0, 1].
        tokens_per_iteration: Tokens consumed per iteration.
        model_flops: Useful FLOPs per iteration.
        num_gpus: GPUs the plan occupies.
        memory_per_gpu: Peak per-GPU memory footprint (bytes).
        simulation: The raw Algorithm-1 result.
    """

    iteration_time: float
    gpu_compute_utilization: float
    tokens_per_iteration: int
    model_flops: float
    num_gpus: int
    memory_per_gpu: float
    simulation: SimulationResult

    @property
    def achieved_flops_per_gpu(self) -> float:
        """Achieved useful FLOP/s per GPU."""
        if self.iteration_time <= 0:
            return 0.0
        return self.model_flops / self.iteration_time / self.num_gpus

    @property
    def tokens_per_second(self) -> float:
        """System-level training throughput."""
        if self.iteration_time <= 0:
            return 0.0
        return self.tokens_per_iteration / self.iteration_time


@dataclass(frozen=True)
class InferencePrediction:
    """vTrain's answer for one serving design point.

    One prefill-graph replay (time-to-first-token) plus one decode-step
    replay (time-per-output-token) characterise a static serving plan:
    a full request costs ``prefill + gen_len * decode_step`` seconds and
    the replica sustains ``batch_size / decode_step`` output tokens per
    second once saturated. Data parallelism replicates servers —
    ``num_replicas`` scales throughput, never latency.

    Attributes:
        prefill_time: Prefill-graph makespan — time to first token (s).
        decode_step_time: Decode-step-graph makespan — time per output
            token (s).
        batch_size: Requests served concurrently *per replica*.
        prompt_len: Prompt tokens per request.
        gen_len: Generated tokens per request.
        num_replicas: Data-parallel server replicas.
        num_gpus: Total GPUs across all replicas.
        memory_per_gpu: Peak per-GPU memory footprint (bytes),
            weights + KV cache + working set.
        prefill_simulation: Raw Algorithm-1 result for the prefill graph.
        decode_simulation: Raw Algorithm-1 result for the decode graph.
    """

    prefill_time: float
    decode_step_time: float
    batch_size: int
    prompt_len: int
    gen_len: int
    num_replicas: int
    num_gpus: int
    memory_per_gpu: float
    prefill_simulation: SimulationResult
    decode_simulation: SimulationResult

    @property
    def time_to_first_token(self) -> float:
        """Alias for :attr:`prefill_time` (the serving-world TTFT)."""
        return self.prefill_time

    @property
    def time_per_output_token(self) -> float:
        """Alias for :attr:`decode_step_time` (the serving-world TPOT)."""
        return self.decode_step_time

    @property
    def tokens_per_second(self) -> float:
        """Aggregate output-token throughput across all replicas."""
        if self.decode_step_time <= 0:
            return 0.0
        return self.batch_size * self.num_replicas / self.decode_step_time

    @property
    def request_latency(self) -> float:
        """End-to-end latency of one request (prefill + all decodes)."""
        return self.prefill_time + self.gen_len * self.decode_step_time

    def cost_per_million_tokens(self, dollars_per_hour: float) -> float:
        """Serving cost per million output tokens at a given fleet rate.

        ``dollars_per_hour`` is for the *whole fleet* (all
        ``num_gpus``); divide by throughput to price a token.
        """
        if self.tokens_per_second <= 0:
            return float("inf")
        return dollars_per_hour / 3600.0 / self.tokens_per_second * 1e6


@dataclass(frozen=True)
class TrainingEstimate:
    """End-to-end wall-clock and monetary cost of a training run.

    The paper's Table I columns: iteration time, total training time in
    days, GPU compute utilization, GPU count, $/hour, and $ total.
    """

    iteration_time: float
    num_iterations: int
    total_days: float
    gpu_compute_utilization: float
    num_gpus: int
    dollars_per_hour: float
    dollars_total: float

    def as_row(self) -> dict[str, float]:
        """Flat dict form for benchmark table printing."""
        return {
            "iteration_time_s": self.iteration_time,
            "total_days": self.total_days,
            "utilization_pct": 100.0 * self.gpu_compute_utilization,
            "num_gpus": self.num_gpus,
            "dollars_per_hour": self.dollars_per_hour,
            "dollars_total_millions": self.dollars_total / 1e6,
        }
