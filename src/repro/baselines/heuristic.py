"""Megatron-style heuristic training-plan chooser.

The paper's motivation (Section I): practitioners pick 3D-parallel plans
from "previously validated, known-good, yet sub-optimal heuristic based
training recipes". This module encodes that recipe so case studies can
quantify what vTrain's search wins over it:

1. Tensor parallelism fills the NVLink domain first — ``t`` is the
   largest power of two that divides the attention heads, up to the node
   size (8), but no larger than needed for very small models.
2. Pipeline parallelism grows just enough for the model states to fit
   in GPU memory.
3. Whatever budget remains becomes data parallelism.
4. The micro-batch size is fixed small (1 or 2) to bound pipeline
   bubbles.
"""

from __future__ import annotations

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import SystemConfig
from repro.dse.space import divisors, powers_of_two
from repro.errors import InfeasibleConfigError
from repro.memory.footprint import fits_in_memory


def heuristic_tensor_degree(model: ModelConfig,
                            gpus_per_node: int = 8) -> int:
    """Step 1: largest valid tensor degree within the node.

    Models under ~5B parameters keep ``t`` small (their GEMMs are too
    narrow to amortise All-Reduce), mirroring Megatron practice.
    """
    ceiling = gpus_per_node
    if model.num_parameters() < 5e9:
        ceiling = 2
    elif model.num_parameters() < 15e9:
        ceiling = 4
    best = 1
    for t in powers_of_two(ceiling):
        if model.num_heads % t == 0 and model.ffn_hidden_size % t == 0:
            best = t
    return best


def heuristic_plan(model: ModelConfig, training: TrainingConfig,
                   num_gpus: int, system: SystemConfig, *,
                   micro_batch_size: int = 1) -> ParallelismConfig:
    """The full heuristic recipe for a GPU budget.

    Raises:
        InfeasibleConfigError: If no (t, d, p) split of ``num_gpus``
            satisfies memory and batch constraints.
    """
    t = heuristic_tensor_degree(model, system.gpus_per_node)
    while t > 1 and num_gpus % t:
        t //= 2
    remaining = num_gpus // t
    for p in divisors(model.num_layers):
        if remaining % p:
            continue
        d = remaining // p
        if training.global_batch_size % d:
            continue
        per_replica = training.global_batch_size // d
        m = micro_batch_size if per_replica % micro_batch_size == 0 else 1
        plan = ParallelismConfig(tensor=t, data=d, pipeline=p,
                                 micro_batch_size=m)
        if fits_in_memory(model, plan, training, system):
            return plan
    raise InfeasibleConfigError(
        f"heuristic found no feasible plan for {model.describe()} on "
        f"{num_gpus} GPUs")


def minimal_model_parallel_footprint(model: ModelConfig,
                                     training: TrainingConfig,
                                     system: SystemConfig, *,
                                     micro_batch_size: int = 1,
                                     ) -> tuple[int, int]:
    """Smallest (t, p) able to hold the model — ElasticFlow's fixed base.

    ElasticFlow explores only data parallelism (Section V-B); for LLMs
    that do not fit a single GPU, the paper grants it the minimum
    tensor/pipeline degree per model and lets it scale ``d`` only. The
    pair follows Megatron practice — fill the NVLink domain with tensor
    parallelism first, then grow the pipeline just enough to fit — so
    the paper's example (39.1B -> 8-way TP, 2-way PP, i.e. 16 x d GPUs)
    is reproduced exactly.
    """
    for t in reversed(powers_of_two(system.gpus_per_node)):
        if model.num_heads % t or model.ffn_hidden_size % t:
            continue
        for p in divisors(model.num_layers):
            plan = ParallelismConfig(tensor=t, data=1, pipeline=p,
                                     micro_batch_size=micro_batch_size)
            if fits_in_memory(model, plan, training, system):
                return (t, p)
        break  # only the widest valid tensor degree defines the base
    raise InfeasibleConfigError(
        f"{model.describe()} does not fit even at maximum model parallelism")
