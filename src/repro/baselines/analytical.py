"""Calculon-style analytical performance model (Table V comparator).

Calculon (Isaev et al., SC'23) predicts LLM training time from closed-form
FLOP and byte counts with an assumed sustained-efficiency factor — no
profiling. The paper contrasts vTrain with it on two axes: validation
breadth and the inability of a fixed analytical implementation model to
track framework-level changes. This module implements that class of
model so Table V's comparison can be reproduced quantitatively against
our testbed: the analytical model shares vTrain's parallelism algebra but
replaces the profiled kernel/collective latencies with first-principles
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, RecomputeMode,
                                      TrainingConfig, layers_per_stage,
                                      num_micro_batches, validate_plan)
from repro.config.system import SystemConfig
from repro.graph.pipeline import pipeline_bubble_fraction
from repro.hardware.cluster import ClusterTopology
from repro.hardware.interconnect import LinkType


@dataclass(frozen=True)
class AnalyticalModelConfig:
    """Knobs of the analytical comparator.

    Attributes:
        compute_efficiency: Assumed sustained fraction of peak FLOPS for
            all compute (Calculon's single-number efficiency assumption —
            precisely what profiling replaces in vTrain).
        intranode_bus_bandwidth_fraction: Assumed NVLink bus-bandwidth
            fraction for intra-node collectives.
    """

    compute_efficiency: float = 0.55
    intranode_bus_bandwidth_fraction: float = 0.80


class AnalyticalModel:
    """Closed-form iteration-time estimator (no profiling)."""

    def __init__(self, system: SystemConfig,
                 config: AnalyticalModelConfig = AnalyticalModelConfig(),
                 ) -> None:
        self.system = system
        self.config = config

    def predict_iteration_time(self, model: ModelConfig,
                               plan: ParallelismConfig,
                               training: TrainingConfig) -> float:
        """Predicted single-iteration time in seconds."""
        validate_plan(model, plan, training, plan.total_gpus)
        nmb = num_micro_batches(plan, training)
        lps = layers_per_stage(model, plan)
        stage_fwd = self._stage_forward_time(model, plan, lps)
        backward_ratio = 2.0
        if plan.recompute is RecomputeMode.FULL:
            backward_ratio = 3.0
        elif plan.recompute is RecomputeMode.SELECTIVE:
            backward_ratio = 2.2
        stage_bwd = stage_fwd * backward_ratio
        per_micro = stage_fwd + stage_bwd
        # Pipeline fill/drain: (v*NMB + p - 1) chunk slots on the
        # critical stage; equivalently steady time divided by
        # (1 - bubble). Interleaved plans (virtual_stages > 1) shrink
        # the ramp by v, matching the simulator's schedule model.
        bubble = pipeline_bubble_fraction(plan.pipeline, nmb,
                                          plan.virtual_stages)
        pipeline_time = nmb * per_micro / (1.0 - bubble)
        return (pipeline_time + self._dp_allreduce_time(model, plan)
                + self._weight_update_time(model, plan))

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def _stage_forward_time(self, model: ModelConfig,
                            plan: ParallelismConfig, lps: int) -> float:
        """Forward time of one stage for one micro-batch."""
        tokens = plan.micro_batch_size * model.seq_length
        h, s = model.hidden_size, model.seq_length
        layer_flops = tokens * (24.0 * h * h * (1.0 + s / (6.0 * h)))
        per_gpu = layer_flops / plan.tensor
        rate = (self.system.gpu.peak_fp16_flops
                * self.config.compute_efficiency)
        compute = lps * per_gpu / rate
        comm = lps * 2.0 * self._tp_allreduce_time(model, plan)
        # Embedding + LM head amortised over stages (Calculon-style
        # smearing rather than stage-0/stage-(p-1) placement).
        head_flops = 6.0 * tokens * h * model.vocab_size / plan.tensor
        compute += head_flops / rate / plan.pipeline
        return compute + comm

    def _tp_allreduce_time(self, model: ModelConfig,
                           plan: ParallelismConfig) -> float:
        """One tensor-parallel All-Reduce (Equation-1 style, no table)."""
        if plan.tensor == 1:
            return 0.0
        size = 2.0 * plan.micro_batch_size * model.seq_length * model.hidden_size
        topology = ClusterTopology(self.system, plan)
        if topology.tensor_link() is LinkType.INTRA_NODE:
            bandwidth = (self.system.gpu.nvlink_bandwidth
                         * self.config.intranode_bus_bandwidth_fraction)
        else:
            bandwidth = self.system.effective_internode_bandwidth
        n = plan.tensor
        return size / bandwidth * 2.0 * (n - 1) / n

    def _dp_allreduce_time(self, model: ModelConfig,
                           plan: ParallelismConfig) -> float:
        """Exposed gradient All-Reduce tail (assumes perfect bucketing
        overlap except for the final bucket)."""
        if plan.data == 1:
            return 0.0
        params = (layers_per_stage(model, plan)
                  * model.params_per_layer() // plan.tensor
                  + model.embedding_params() // plan.tensor)
        size = 2.0 * params
        exposed_fraction = (1.0 / plan.num_gradient_buckets
                            if plan.gradient_bucketing else 1.0)
        topology = ClusterTopology(self.system, plan)
        if topology.data_link() is LinkType.INTRA_NODE:
            bandwidth = (self.system.gpu.nvlink_bandwidth
                         * self.config.intranode_bus_bandwidth_fraction)
        else:
            bandwidth = self.system.effective_internode_bandwidth
        n = plan.data
        return size * exposed_fraction / bandwidth * 2.0 * (n - 1) / n

    def _weight_update_time(self, model: ModelConfig,
                            plan: ParallelismConfig) -> float:
        """Optimizer step: streaming 28 B per parameter."""
        params = (layers_per_stage(model, plan)
                  * model.params_per_layer() // plan.tensor
                  + model.embedding_params() // plan.tensor)
        return 28.0 * params / self.system.gpu.memory_bandwidth
