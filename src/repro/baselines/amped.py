"""AMPeD-style fitted performance model (Table V comparator).

AMPeD (Moolchandani et al., ISPASS'23) is an analytical model whose
compute-core-efficiency factor is *fitted* to empirical measurements of
transformer training runs — the paper's critique is that this sacrifices
specificity for individual scenarios. We implement that class of model:
iteration time is predicted as

    t = model_FLOPs / (num_gpus * peak * efficiency_hat)

where ``efficiency_hat`` comes from a least-squares fit over a small set
of calibration measurements, regressed on simple plan features (inverse
tensor degree, pipeline-bubble fraction, per-GPU arithmetic intensity).
Against held-out configurations the fitted factor generalises worse than
vTrain's per-kernel profiles — the quantitative form of the Table V
argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, TrainingConfig,
                                      num_micro_batches)
from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.graph.pipeline import pipeline_bubble_fraction


@dataclass(frozen=True)
class CalibrationSample:
    """One (configuration, measured iteration time) calibration pair."""

    model: ModelConfig
    plan: ParallelismConfig
    training: TrainingConfig
    measured_time: float


def _features(model: ModelConfig, plan: ParallelismConfig,
              training: TrainingConfig) -> np.ndarray:
    """Regression features for the efficiency factor."""
    nmb = num_micro_batches(plan, training)
    bubble = pipeline_bubble_fraction(plan.pipeline, nmb,
                                      plan.virtual_stages)
    inv_tensor = 1.0 / plan.tensor
    # Per-GPU GEMM width proxy: larger shards run closer to peak.
    width = min(1.0, (model.hidden_size / plan.tensor) / 4096.0)
    return np.array([1.0, inv_tensor, bubble, width])


class AMPeDModel:
    """Fitted-efficiency iteration-time predictor."""

    def __init__(self, system: SystemConfig) -> None:
        self.system = system
        self._coeffs: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._coeffs is not None

    def fit(self, samples: list[CalibrationSample]) -> None:
        """Least-squares fit of the efficiency factor over calibration
        measurements (AMPeD's empirical-fitting step)."""
        if len(samples) < 4:
            raise ConfigError("need at least 4 calibration samples")
        rows = []
        targets = []
        for sample in samples:
            rows.append(_features(sample.model, sample.plan, sample.training))
            targets.append(self._observed_efficiency(sample))
        matrix = np.vstack(rows)
        self._coeffs, *_ = np.linalg.lstsq(matrix, np.asarray(targets),
                                           rcond=None)

    def _observed_efficiency(self, sample: CalibrationSample) -> float:
        flops = sample.model.model_flops_per_iteration(
            sample.training.tokens_per_iteration(sample.model))
        peak = sample.plan.total_gpus * self.system.gpu.peak_fp16_flops
        return flops / (peak * sample.measured_time)

    def predict_efficiency(self, model: ModelConfig, plan: ParallelismConfig,
                           training: TrainingConfig) -> float:
        """Fitted compute-core-efficiency for one configuration."""
        if self._coeffs is None:
            raise ConfigError("AMPeDModel.fit must be called first")
        efficiency = float(_features(model, plan, training) @ self._coeffs)
        return min(0.95, max(0.02, efficiency))

    def predict_iteration_time(self, model: ModelConfig,
                               plan: ParallelismConfig,
                               training: TrainingConfig) -> float:
        """Predicted single-iteration time in seconds."""
        efficiency = self.predict_efficiency(model, plan, training)
        flops = model.model_flops_per_iteration(
            training.tokens_per_iteration(model))
        peak = plan.total_gpus * self.system.gpu.peak_fp16_flops
        return flops / (peak * efficiency)
