"""Baseline performance models and heuristic plan choosers."""

from repro.baselines.amped import AMPeDModel, CalibrationSample
from repro.baselines.analytical import AnalyticalModel, AnalyticalModelConfig
from repro.baselines.heuristic import (heuristic_plan,
                                       heuristic_tensor_degree,
                                       minimal_model_parallel_footprint)

__all__ = [
    "AMPeDModel",
    "AnalyticalModel",
    "AnalyticalModelConfig",
    "CalibrationSample",
    "heuristic_plan",
    "heuristic_tensor_degree",
    "minimal_model_parallel_footprint",
]
