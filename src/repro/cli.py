"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``predict <description.json>`` — run one simulation from a vTrain-style
  input description file (or ``--preset mtnlg``) and print iteration
  time, utilization, memory, and (if the description carries a token
  budget) days and dollars. ``--trace out.json`` additionally writes a
  Chrome Trace Event Format file holding the simulated device timeline
  next to the engine's own spans (open in chrome://tracing or Perfetto).
* ``dse <preset>`` — sweep the (t, d, p, m) design space for a preset
  model, optionally in parallel (``--workers``) and with a persistent
  prediction cache (``--cache`` / ``--checkpoint``); ``--metrics``
  prints and saves the observability registry snapshot.
* ``stats`` — pretty-print a saved metrics snapshot (cache hit rates,
  replay-throughput histograms with p50/p99), or — with ``--connect
  HOST:PORT`` — the *live* instruments of a running daemon.
* ``serve`` — run the long-lived prediction daemon: one resident
  process owning the warm structure cache and a persistent prediction
  cache, serving concurrent predict/DSE requests over TCP
  (``--port N``) or stdin/stdout (``--stdio``) with in-flight
  deduplication and micro-batching (see :mod:`repro.serve`).
  ``predict --connect HOST:PORT`` routes a prediction through a
  running daemon instead of paying cold start; add ``--trace out.json``
  to get a *stitched* Chrome trace showing the request end-to-end
  across both processes. ``--metrics-port`` opens a Prometheus scrape
  endpoint, ``--access-log`` writes structured JSON request logs, and
  ``--slo-latency-ms``/``--slo-availability`` set the objectives the
  daemon's SLO tracker evaluates.
* ``top`` — live terminal dashboard of a running daemon (req/s,
  latency quantiles, cache hit rate, batch occupancy, SLO state),
  refreshed from the daemon's time-series ring.
* ``example <name>`` — write a ready-to-edit description file for a
  preset model (``gpt3-175b``, ``mt-nlg-530b``, ...).
* ``presets`` — list the bundled model presets.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.presets import (GPT3_TRAINING, MODEL_ZOO,
                                  MT_NLG_530B, MT_NLG_BASELINE_PLANS,
                                  MT_NLG_TRAINING)
from repro.config.system import NetworkSpec, multi_node
from repro.cost.pricing import DEFAULT_PRICING, SECONDS_PER_DAY
from repro.dse.cache import PredictionCache
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.report import save_csv, to_markdown
from repro.dse.space import SearchSpace
from repro.errors import ReproError
from repro.graph.builder import Granularity, structure_cache_stats
from repro.obs.export import combined_trace, write_trace
from repro.sim.estimator import VTrain

GIB = float(1 << 30)

#: Short spellings accepted by ``predict --preset`` on top of the
#: canonical zoo keys (``mt-nlg-530b`` etc.).
PRESET_ALIASES = {
    "mtnlg": "mt-nlg-530b",
    "gpt3": "gpt-3-175b",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vTrain reproduction: profiling-driven LLM training "
                    "simulation")
    commands = parser.add_subparsers(dest="command", required=True)

    predict = commands.add_parser(
        "predict", help="simulate one input description file or preset")
    predict.add_argument("description", type=Path, nargs="?",
                         help="path to a JSON input description (omit when "
                              "using --preset)")
    predict.add_argument("--preset", metavar="NAME",
                         help="simulate a bundled preset instead of a "
                              "description file: a `repro presets` key or "
                              "a short alias "
                              f"({', '.join(sorted(PRESET_ALIASES))})")
    predict.add_argument("--granularity", default="operator",
                         choices=[g.value for g in Granularity],
                         help="execution-graph detail level")
    _add_workload_arguments(predict)
    predict.add_argument("--no-memory-check", action="store_true",
                         help="skip the per-GPU memory feasibility check")
    predict.add_argument("--timing", action="store_true",
                         help="print a phase breakdown of where the "
                              "prediction's wall time went (memory check, "
                              "network setup, structure build or cache "
                              "hit, duration fill, replay)")
    predict.add_argument("--trace", type=Path, metavar="PATH",
                         help="write a Chrome Trace Event Format JSON "
                              "file holding the simulated device timeline "
                              "and the engine's own spans (view in "
                              "chrome://tracing or ui.perfetto.dev)")
    predict.add_argument("--connect", metavar="HOST:PORT",
                         help="serve the prediction from a running "
                              "`repro serve` daemon instead of "
                              "simulating in-process (warm caches, no "
                              "cold start); with --trace, writes a "
                              "stitched client+daemon trace instead of "
                              "the in-process timeline; incompatible "
                              "with --timing")

    serve = commands.add_parser(
        "serve", help="run the long-lived prediction daemon (warm shared "
                      "caches, in-flight dedup, request micro-batching)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7915,
                       help="TCP port to listen on; 0 picks a free port "
                            "(default: 7915)")
    serve.add_argument("--stdio", action="store_true",
                       help="serve newline-delimited JSON-RPC on "
                            "stdin/stdout instead of TCP (subprocess "
                            "embedding; diagnostics go to stderr)")
    serve.add_argument("--cache", type=Path, metavar="PATH",
                       help="persistent prediction cache (JSON): loaded "
                            "at startup if it exists, saved on shutdown, "
                            "shared by every request")
    serve.add_argument("--granularity", default="operator",
                       choices=[g.value for g in Granularity],
                       help="default graph granularity for requests that "
                            "do not name one (default: operator)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="bounded delay of the request micro-batcher "
                            "in milliseconds; concurrent retimes "
                            "arriving within one window replay as a "
                            "single vectorized sweep (default: 2.0)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="requests per batcher flush (default: 64)")
    serve.add_argument("--metrics-port", type=int, metavar="PORT",
                       help="also serve GET /metrics (Prometheus text "
                            "exposition), /healthz, /timeseries and /slo "
                            "over HTTP on this port (0 picks a free "
                            "port); scrapes run off the prediction path")
    serve.add_argument("--access-log", type=Path, metavar="PATH",
                       help="append one structured JSON line per request "
                            "(method, request/trace IDs, status, "
                            "latency, peer) to this file; '-' for "
                            "stderr")
    serve.add_argument("--sample-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="cadence of the background time-series "
                            "sampler feeding `repro top` and the SLO "
                            "tracker; 0 disables the thread "
                            "(default: 1.0)")
    serve.add_argument("--slo-latency-ms", type=float, default=250.0,
                       help="served-predict p99 latency objective in "
                            "milliseconds (default: 250)")
    serve.add_argument("--slo-availability", type=float, default=0.999,
                       help="fraction of requests that must succeed "
                            "(default: 0.999)")
    serve.add_argument("--slo-window", type=float, default=600.0,
                       metavar="SECONDS",
                       help="rolling SLO evaluation window in seconds "
                            "(default: 600)")

    dse = commands.add_parser(
        "dse", help="sweep the 3D-parallelism design space for a preset "
                    "model, in parallel and with optional result caching")
    dse.add_argument("model", choices=_preset_keys(),
                     help="preset model to sweep")
    budget = dse.add_mutually_exclusive_group(required=True)
    budget.add_argument("--num-gpus", type=int,
                        help="only plans using exactly this many GPUs")
    budget.add_argument("--max-gpus", type=int,
                        help="plans using at most this many GPUs")
    _add_workload_arguments(dse)
    dse.add_argument("--global-batch", type=int, default=64,
                     help="global batch size in sequences (default: 64)")
    dse.add_argument("--total-tokens", type=int, default=0,
                     help="token budget used for cost/day estimates")
    dse.add_argument("--max-tensor", type=int, default=16,
                     help="tensor-parallel upper bound (default: 16)")
    dse.add_argument("--max-data", type=int, default=32,
                     help="data-parallel upper bound (default: 32)")
    dse.add_argument("--max-pipeline", type=int, default=105,
                     help="pipeline-parallel upper bound (default: 105)")
    dse.add_argument("--micro-batches", type=int, nargs="+",
                     default=[1, 2, 4, 8, 16], metavar="M",
                     help="candidate micro-batch sizes (default: 1 2 4 8 16)")
    dse.add_argument("--virtual-stages", type=int, nargs="+", default=[1],
                     metavar="V",
                     help="candidate virtual-pipeline (interleaved-1F1B) "
                          "chunk counts per device; values above 1 sweep "
                          "Megatron-interleaved variants of every plan "
                          "that satisfies the interleave constraints "
                          "(default: 1)")
    dse.add_argument("--zero-stage", type=int, default=1,
                     choices=[0, 1, 2, 3],
                     help="ZeRO sharding stage assumed by the memory "
                          "feasibility filter: 0 none, 1 optimizer states "
                          "(default), 2 +gradients, 3 +parameters")
    dse.add_argument("--gpus-per-node", type=int, default=8,
                     help="GPUs per server node (default: 8)")
    dse.add_argument("--network", default="flat", metavar="SPEC",
                     help="inter-node fabric model: 'flat' (the paper's "
                          "Equation-1 aggregate pipe; default), 'rail' "
                          "(rail-optimized, one switch per HCA rail) or "
                          "'fat-tree:<ratio>' (2-level fat tree with the "
                          "given uplink oversubscription, e.g. "
                          "fat-tree:4)")
    dse.add_argument("--granularity", default="stage",
                     choices=[g.value for g in Granularity],
                     help="graph detail level (stage is the fast sweep "
                          "mode; default: stage)")
    dse.add_argument("--workers", type=int, default=1,
                     help="evaluate plans on this many worker processes; "
                          "results are merged back into plan order and are "
                          "identical to a serial sweep (default: 1)")
    dse.add_argument("--cache", type=Path, metavar="PATH",
                     help="persistent prediction cache (JSON): loaded "
                          "before the sweep if it exists, saved after, so "
                          "repeated sweeps skip already-predicted plans")
    dse.add_argument("--checkpoint", type=Path, metavar="PATH",
                     help="checkpoint file (JSON) written periodically "
                          "during the sweep; an interrupted sweep rerun "
                          "with the same path resumes instead of "
                          "recomputing")
    dse.add_argument("--csv", type=Path, metavar="PATH",
                     help="write all feasible design points to a CSV file")
    dse.add_argument("--top", type=int, default=10,
                     help="rows in the printed best-plans table "
                          "(default: 10)")
    dse.add_argument("--sort", default="cost", choices=["cost", "time"],
                     help="ranking for the best-plans table (default: cost)")
    dse.add_argument("--quiet", action="store_true",
                     help="suppress progress reporting on stderr")
    dse.add_argument("--metrics", type=Path, nargs="?", metavar="PATH",
                     const=Path(""), default=None,
                     help="enable observability for the sweep, print the "
                          "metrics snapshot afterwards, and save it as "
                          "JSON (default path: repro_obs_snapshot.json; "
                          "inspect later with `repro stats`)")

    stats = commands.add_parser(
        "stats", help="pretty-print a saved metrics snapshot (cache hit "
                      "rates, replay-throughput histograms with p50/p99) "
                      "or a running daemon's live instruments")
    stats.add_argument("snapshot", type=Path, nargs="?",
                       help="snapshot JSON written by `repro dse "
                            "--metrics` (default: "
                            "repro_obs_snapshot.json, or "
                            "$REPRO_OBS_SNAPSHOT)")
    stats.add_argument("--connect", metavar="HOST:PORT",
                       help="read the live metrics registry of a running "
                            "`repro serve` daemon instead of a snapshot "
                            "file")

    top = commands.add_parser(
        "top", help="live terminal dashboard of a running daemon "
                    "(req/s, latency, cache hit rate, batch occupancy, "
                    "SLO state)")
    top.add_argument("--connect", metavar="HOST:PORT", required=True,
                     help="daemon endpoint to watch")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh cadence (default: 2.0)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="render N frames then exit (default: run "
                          "until interrupted)")

    example = commands.add_parser(
        "example", help="write an editable example description file")
    example.add_argument("model", choices=_preset_keys(),
                         help="preset model to describe")
    example.add_argument("--output", type=Path, default=Path("vtrain.json"),
                         help="where to write the description")

    commands.add_parser("presets", help="list bundled model presets")
    return parser


def _add_workload_arguments(command: argparse.ArgumentParser) -> None:
    """Shared ``--workload`` flag family for predict and dse."""
    command.add_argument("--workload", default="training",
                         choices=["training", "inference"],
                         help="what the plan runs: a training iteration "
                              "(default) or a static serving batch "
                              "(prefill + decode phase graphs)")
    command.add_argument("--batch-size", type=int, default=None, metavar="N",
                         help="inference: concurrent requests per replica "
                              "(default: 32)")
    command.add_argument("--prompt-len", type=int, default=None, metavar="L",
                         help="inference: prompt tokens per request "
                              "(default: 512)")
    command.add_argument("--gen-len", type=int, default=None, metavar="G",
                         help="inference: generated tokens per request "
                              "(default: 128)")
    command.add_argument("--continuous-batching", action="store_true",
                         help="inference: model vLLM-style continuous "
                              "batching (decode attends the mean, not the "
                              "max, KV length)")


def _workload_from_args(args: argparse.Namespace) -> "InferenceWorkload | None":
    """The inference workload the flags describe, or None for training."""
    from repro.workload import InferenceWorkload

    inference_flags = (args.batch_size, args.prompt_len, args.gen_len)
    if args.workload != "inference":
        if any(flag is not None for flag in inference_flags) \
                or args.continuous_batching:
            raise ReproError(
                "--batch-size/--prompt-len/--gen-len/--continuous-batching "
                "require --workload inference")
        return None
    return InferenceWorkload(
        batch_size=args.batch_size if args.batch_size is not None else 32,
        prompt_len=args.prompt_len if args.prompt_len is not None else 512,
        gen_len=args.gen_len if args.gen_len is not None else 128,
        continuous_batching=args.continuous_batching)


def _preset_keys() -> list[str]:
    return sorted(name.lower().replace(" ", "-") for name in MODEL_ZOO)


def _preset_by_key(key: str) -> ModelConfig:
    for name, model in MODEL_ZOO.items():
        if name.lower().replace(" ", "-") == key:
            return model
    raise ReproError(f"unknown preset {key!r}")


def _preset_description(key: str) -> InputDescription:
    """An :class:`InputDescription` for one bundled preset.

    MT-NLG gets its published Table-I plan and training recipe; other
    presets get the same heuristic plan ``repro example`` writes.
    """
    key = PRESET_ALIASES.get(key, key)
    model = _preset_by_key(key)
    if model is MT_NLG_530B:
        plan = MT_NLG_BASELINE_PLANS[0]
        training = MT_NLG_TRAINING
    else:
        plan = ParallelismConfig(tensor=min(8, model.num_heads), data=4,
                                 pipeline=1)
        while model.num_heads % plan.tensor:
            plan = plan.replaced(tensor=plan.tensor // 2)
        training = (GPT3_TRAINING if key == "gpt-3-175b"
                    else TrainingConfig(global_batch_size=64,
                                        total_tokens=1_000_000_000))
    nodes = max(1, plan.total_gpus // 8)
    return InputDescription(model=model, system=multi_node(nodes),
                            plan=plan, training=training)


def _cmd_predict(args: argparse.Namespace) -> int:
    if (args.description is None) == (args.preset is None):
        raise ReproError(
            "predict needs a description file or --preset (not both)")
    if args.preset is not None:
        description = _preset_description(args.preset)
    else:
        description = InputDescription.load(args.description)
    description.validate()
    workload = _workload_from_args(args)
    if args.connect:
        if args.timing:
            raise ReproError(
                "--timing runs in-process; it is not available with "
                "--connect (the daemon's `stats` method reports "
                "serving latency)")
        return _predict_connected(args, description, workload)
    if args.trace:
        obs.enable()
    vtrain = VTrain(description.system,
                    granularity=Granularity(args.granularity),
                    check_memory_feasibility=not args.no_memory_check)
    if workload is not None:
        return _predict_inference(args, description, workload, vtrain)
    prediction = vtrain.predict(description.model, description.plan,
                                description.training,
                                record_timeline=args.trace is not None)
    print(f"model            : {description.model.describe()}")
    print(f"system           : {description.system.describe()}")
    print(f"plan             : {description.plan.describe()}")
    print(f"iteration time   : {prediction.iteration_time:.4f} s")
    print(f"utilization      : "
          f"{100 * prediction.gpu_compute_utilization:.2f} %")
    print(f"memory per GPU   : {prediction.memory_per_gpu / GIB:.2f} GiB")
    if args.timing:
        timing = vtrain.last_predict_timing
        print("timing breakdown :")
        print(f"  memory check   : {timing.memory_check_s * 1e3:.2f} ms")
        print(f"  network setup  : {timing.builder_init_s * 1e3:.2f} ms")
        print(f"  structure      : {timing.structure_s * 1e3:.2f} ms "
              f"({timing.structure_source})")
        print(f"  duration fill  : {timing.fill_s * 1e3:.2f} ms")
        print(f"  replay         : {timing.replay_s * 1e3:.2f} ms")
        print(f"  total          : {timing.total_s * 1e3:.2f} ms")
    if args.trace:
        payload = combined_trace(
            prediction.simulation,
            engine_events=obs.tracer.chrome_trace(),
            metadata={"model": description.model.describe(),
                      "plan": description.plan.describe(),
                      "granularity": args.granularity})
        write_trace(args.trace, payload)
        print(f"trace            : wrote "
              f"{len(payload['traceEvents'])} events to {args.trace}")
    if description.training.total_tokens:
        estimate = vtrain.estimate_training(description.model,
                                            description.plan,
                                            description.training)
        print(f"iterations       : {estimate.num_iterations:,}")
        print(f"training time    : {estimate.total_days:.2f} days")
        print(f"cost             : ${estimate.dollars_total:,.0f} "
              f"(${estimate.dollars_per_hour:,.0f}/hour)")
    return 0


def _predict_inference(args: argparse.Namespace,
                       description: InputDescription,
                       workload, vtrain: VTrain) -> int:
    """``predict --workload inference``: serving latency report."""
    if args.timing:
        raise ReproError(
            "--timing breaks down the training predict path; inference "
            "predictions replay two phase graphs and do not report it")
    prediction = vtrain.predict_inference(
        description.model, description.plan, workload,
        record_timeline=args.trace is not None)
    print(f"model            : {description.model.describe()}")
    print(f"system           : {description.system.describe()}")
    print(f"plan             : {description.plan.describe()}")
    print(f"workload         : inference batch={workload.batch_size} "
          f"prompt={workload.prompt_len} gen={workload.gen_len}"
          f"{' continuous' if workload.continuous_batching else ''}")
    print(f"TTFT (prefill)   : {prediction.prefill_time * 1e3:.2f} ms")
    print(f"TPOT (decode)    : {prediction.decode_step_time * 1e3:.3f} ms")
    print(f"decode tokens/s  : {prediction.tokens_per_second:,.0f} "
          f"({prediction.num_replicas} replica"
          f"{'s' if prediction.num_replicas != 1 else ''})")
    print(f"request latency  : {prediction.request_latency * 1e3:.1f} ms")
    print(f"memory per GPU   : {prediction.memory_per_gpu / GIB:.2f} GiB")
    rate = DEFAULT_PRICING.dollars_per_hour(prediction.num_gpus)
    print(f"cost             : "
          f"${prediction.cost_per_million_tokens(rate):.3f}/Mtok "
          f"(${rate:,.0f}/hour)")
    if args.trace:
        payload = combined_trace(
            prediction.decode_simulation,
            engine_events=obs.tracer.chrome_trace(),
            metadata={"model": description.model.describe(),
                      "plan": description.plan.describe(),
                      "granularity": args.granularity,
                      "workload": "inference",
                      "phase": "decode",
                      "ttft_s": prediction.prefill_time})
        write_trace(args.trace, payload)
        print(f"trace            : wrote "
              f"{len(payload['traceEvents'])} decode-phase events to "
              f"{args.trace}")
    return 0


def _parse_endpoint(spec: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` endpoint spec."""
    host, separator, port = spec.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ReproError(f"--connect expects HOST:PORT, got {spec!r}")
    return host, int(port)


def _predict_connected(args: argparse.Namespace,
                       description: InputDescription,
                       workload=None) -> int:
    """``predict --connect``: serve the request from a running daemon.

    An inference workload's serialised envelope is forwarded to the
    daemon unchanged — the daemon's parser is the only thing that
    interprets it.
    """
    import os

    from repro.obs.stitch import stitch_trace
    from repro.serve import ServeClient

    host, port = _parse_endpoint(args.connect)
    trace_id = obs.new_trace_id() if args.trace else None
    with ServeClient.connect(host, port) as client:
        payload = client.predict(description=description.to_dict(),
                                 granularity=args.granularity,
                                 zero_stage=None,
                                 workload=(workload.to_dict()
                                           if workload is not None else None),
                                 trace=args.trace is not None,
                                 trace_id=trace_id)
        client_spans = list(client.last_call_spans)
    print(f"model            : {description.model.describe()}")
    print(f"system           : {description.system.describe()}")
    print(f"plan             : {description.plan.describe()}")
    print(f"served by        : {host}:{port} "
          f"({payload['served']['source']})")
    if payload.get("workload") == "inference":
        print(f"workload         : inference batch={workload.batch_size} "
              f"prompt={workload.prompt_len} gen={workload.gen_len}"
              f"{' continuous' if workload.continuous_batching else ''}")
        print(f"TTFT (prefill)   : {payload['ttft_s'] * 1e3:.2f} ms")
        print(f"TPOT (decode)    : {payload['tpot_s'] * 1e3:.3f} ms")
        print(f"decode tokens/s  : {payload['tokens_per_s']:,.0f} "
              f"({payload['num_replicas']} replica"
              f"{'s' if payload['num_replicas'] != 1 else ''})")
        print(f"memory per GPU   : "
              f"{payload['memory_per_gpu'] / GIB:.2f} GiB")
    else:
        print(f"iteration time   : {payload['iteration_time']:.4f} s")
        print(f"utilization      : "
              f"{100 * payload['gpu_compute_utilization']:.2f} %")
        print(f"memory per GPU   : "
              f"{payload['memory_per_gpu'] / GIB:.2f} GiB")
    if args.trace:
        served = payload["served"]
        stitched = stitch_trace(
            trace_id=trace_id,
            client_spans=client_spans,
            server_spans=served.get("spans", []),
            client_pid=os.getpid(),
            server_pid=served.get("pid", 0),
            metadata={"model": description.model.describe(),
                      "plan": description.plan.describe(),
                      "endpoint": f"{host}:{port}",
                      "source": served["source"]})
        write_trace(args.trace, stitched)
        print(f"trace            : wrote "
              f"{len(stitched['traceEvents'])} stitched events to "
              f"{args.trace} (trace id {trace_id})")
    if workload is None and description.training.total_tokens:
        iterations = description.training.num_iterations(description.model)
        total_seconds = payload["iteration_time"] * iterations
        num_gpus = description.plan.total_gpus
        print(f"iterations       : {iterations:,}")
        print(f"training time    : "
              f"{total_seconds / SECONDS_PER_DAY:.2f} days")
        print(f"cost             : "
              f"${DEFAULT_PRICING.cost(num_gpus, total_seconds):,.0f} "
              f"(${DEFAULT_PRICING.dollars_per_hour(num_gpus):,.0f}/hour)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the prediction daemon until interrupted or shut down."""
    from repro.obs.slo import SLOConfig
    from repro.serve import (MetricsHTTPServer, PredictionService,
                             ServeDaemon, serve_stdio)

    obs.enable()  # the serving tier exists to report latency metrics
    cache = (PredictionCache.load(args.cache)
             if args.cache and args.cache.exists() else PredictionCache())
    access_log = None
    if args.access_log is not None:
        access_log = (sys.stderr if str(args.access_log) == "-"
                      else open(args.access_log, "a", encoding="utf-8"))
    service = PredictionService(
        cache=cache,
        batch_window_s=args.batch_window_ms / 1e3,
        max_batch=args.max_batch,
        default_granularity=Granularity(args.granularity),
        sample_interval_s=args.sample_interval,
        slo=SLOConfig(latency_objective_s=args.slo_latency_ms / 1e3,
                      availability_objective=args.slo_availability,
                      window_s=args.slo_window),
        access_log=access_log)
    metrics_server = None
    try:
        if args.metrics_port is not None:
            metrics_server = MetricsHTTPServer(service, host=args.host,
                                               port=args.metrics_port)
            metrics_server.start()
            mhost, mport = metrics_server.address
            print(f"repro serve: metrics on http://{mhost}:{mport}/metrics",
                  file=sys.stderr, flush=True)
        if args.stdio:
            print("repro serve: stdio session open", file=sys.stderr)
            serve_stdio(service, sys.stdin.buffer, sys.stdout.buffer)
        else:
            daemon = ServeDaemon(service, host=args.host, port=args.port)
            host, port = daemon.address
            print(f"repro serve: listening on {host}:{port} "
                  f"(cache: {len(cache)} entries)", file=sys.stderr,
                  flush=True)
            try:
                daemon.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                daemon.server_close()
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        service.close()
        if access_log is not None and access_log is not sys.stderr:
            access_log.close()
        if args.cache:
            cache.save(args.cache)
            print(f"repro serve: saved {len(cache)} cache entries to "
                  f"{args.cache}", file=sys.stderr)
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    model = _preset_by_key(args.model)
    NetworkSpec.parse(args.network)  # reject bad specs before sweeping
    if args.metrics is not None:
        obs.enable()
    workload = _workload_from_args(args)
    training = TrainingConfig(global_batch_size=args.global_batch,
                              total_tokens=args.total_tokens)
    space = SearchSpace(max_tensor=args.max_tensor, max_data=args.max_data,
                        max_pipeline=args.max_pipeline,
                        micro_batch_sizes=tuple(args.micro_batches),
                        virtual_stages=tuple(args.virtual_stages))
    if workload is not None and tuple(args.virtual_stages) != (1,):
        raise ReproError("--virtual-stages applies to training sweeps only "
                         "(inference phase graphs are plain pipelines)")
    cache = (PredictionCache.load(args.cache)
             if args.cache and args.cache.exists() else PredictionCache())

    def report(done: int, total: int) -> None:
        if not args.quiet and total:
            print(f"\r  evaluated {done}/{total} plans", end="",
                  file=sys.stderr, flush=True)
            if done == total:
                print(file=sys.stderr)

    explorer = DesignSpaceExplorer(model, training,
                                   gpus_per_node=args.gpus_per_node,
                                   granularity=Granularity(args.granularity),
                                   network=args.network,
                                   zero_stage=args.zero_stage,
                                   workload=workload)
    result = explorer.explore(space=space, num_gpus=args.num_gpus,
                              max_gpus=args.max_gpus, workers=args.workers,
                              cache=cache, checkpoint_path=args.checkpoint,
                              progress=report)
    if args.cache:
        cache.save(args.cache)
    if workload is not None:
        return _report_serving_dse(args, model, workload, result, cache)

    print(f"model            : {model.describe()}")
    print(f"search space     : {len(result.points)} plans "
          f"({result.num_feasible} feasible)")
    print(f"cache            : {cache.hits} hits, {cache.misses} misses, "
          f"{len(cache)} entries")
    structure = structure_cache_stats()
    print(f"structure cache  : {structure['hits']} hits, "
          f"{structure['misses']} misses, "
          f"{structure['evictions']} evictions, "
          f"{structure['entries']} entries")
    if result.num_feasible:
        fastest = result.best_by_iteration_time()
        cheapest = result.best_by_cost()
        print(f"fastest plan     : {fastest.plan.describe()} — "
              f"{fastest.iteration_time:.4f} s/iter on "
              f"{fastest.num_gpus} GPUs")
        print(f"cheapest plan    : {cheapest.plan.describe()} — "
              f"${cheapest.cost_per_iteration():.2f}/iter on "
              f"{cheapest.num_gpus} GPUs")
        print()
        print(f"top {args.top} by {args.sort}:")
        print(to_markdown(result, top=args.top, sort_by=args.sort))
    else:
        print("no feasible plans in the requested space")
    if args.csv:
        save_csv(result, args.csv)
        print(f"\nwrote {result.num_feasible} feasible points to {args.csv}")
    if args.metrics is not None:
        target = None if args.metrics == Path("") else args.metrics
        written = obs.save_snapshot(target)
        print()
        print("observability snapshot:")
        print(obs.format_snapshot(obs.snapshot()))
        print(f"saved metrics    : {written}")
    return 0


def _report_serving_dse(args: argparse.Namespace, model: ModelConfig,
                        workload, result, cache: PredictionCache) -> int:
    """Print the serving-sweep report: Pareto table over throughput
    and cost per million output tokens."""
    from repro.dse.report import save_serving_csv, to_serving_markdown

    print(f"model            : {model.describe()}")
    print(f"workload         : inference batch={workload.batch_size} "
          f"prompt={workload.prompt_len} gen={workload.gen_len}"
          f"{' continuous' if workload.continuous_batching else ''}")
    print(f"search space     : {len(result.points)} plans "
          f"({result.num_feasible} feasible)")
    print(f"cache            : {cache.hits} hits, {cache.misses} misses, "
          f"{len(cache)} entries")
    if result.num_feasible:
        frontier = result.serving_pareto_frontier()
        best = result.best_by_throughput()
        cheapest = min(result.feasible_points,
                       key=lambda p: p.cost_per_million_tokens())
        print(f"highest tokens/s : {best.plan.describe()} — "
              f"{best.tokens_per_s:,.0f} tok/s on {best.num_gpus} GPUs")
        print(f"cheapest $/Mtok  : {cheapest.plan.describe()} — "
              f"${cheapest.cost_per_million_tokens():.3f}/Mtok on "
              f"{cheapest.num_gpus} GPUs")
        print(f"pareto frontier  : {len(frontier)} plans "
              f"(tokens/s vs $/Mtok)")
        print()
        print(f"top {args.top} by {args.sort}:")
        sort_by = {"cost": "cost", "time": "latency"}[args.sort]
        print(to_serving_markdown(result, top=args.top, sort_by=sort_by))
    else:
        print("no feasible serving plans in the requested space")
    if args.csv:
        save_serving_csv(result, args.csv)
        print(f"\nwrote {result.num_feasible} feasible points to {args.csv}")
    if args.metrics is not None:
        target = None if args.metrics == Path("") else args.metrics
        written = obs.save_snapshot(target)
        print()
        print("observability snapshot:")
        print(obs.format_snapshot(obs.snapshot()))
        print(f"saved metrics    : {written}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.connect:
        from repro.serve import ServeClient

        host, port = _parse_endpoint(args.connect)
        with ServeClient.connect(host, port) as client:
            snap = client.metrics()["snapshot"]
        print(f"live daemon      : {host}:{port}")
        print(obs.format_snapshot(snap))
        return 0
    path = args.snapshot if args.snapshot else obs.default_snapshot_path()
    try:
        snap = obs.load_snapshot(path)
    except FileNotFoundError:
        raise ReproError(
            f"no metrics snapshot at {path} — run `repro dse ... "
            f"--metrics` first, or pass the snapshot path") from None
    print(f"snapshot         : {path}")
    print(obs.format_snapshot(snap))
    return 0


_SPARK_BARS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], width: int = 30) -> str:
    """Render the tail of ``values`` as a unicode sparkline."""
    tail = values[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK_BARS[0] * len(tail)
    scale = len(_SPARK_BARS) - 1
    return "".join(
        _SPARK_BARS[min(scale, round(value / top * scale))]
        for value in tail)


def _top_frame(endpoint: str, series: dict, slo: dict) -> str:
    """One rendered ``repro top`` frame."""
    samples = series["samples"]
    last = samples[-1]
    req = [s["req_per_s"] for s in samples]
    p99 = [s["p99_s"] for s in samples]
    hit = [s["cache_hit_rate"] for s in samples]
    batch = [s["batch_mean"] for s in samples]
    budget = slo["error_budget"]
    lines = [
        f"repro top — {endpoint}   "
        f"({len(samples)} samples @ {series['interval_s']:g}s)",
        "",
        f"  req/s      {last['req_per_s']:>9.2f}  {_sparkline(req)}",
        f"  p99 (ms)   {last['p99_s'] * 1e3:>9.2f}  {_sparkline(p99)}",
        f"  p50 (ms)   {last['p50_s'] * 1e3:>9.2f}",
        f"  cache hit  {100 * last['cache_hit_rate']:>8.1f}%  "
        f"{_sparkline(hit)}",
        f"  batch occ  {last['batch_mean']:>9.2f}  {_sparkline(batch)}",
        f"  errors     {last['errors']:>9d}",
        "",
        f"  SLO: latency {'OK ' if slo['latency']['ok'] else 'VIOLATED'} "
        f"(p99 {slo['latency']['p99_s'] * 1e3:.1f}ms vs "
        f"{slo['latency']['objective_s'] * 1e3:.0f}ms)   "
        f"budget {100 * budget['remaining']:.1f}% left   "
        f"burn {budget['burn_rate']:.2f}x",
    ]
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over the daemon's time-series ring."""
    import time as _time

    from repro.serve import ServeClient

    host, port = _parse_endpoint(args.connect)
    endpoint = f"{host}:{port}"
    frames = 0
    with ServeClient.connect(host, port) as client:
        while True:
            series = client.timeseries(sample=True)
            slo = client.slo()
            frame = _top_frame(endpoint, series, slo)
            if frames and args.iterations == 0:
                # \x1b[H\x1b[2J = cursor home + clear, a dependency-free
                # full-screen refresh (plain frames when iterating for
                # tests/pipes).
                print("\x1b[H\x1b[2J", end="")
            print(frame, flush=True)
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            try:
                _time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0


def _cmd_example(args: argparse.Namespace) -> int:
    model = _preset_by_key(args.model)
    plan = ParallelismConfig(tensor=min(8, model.num_heads), data=4,
                             pipeline=1)
    while model.num_heads % plan.tensor:
        plan = plan.replaced(tensor=plan.tensor // 2)
    nodes = max(1, plan.total_gpus // 8)
    description = InputDescription(
        model=model, system=multi_node(nodes), plan=plan,
        training=TrainingConfig(global_batch_size=64,
                                total_tokens=1_000_000_000))
    description.save(args.output)
    print(f"wrote {args.output} — edit the plan/system and run:")
    print(f"  python -m repro predict {args.output}")
    return 0


def _cmd_presets(_args: argparse.Namespace) -> int:
    for name in sorted(MODEL_ZOO):
        print(f"{name.lower().replace(' ', '-'):<18} "
              f"{MODEL_ZOO[name].describe()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {"predict": _cmd_predict, "dse": _cmd_dse,
                "stats": _cmd_stats, "serve": _cmd_serve,
                "top": _cmd_top, "example": _cmd_example,
                "presets": _cmd_presets}
    try:
        return handlers[args.command](args)
    except (ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
