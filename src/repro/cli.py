"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``predict <description.json>`` — run one simulation from a vTrain-style
  input description file and print iteration time, utilization, memory,
  and (if the description carries a token budget) days and dollars.
* ``example <name>`` — write a ready-to-edit description file for a
  preset model (``gpt3-175b``, ``mt-nlg-530b``, ...).
* ``presets`` — list the bundled model presets.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.presets import MODEL_ZOO
from repro.config.system import multi_node
from repro.errors import ReproError
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain

GIB = float(1 << 30)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vTrain reproduction: profiling-driven LLM training "
                    "simulation")
    commands = parser.add_subparsers(dest="command", required=True)

    predict = commands.add_parser(
        "predict", help="simulate one input description file")
    predict.add_argument("description", type=Path,
                         help="path to a JSON input description")
    predict.add_argument("--granularity", default="operator",
                         choices=[g.value for g in Granularity],
                         help="execution-graph detail level")
    predict.add_argument("--no-memory-check", action="store_true",
                         help="skip the per-GPU memory feasibility check")

    example = commands.add_parser(
        "example", help="write an editable example description file")
    example.add_argument("model", choices=_preset_keys(),
                         help="preset model to describe")
    example.add_argument("--output", type=Path, default=Path("vtrain.json"),
                         help="where to write the description")

    commands.add_parser("presets", help="list bundled model presets")
    return parser


def _preset_keys() -> list[str]:
    return sorted(name.lower().replace(" ", "-") for name in MODEL_ZOO)


def _preset_by_key(key: str) -> ModelConfig:
    for name, model in MODEL_ZOO.items():
        if name.lower().replace(" ", "-") == key:
            return model
    raise ReproError(f"unknown preset {key!r}")


def _cmd_predict(args: argparse.Namespace) -> int:
    description = InputDescription.load(args.description)
    description.validate()
    vtrain = VTrain(description.system,
                    granularity=Granularity(args.granularity),
                    check_memory_feasibility=not args.no_memory_check)
    prediction = vtrain.predict(description.model, description.plan,
                                description.training)
    print(f"model            : {description.model.describe()}")
    print(f"system           : {description.system.describe()}")
    print(f"plan             : {description.plan.describe()}")
    print(f"iteration time   : {prediction.iteration_time:.4f} s")
    print(f"utilization      : "
          f"{100 * prediction.gpu_compute_utilization:.2f} %")
    print(f"memory per GPU   : {prediction.memory_per_gpu / GIB:.2f} GiB")
    if description.training.total_tokens:
        estimate = vtrain.estimate_training(description.model,
                                            description.plan,
                                            description.training)
        print(f"iterations       : {estimate.num_iterations:,}")
        print(f"training time    : {estimate.total_days:.2f} days")
        print(f"cost             : ${estimate.dollars_total:,.0f} "
              f"(${estimate.dollars_per_hour:,.0f}/hour)")
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    model = _preset_by_key(args.model)
    plan = ParallelismConfig(tensor=min(8, model.num_heads), data=4,
                             pipeline=1)
    while model.num_heads % plan.tensor:
        plan = plan.replaced(tensor=plan.tensor // 2)
    nodes = max(1, plan.total_gpus // 8)
    description = InputDescription(
        model=model, system=multi_node(nodes), plan=plan,
        training=TrainingConfig(global_batch_size=64,
                                total_tokens=1_000_000_000))
    description.save(args.output)
    print(f"wrote {args.output} — edit the plan/system and run:")
    print(f"  python -m repro predict {args.output}")
    return 0


def _cmd_presets(_args: argparse.Namespace) -> int:
    for name in sorted(MODEL_ZOO):
        print(f"{name.lower().replace(' ', '-'):<18} "
              f"{MODEL_ZOO[name].describe()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {"predict": _cmd_predict, "example": _cmd_example,
                "presets": _cmd_presets}
    try:
        return handlers[args.command](args)
    except (ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
