"""Thin client for the ``repro serve`` daemon.

A :class:`ServeClient` wraps one protocol session — a TCP connection
(:meth:`ServeClient.connect`) or a spawned ``repro serve --stdio``
subprocess (:meth:`ServeClient.spawn`) — behind typed call methods.
Each call writes one request line and reads lines until the matching
response arrives, forwarding any streamed notifications (DSE progress)
to an optional callback, so long sweeps render progress without
polling.

One client is one session and is **not** thread-safe; concurrent
callers each open their own (connections are cheap — the expensive
state lives in the daemon). The CLI's ``repro predict --connect`` and
the service-throughput benchmark both drive this class.
"""

from __future__ import annotations

import socket
import subprocess
import sys
from typing import Any, BinaryIO, Callable, Sequence

from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.protocol import RemoteError

Progress = Callable[[dict[str, Any]], None]


class ServeClient:
    """A JSON-RPC session with a running prediction daemon."""

    def __init__(self, reader: BinaryIO, writer: BinaryIO, *,
                 on_close: Callable[[], None] | None = None) -> None:
        self._reader = reader
        self._writer = writer
        self._on_close = on_close
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float | None = None) -> "ServeClient":
        """Open a TCP session to a daemon at ``host:port``."""
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ReproError(
                f"cannot reach a repro daemon at {host}:{port} ({exc}); "
                f"start one with `repro serve --port {port}`") from exc
        sock.settimeout(None)
        reader = sock.makefile("rb")
        writer = sock.makefile("wb")

        def close() -> None:
            for stream in (reader, writer):
                try:
                    stream.close()
                except OSError:
                    pass
            sock.close()

        return cls(reader, writer, on_close=close)

    @classmethod
    def spawn(cls, extra_args: Sequence[str] = (),
              ) -> tuple["ServeClient", subprocess.Popen]:
        """Spawn a ``repro serve --stdio`` child and attach to it.

        Returns the client and the child process; the caller owns the
        child's lifetime (send :meth:`shutdown` or terminate it).
        """
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             *extra_args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE)

        def close() -> None:
            for stream in (process.stdin, process.stdout):
                try:
                    stream.close()
                except OSError:
                    pass

        return cls(process.stdout, process.stdin, on_close=close), process

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the session (the daemon keeps running)."""
        if not self._closed:
            self._closed = True
            if self._on_close is not None:
                self._on_close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def call(self, method: str, params: dict[str, Any] | None = None, *,
             on_progress: Progress | None = None) -> Any:
        """One request/response round trip.

        Notifications received before the response are forwarded to
        ``on_progress`` (their ``params`` payload).

        Raises:
            RemoteError: The server answered with a JSON-RPC error.
            ReproError: The session broke mid-call.
        """
        if self._closed:
            raise ReproError("client session is closed")
        self._next_id += 1
        request_id = self._next_id
        self._writer.write(protocol.encode(
            protocol.request(request_id, method, params)))
        self._writer.flush()
        while True:
            message = protocol.read_message(self._reader)
            if message is None:
                self.close()
                raise ReproError(
                    f"server closed the connection during {method!r}")
            if "method" in message and "id" not in message:
                if on_progress is not None:
                    on_progress(message.get("params", {}))
                continue
            if message.get("id") != request_id:
                continue  # stale reply from an aborted earlier call
            error = message.get("error")
            if error is not None:
                raise RemoteError(error.get("code",
                                            protocol.INTERNAL_ERROR),
                                  error.get("message", "server error"),
                                  error.get("data"))
            return message.get("result")

    # ------------------------------------------------------------------
    # Typed calls
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.call("ping").get("ok"))

    def predict(self, *, description: dict[str, Any] | None = None,
                preset: str | None = None,
                granularity: str | None = None,
                zero_stage: int | None = None) -> dict[str, Any]:
        """Predict one plan (an :class:`InputDescription` dict or a
        preset key); returns the prediction payload."""
        params: dict[str, Any] = {}
        if description is not None:
            params["description"] = description
        if preset is not None:
            params["preset"] = preset
        if granularity is not None:
            params["granularity"] = granularity
        if zero_stage is not None:
            params["zero_stage"] = zero_stage
        return self.call("predict", params)

    def predict_batch(self, requests: list[dict[str, Any]],
                      ) -> list[dict[str, Any]]:
        """Predict several plans in one request; returns one row per
        entry (``{"result": ...}`` or ``{"error": ...}``)."""
        return self.call("predict_batch",
                         {"requests": requests})["results"]

    def dse(self, params: dict[str, Any], *,
            on_progress: Progress | None = None) -> dict[str, Any]:
        """Run a design-space sweep on the daemon, streaming progress."""
        return self.call("dse", params, on_progress=on_progress)

    def stats(self) -> dict[str, Any]:
        """The daemon's serving metrics (req/s, p50/p99, hit rates)."""
        return self.call("stats")

    def shutdown(self) -> None:
        """Ask the daemon to stop accepting and exit."""
        self.call("shutdown")
        self.close()
