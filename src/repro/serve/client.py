"""Thin client for the ``repro serve`` daemon.

A :class:`ServeClient` wraps one protocol session — a TCP connection
(:meth:`ServeClient.connect`) or a spawned ``repro serve --stdio``
subprocess (:meth:`ServeClient.spawn`) — behind typed call methods.
Each call writes one request line and reads lines until the matching
response arrives, forwarding any streamed notifications (DSE progress)
to an optional callback, so long sweeps render progress without
polling.

One client is one session and is **not** thread-safe; concurrent
callers each open their own (connections are cheap — the expensive
state lives in the daemon). The CLI's ``repro predict --connect`` and
the service-throughput benchmark both drive this class.

Telemetry: :meth:`call` accepts a ``trace_id`` that rides in the
request envelope (see :mod:`repro.serve.protocol`) and records the
client-side half of the round trip as a wire span in
:attr:`ServeClient.last_call_spans` — what
:func:`repro.obs.stitch.stitch_trace` merges with the daemon-side
spans a traced ``predict`` returns.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import time
from typing import Any, BinaryIO, Callable, Sequence

from repro.errors import ReproError
from repro.obs.stitch import wire_span
from repro.serve import protocol
from repro.serve.protocol import RemoteError

Progress = Callable[[dict[str, Any]], None]


class ServeClient:
    """A JSON-RPC session with a running prediction daemon."""

    def __init__(self, reader: BinaryIO, writer: BinaryIO, *,
                 on_close: Callable[[], None] | None = None) -> None:
        self._reader = reader
        self._writer = writer
        self._on_close = on_close
        self._next_id = 0
        self._closed = False
        #: Client-side wire spans of the most recent :meth:`call` made
        #: with a ``trace_id`` (cleared and refilled per traced call).
        self.last_call_spans: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float | None = None) -> "ServeClient":
        """Open a TCP session to a daemon at ``host:port``."""
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ReproError(
                f"cannot reach a repro daemon at {host}:{port} ({exc}); "
                f"start one with `repro serve --port {port}`") from exc
        sock.settimeout(None)
        reader = sock.makefile("rb")
        writer = sock.makefile("wb")

        def close() -> None:
            for stream in (reader, writer):
                try:
                    stream.close()
                except OSError:
                    pass
            sock.close()

        return cls(reader, writer, on_close=close)

    @classmethod
    def spawn(cls, extra_args: Sequence[str] = (),
              ) -> tuple["ServeClient", subprocess.Popen]:
        """Spawn a ``repro serve --stdio`` child and attach to it.

        Returns the client and the child process; the caller owns the
        child's lifetime (send :meth:`shutdown` or terminate it).
        """
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             *extra_args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE)

        def close() -> None:
            for stream in (process.stdin, process.stdout):
                try:
                    stream.close()
                except OSError:
                    pass

        return cls(process.stdout, process.stdin, on_close=close), process

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the session (the daemon keeps running)."""
        if not self._closed:
            self._closed = True
            if self._on_close is not None:
                self._on_close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def call(self, method: str, params: dict[str, Any] | None = None, *,
             on_progress: Progress | None = None,
             trace_id: str | None = None) -> Any:
        """One request/response round trip.

        Notifications received before the response are forwarded to
        ``on_progress`` (their ``params`` payload). When ``trace_id``
        is given it rides in the request envelope and the round trip is
        recorded as a ``client.call`` wire span in
        :attr:`last_call_spans`.

        Raises:
            RemoteError: The server answered with a JSON-RPC error.
            ReproError: The session broke mid-call.
        """
        if self._closed:
            raise ReproError("client session is closed")
        self._next_id += 1
        request_id = self._next_id
        if trace_id is not None:
            self.last_call_spans = []
            call_start = time.time()
        self._writer.write(protocol.encode(
            protocol.request(request_id, method, params,
                             trace_id=trace_id)))
        self._writer.flush()
        try:
            while True:
                message = protocol.read_message(self._reader)
                if message is None:
                    self.close()
                    raise ReproError(
                        f"server closed the connection during {method!r}")
                if "method" in message and "id" not in message:
                    if on_progress is not None:
                        on_progress(message.get("params", {}))
                    continue
                if message.get("id") != request_id:
                    continue  # stale reply from an aborted earlier call
                error = message.get("error")
                if error is not None:
                    raise RemoteError(error.get("code",
                                                protocol.INTERNAL_ERROR),
                                      error.get("message", "server error"),
                                      error.get("data"))
                return message.get("result")
        finally:
            if trace_id is not None:
                now = time.time()
                self.last_call_spans.append(wire_span(
                    "client.call", "client", call_start, now - call_start,
                    method=method, trace_id=trace_id))

    # ------------------------------------------------------------------
    # Typed calls
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.call("ping").get("ok"))

    def predict(self, *, description: dict[str, Any] | None = None,
                preset: str | None = None,
                granularity: str | None = None,
                zero_stage: int | None = None,
                workload: dict[str, Any] | None = None,
                trace: bool = False,
                trace_id: str | None = None) -> dict[str, Any]:
        """Predict one plan (an :class:`InputDescription` dict or a
        preset key); returns the prediction payload.

        ``workload`` is a serialised workload envelope (e.g.
        ``InferenceWorkload.to_dict()``) forwarded to the daemon
        unchanged; omitting it predicts the training workload.

        With ``trace=True`` the daemon returns its wall-clock spans
        (and pid) in the payload's ``served`` dict; pair with a
        ``trace_id`` so the response is stitchable against
        :attr:`last_call_spans`."""
        params: dict[str, Any] = {}
        if description is not None:
            params["description"] = description
        if preset is not None:
            params["preset"] = preset
        if granularity is not None:
            params["granularity"] = granularity
        if zero_stage is not None:
            params["zero_stage"] = zero_stage
        if workload is not None:
            params["workload"] = workload
        if trace:
            params["trace"] = True
        return self.call("predict", params, trace_id=trace_id)

    def predict_batch(self, requests: list[dict[str, Any]],
                      ) -> list[dict[str, Any]]:
        """Predict several plans in one request; returns one row per
        entry (``{"result": ...}`` or ``{"error": ...}``)."""
        return self.call("predict_batch",
                         {"requests": requests})["results"]

    def dse(self, params: dict[str, Any], *,
            on_progress: Progress | None = None) -> dict[str, Any]:
        """Run a design-space sweep on the daemon, streaming progress."""
        return self.call("dse", params, on_progress=on_progress)

    def stats(self) -> dict[str, Any]:
        """The daemon's serving metrics (req/s, p50/p99, hit rates)."""
        return self.call("stats")

    def metrics(self, format: str = "snapshot") -> dict[str, Any]:  # noqa: A002
        """The daemon's full metrics registry (``snapshot`` JSON or
        ``prometheus`` text exposition)."""
        return self.call("metrics", {"format": format})

    def healthz(self) -> dict[str, Any]:
        """Liveness + basic vitals."""
        return self.call("healthz")

    def timeseries(self, *, sample: bool = False) -> dict[str, Any]:
        """The daemon's time-series ring (``repro top``'s data source);
        ``sample=True`` forces a fresh sample first."""
        params = {"sample": True} if sample else {}
        return self.call("timeseries", params)

    def slo(self) -> dict[str, Any]:
        """The daemon's SLO verdict over its configured window."""
        return self.call("slo")

    def shutdown(self) -> None:
        """Ask the daemon to stop accepting and exit."""
        self.call("shutdown")
        self.close()
