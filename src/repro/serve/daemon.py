"""Transports for the prediction service: TCP daemon and stdio loop.

``repro serve --port N`` binds a :class:`ServeDaemon` — a threading TCP
server whose handler threads all dispatch into one shared
:class:`~repro.serve.service.PredictionService`, so every connection
sees the same warm caches, in-flight dedup table, and batcher. A
connection is a sequential JSON-RPC session: the client writes one
request line, reads streamed notification lines (if any), then the
response line, and may keep the connection open for further requests.
Concurrency comes from concurrent *connections* (one thread each).

``repro serve --stdio`` runs :func:`serve_stdio` instead: the same
protocol over stdin/stdout for subprocess embedding (the vLLM-style
"serving tier as a child process" idiom) — requests are handled
sequentially in arrival order, which keeps the parent's pipe framing
trivial. A parent wanting concurrency opens the TCP transport.

``repro serve --metrics-port N`` additionally binds a
:class:`MetricsHTTPServer` — a minimal stdlib HTTP sidecar serving
``GET /metrics`` (Prometheus text exposition), ``/healthz``,
``/timeseries``, and ``/slo`` off the same service, so standard
scrapers and load-balancer health checks work without speaking
JSON-RPC. It shares no state with the RPC transports beyond the
service object itself and stays entirely off the prediction path.
"""

from __future__ import annotations

import http.server
import json
import socket
import socketserver
import threading
from typing import Any, BinaryIO

from repro.serve import protocol
from repro.serve.service import PredictionService


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, stream replies."""

    server: "ServeDaemon"

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        service = self.server.service
        write_lock = threading.Lock()
        try:
            peer = "%s:%d" % self.client_address[:2]
        except (TypeError, IndexError):
            peer = str(self.client_address)

        def send(message: dict[str, Any]) -> None:
            payload = protocol.encode(message)
            with write_lock:
                self.wfile.write(payload)
                self.wfile.flush()

        while True:
            try:
                message = protocol.read_message(self.rfile)
            except protocol.ProtocolError as exc:
                try:
                    send(protocol.error_response(
                        None, protocol.PARSE_ERROR, str(exc)))
                except OSError:
                    pass
                return
            if message is None:
                return
            response, shutdown = service.dispatch(message, send, peer=peer)
            try:
                send(response)
            except OSError:
                return
            if shutdown:
                self.server.request_shutdown()
                return


class ServeDaemon(socketserver.ThreadingTCPServer):
    """The long-lived TCP serving tier.

    Args:
        service: The shared prediction service (owns the warm state).
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks a free port (read it back from
            :attr:`address`).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: PredictionService, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        super().__init__((host, port), _Handler)
        self._serve_thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.socket.getsockname()[:2]

    def start(self) -> None:
        """Serve in a background thread (tests, embedding)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept",
            daemon=True)
        self._serve_thread.start()

    def request_shutdown(self) -> None:
        """Stop accepting from a handler thread (the ``shutdown``
        method) without deadlocking on ``serve_forever``'s loop."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def stop(self) -> None:
        """Stop the accept loop and close the listening socket."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None


class _MetricsHandler(http.server.BaseHTTPRequestHandler):
    """GET-only scrape endpoints backed by the prediction service."""

    server: "MetricsHTTPServer"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                payload = service.metrics_payload({"format": "prometheus"})
                body = payload["text"].encode("utf-8")
                content_type = payload["content_type"]
            elif path == "/healthz":
                body = (json.dumps(service.healthz()) + "\n").encode("utf-8")
                content_type = "application/json"
            elif path == "/timeseries":
                body = (json.dumps(service.timeseries_payload())
                        + "\n").encode("utf-8")
                content_type = "application/json"
            elif path == "/slo":
                body = (json.dumps(service.slo_status()) + "\n").encode(
                    "utf-8")
                content_type = "application/json"
            else:
                self.send_error(404, "unknown path (metrics, healthz, "
                                     "timeseries, slo)")
                return
        except Exception as exc:  # noqa: BLE001 - a scrape never crashes
            self.send_error(500, f"{type(exc).__name__}: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes are periodic; stderr chatter helps no one


class MetricsHTTPServer(http.server.ThreadingHTTPServer):
    """Optional HTTP sidecar for scrapers (``--metrics-port``).

    Args:
        service: The shared prediction service.
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks a free port.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: PredictionService, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        super().__init__((host, port), _MetricsHandler)
        self._serve_thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.socket.getsockname()[:2]

    def start(self) -> None:
        """Serve scrapes in a background thread."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-metrics",
            daemon=True)
        self._serve_thread.start()

    def stop(self) -> None:
        """Stop the scrape listener and close its socket."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None


def serve_stdio(service: PredictionService, stdin: BinaryIO,
                stdout: BinaryIO) -> None:
    """Serve requests over a stdin/stdout pipe until EOF or shutdown.

    Responses (and any streamed notifications) go to ``stdout``; the
    caller must keep its own prints off that stream.
    """
    def send(message: dict[str, Any]) -> None:
        stdout.write(protocol.encode(message))
        stdout.flush()

    while True:
        try:
            message = protocol.read_message(stdin)
        except protocol.ProtocolError as exc:
            send(protocol.error_response(None, protocol.PARSE_ERROR,
                                         str(exc)))
            continue
        if message is None:
            return
        response, shutdown = service.dispatch(message, send, peer="stdio")
        send(response)
        if shutdown:
            return


def wait_for_port(host: str, port: int, timeout: float = 10.0) -> None:
    """Block until a TCP server accepts on ``host:port`` (benchmarks
    and scripts that just spawned a daemon process).

    Raises:
        TimeoutError: Nothing listening within ``timeout`` seconds.
    """
    import time
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return
        except OSError:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no server on {host}:{port} after {timeout:.0f}s"
                ) from None
            time.sleep(0.05)
