"""Transports for the prediction service: TCP daemon and stdio loop.

``repro serve --port N`` binds a :class:`ServeDaemon` — a threading TCP
server whose handler threads all dispatch into one shared
:class:`~repro.serve.service.PredictionService`, so every connection
sees the same warm caches, in-flight dedup table, and batcher. A
connection is a sequential JSON-RPC session: the client writes one
request line, reads streamed notification lines (if any), then the
response line, and may keep the connection open for further requests.
Concurrency comes from concurrent *connections* (one thread each).

``repro serve --stdio`` runs :func:`serve_stdio` instead: the same
protocol over stdin/stdout for subprocess embedding (the vLLM-style
"serving tier as a child process" idiom) — requests are handled
sequentially in arrival order, which keeps the parent's pipe framing
trivial. A parent wanting concurrency opens the TCP transport.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, BinaryIO

from repro.serve import protocol
from repro.serve.service import PredictionService


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, stream replies."""

    server: "ServeDaemon"

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        service = self.server.service
        write_lock = threading.Lock()

        def send(message: dict[str, Any]) -> None:
            payload = protocol.encode(message)
            with write_lock:
                self.wfile.write(payload)
                self.wfile.flush()

        while True:
            try:
                message = protocol.read_message(self.rfile)
            except protocol.ProtocolError as exc:
                try:
                    send(protocol.error_response(
                        None, protocol.PARSE_ERROR, str(exc)))
                except OSError:
                    pass
                return
            if message is None:
                return
            response, shutdown = service.dispatch(message, send)
            try:
                send(response)
            except OSError:
                return
            if shutdown:
                self.server.request_shutdown()
                return


class ServeDaemon(socketserver.ThreadingTCPServer):
    """The long-lived TCP serving tier.

    Args:
        service: The shared prediction service (owns the warm state).
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks a free port (read it back from
            :attr:`address`).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: PredictionService, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        super().__init__((host, port), _Handler)
        self._serve_thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.socket.getsockname()[:2]

    def start(self) -> None:
        """Serve in a background thread (tests, embedding)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept",
            daemon=True)
        self._serve_thread.start()

    def request_shutdown(self) -> None:
        """Stop accepting from a handler thread (the ``shutdown``
        method) without deadlocking on ``serve_forever``'s loop."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def stop(self) -> None:
        """Stop the accept loop and close the listening socket."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None


def serve_stdio(service: PredictionService, stdin: BinaryIO,
                stdout: BinaryIO) -> None:
    """Serve requests over a stdin/stdout pipe until EOF or shutdown.

    Responses (and any streamed notifications) go to ``stdout``; the
    caller must keep its own prints off that stream.
    """
    def send(message: dict[str, Any]) -> None:
        stdout.write(protocol.encode(message))
        stdout.flush()

    while True:
        try:
            message = protocol.read_message(stdin)
        except protocol.ProtocolError as exc:
            send(protocol.error_response(None, protocol.PARSE_ERROR,
                                         str(exc)))
            continue
        if message is None:
            return
        response, shutdown = service.dispatch(message, send)
        send(response)
        if shutdown:
            return


def wait_for_port(host: str, port: int, timeout: float = 10.0) -> None:
    """Block until a TCP server accepts on ``host:port`` (benchmarks
    and scripts that just spawned a daemon process).

    Raises:
        TimeoutError: Nothing listening within ``timeout`` seconds.
    """
    import time
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return
        except OSError:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no server on {host}:{port} after {timeout:.0f}s"
                ) from None
            time.sleep(0.05)
