"""Wire protocol of the ``repro serve`` daemon.

Newline-delimited JSON-RPC 2.0 over a byte stream — the same framing on
both transports (TCP sockets and the stdio subprocess-embedding mode),
so one client implementation drives either. Three message shapes:

* request — ``{"jsonrpc": "2.0", "id": N, "method": "...", "params":
  {...}}``; the client picks ``id`` and the response echoes it.
* response — ``{"jsonrpc": "2.0", "id": N, "result": {...}}`` on
  success, ``{"jsonrpc": "2.0", "id": N, "error": {"code": C,
  "message": "..."}}`` on failure.
* notification — ``{"jsonrpc": "2.0", "method": "...", "params":
  {...}}`` with no ``id``: server-to-client streaming events
  (``dse.progress`` during long sweeps), emitted *before* the final
  response of the request that triggered them.

Requests may additionally carry a ``trace_id`` member — a
client-minted request/trace identifier (see
:mod:`repro.obs.context`). The daemon binds it for the request's
lifetime, tagging every span, access-log line, and dedup/batch
decision, which is what lets the stitcher join the client-side and
daemon-side halves of one request into a single Chrome trace. It is an
extension member in the JSON-RPC 2.0 sense: servers that do not know
it ignore it.

Every message is one ``\\n``-terminated UTF-8 line of compact JSON
(requests and results never contain raw newlines). Floats survive the
round trip exactly — ``json`` serialises via ``repr`` — which is what
lets the acceptance tests pin served predictions bit-identical to
direct :class:`~repro.sim.estimator.VTrain` calls.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from repro.errors import ReproError

JSONRPC_VERSION = "2.0"

#: Maximum accepted message size (a predict_batch of hundreds of full
#: input descriptions is ~1 MB; anything larger is a framing bug).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

# JSON-RPC 2.0 pre-defined error codes, plus application codes in the
# implementation-defined -32000..-32099 server-error band.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
#: The plan is structurally invalid or exceeds GPU memory.
INFEASIBLE = -32000
#: The daemon is shutting down and no longer accepts work.
SHUTTING_DOWN = -32001


class ProtocolError(ReproError):
    """A malformed or oversized message on the wire."""


class RemoteError(ReproError):
    """A request the server answered with a JSON-RPC error object."""

    def __init__(self, code: int, message: str,
                 data: Any = None) -> None:
        super().__init__(message)
        self.code = code
        self.data = data


def encode(message: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + the terminating newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received frame.

    Raises:
        ProtocolError: Not valid JSON, or not a JSON object.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid message frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message frame must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def read_message(stream: BinaryIO) -> dict[str, Any] | None:
    """Read the next frame from a blocking byte stream.

    Returns ``None`` on a clean EOF (peer closed the connection between
    messages).

    Raises:
        ProtocolError: Truncated frame, oversized frame, or bad JSON.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if not line.endswith(b"\n"):
        if len(line) > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"message exceeds {MAX_MESSAGE_BYTES} bytes")
        raise ProtocolError("connection closed mid-message")
    return decode_line(line)


def request(request_id: int, method: str,
            params: dict[str, Any] | None = None, *,
            trace_id: str | None = None) -> dict[str, Any]:
    """Build a request message (optionally carrying a trace ID)."""
    message: dict[str, Any] = {"jsonrpc": JSONRPC_VERSION,
                               "id": request_id, "method": method}
    if params is not None:
        message["params"] = params
    if trace_id is not None:
        message["trace_id"] = trace_id
    return message


def response(request_id: int | None, result: Any) -> dict[str, Any]:
    """Build a success response."""
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def error_response(request_id: int | None, code: int, message: str,
                   data: Any = None) -> dict[str, Any]:
    """Build an error response."""
    error: dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "error": error}


def notification(method: str, params: dict[str, Any]) -> dict[str, Any]:
    """Build a server-to-client notification (no ``id``: no reply)."""
    return {"jsonrpc": JSONRPC_VERSION, "method": method, "params": params}


def parse_request(message: dict[str, Any]) -> tuple[int | None, str,
                                                    dict[str, Any]]:
    """Validate an incoming request; returns ``(id, method, params)``.

    Raises:
        ProtocolError: Missing/ill-typed fields (the caller answers
            with an ``INVALID_REQUEST`` error).
    """
    request_id = message.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("request id must be an integer or string")
    method = message.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError("request has no method")
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request params must be an object")
    return request_id, method, params


def trace_id_of(message: dict[str, Any]) -> str | None:
    """The envelope's ``trace_id``, if present and well-typed.

    A malformed trace ID is dropped rather than rejected — telemetry
    must never fail a request that would otherwise succeed.
    """
    trace_id = message.get("trace_id")
    return trace_id if isinstance(trace_id, str) and trace_id else None
