"""The resident prediction service behind ``repro serve``.

One :class:`PredictionService` owns everything worth keeping warm
between requests — a pool of resident :class:`~repro.sim.estimator.
VTrain` instances (one per distinct system/granularity/ZeRO-stage, so
profiling tables and NCCL models persist), the process-wide structure
cache they share, and a persistent
:class:`~repro.dse.cache.PredictionCache` — and serves concurrent
``predict`` / ``predict_batch`` / ``dse`` requests from any number of
transport threads. Three mechanisms make the shared-warm-state story
fast under concurrency:

* **In-flight deduplication.** Requests are keyed by the same complete
  fingerprint the prediction cache uses; while one is being computed,
  identical arrivals coalesce onto the leader's computation and all
  waiters receive the same result. N identical concurrent predicts run
  exactly one simulation (``serve.dedup.coalesced`` counts followers).

* **Micro-batching.** Admitted jobs queue into a bounded-delay batcher;
  each flush groups jobs by resident simulator and model/recipe and
  replays them through :meth:`VTrain.predict_prepared`, which stacks
  runs sharing one cached structure into a single ``(tasks x N)``
  :func:`~repro.sim.engine.simulate_retimed_batch` sweep instead of N
  scalar replays. The flush delay is bounded by ``batch_window_s``
  (default 2 ms) so single requests stay interactive.

* **Result caching.** Every computed point lands in the prediction
  cache, so repeats — including requests arriving *after* their
  duplicate finished — skip simulation entirely.

Served predictions are bit-identical to direct :meth:`VTrain.predict`
calls: the batched replay engine is column-for-column exact, and the
response is assembled from the same cached representation on every path
(computed, coalesced, or cache hit).

The service is transport-agnostic: :meth:`dispatch` maps one parsed
JSON-RPC request to a response, emitting streamed notifications through
a callback. ``repro.serve.daemon`` wires it to TCP sockets and stdio.

Telemetry (the ``repro.obs`` v2 surface) is request-scoped: the
envelope's trace ID is bound for the request's lifetime, every
dedup/batch decision is stamped onto the job it routed to, and a
``predict`` asked to trace itself (``params["trace"]``) gets its
daemon-side wall-clock spans back in the response — including the
micro-batch queueing interval and, for coalesced followers, the
leader's trace ID — for the stitcher to merge with the client's spans.
A background :class:`~repro.obs.timeseries.ServingTimeSeries` sampler
turns the lifetime ``serve.*`` aggregates into bounded req/s and
latency history, the :class:`~repro.obs.slo.SLOTracker` evaluates the
latency/error-budget objectives over that ring, and the ``metrics`` /
``healthz`` / ``timeseries`` / ``slo`` RPCs (plus the optional HTTP
scrape listener in :mod:`repro.serve.daemon`) expose all of it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

from repro import obs
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import TrainingConfig
from repro.config.presets import MODEL_ZOO
from repro.config.system import NetworkSpec
from repro.dse.cache import PredictionCache, fingerprint
from repro.dse.explorer import DesignPoint, DesignSpaceExplorer
from repro.dse.space import SearchSpace
from repro.errors import ConfigError, InfeasibleConfigError, ReproError
from repro.graph.builder import Granularity, structure_cache_stats
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.stitch import wire_span
from repro.obs.timeseries import ServingTimeSeries
from repro.serve import protocol
from repro.sim.estimator import VTrain
from repro.workload import InferenceWorkload, workload_from_dict

GIB = float(1 << 30)

#: Default bounded delay the batcher waits after the first admission of
#: a flush, letting a burst of concurrent requests coalesce into one
#: vectorized sweep. Small against even a warm predict (~ms), large
#: against thread-scheduling jitter.
DEFAULT_BATCH_WINDOW_S = 0.002

#: Upper bound on jobs per batch flush (transient duration-matrix
#: memory; matches the DSE explorers' sweep cap).
DEFAULT_MAX_BATCH = 64

Notify = Callable[[dict[str, Any]], None]


def _preset_description(preset: str) -> InputDescription:
    """Resolve a preset key the same way the CLI does (import deferred:
    cli imports serve for the ``--connect`` path)."""
    from repro.cli import _preset_description as cli_preset
    return cli_preset(preset)


@dataclass
class _Job:
    """One admitted prediction: parsed inputs plus its completion latch.

    The batcher thread fills exactly one of ``point`` (a cacheable
    design point — possibly infeasible) or ``error`` (an unexpected
    failure), then fires ``done``; the leader *and* every coalesced
    follower wait on the same latch and read the same fields.
    """

    description: InputDescription
    granularity: Granularity
    zero_stage: int
    key: str
    #: Inference workload of a serving prediction; ``None`` for the
    #: default training workload.
    workload: InferenceWorkload | None = None
    done: threading.Event = field(default_factory=threading.Event)
    point: DesignPoint | None = None
    error: BaseException | None = None
    #: Trace ID of the request that admitted this job (the *leader*);
    #: coalesced followers read it to name the computation that served
    #: them.
    trace_id: str | None = None
    #: Wall-clock instants of the job's life: admission into the
    #: micro-batch queue, start of the flush that executed it, and
    #: completion. ``exec_start_unix - admitted_unix`` is the
    #: micro-batch queueing interval a stitched trace renders.
    admitted_unix: float = 0.0
    exec_start_unix: float | None = None
    done_unix: float | None = None
    #: Size of the flush this job executed in.
    batch_size: int = 0


class PredictionService:
    """Long-lived, thread-safe prediction engine with warm shared state.

    Args:
        cache: Persistent prediction cache (a fresh empty one when
            omitted). The caller owns persistence — ``repro serve``
            loads/saves it around the daemon's lifetime.
        batch_window_s: Bounded delay of one batcher flush; ``0``
            flushes as soon as the batcher thread wakes.
        max_batch: Jobs per flush.
        default_granularity: Granularity for requests that do not name
            one.
        sample_interval_s: Cadence of the background time-series
            sampler; ``0`` disables the thread (the ``timeseries`` RPC
            can still sample on demand).
        timeseries_capacity: Samples kept in the time-series ring.
        slo: Serving objectives the SLO tracker evaluates (defaults to
            :class:`~repro.obs.slo.SLOConfig`'s defaults).
        access_log: Writable text stream receiving one JSON line per
            dispatched request (method, request/trace IDs, status,
            latency); the caller owns the stream's lifetime.
    """

    def __init__(self, *, cache: PredictionCache | None = None,
                 batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 default_granularity: Granularity = Granularity.OPERATOR,
                 sample_interval_s: float = 1.0,
                 timeseries_capacity: int | None = None,
                 slo: SLOConfig | None = None,
                 access_log: TextIO | None = None,
                 ) -> None:
        self.cache = cache if cache is not None else PredictionCache()
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.default_granularity = default_granularity
        self.started_at = time.monotonic()
        self._access_log = access_log
        self._access_log_lock = threading.Lock()

        self._vtrains: dict[str, VTrain] = {}
        self._vtrain_lock = threading.Lock()
        self._inflight: dict[str, _Job] = {}
        self._inflight_lock = threading.Lock()

        self._queue: deque[_Job] = deque()
        self._wake = threading.Condition()
        self._closed = False
        self._batcher = threading.Thread(target=self._batch_loop,
                                         name="repro-serve-batcher",
                                         daemon=True)
        self._batcher.start()

        # Serving metrics are always-on (the daemon exists to report
        # them), so the service observes its histograms directly
        # instead of going through the gated obs.observe() helper.
        m = obs.metrics
        self._requests = m.counter("serve.requests")
        self._request_errors = m.counter("serve.requests.errors")
        self._predicts = m.counter("serve.requests.predict")
        self._dses = m.counter("serve.requests.dse")
        self._dedup_leaders = m.counter("serve.dedup.leaders")
        self._dedup_coalesced = m.counter("serve.dedup.coalesced")
        self._cache_served = m.counter("serve.cache.served")
        self._batch_flushes = m.counter("serve.batch.flushes")
        self._batch_jobs = m.counter("serve.batch.jobs")
        self._request_latency = m.histogram("serve.request_s")
        self._predict_latency = m.histogram("serve.predict_s")
        self._batch_size = m.histogram("serve.batch.size")

        # Time-series + SLO: history and objectives over the always-on
        # serve.* instruments above. The sampler runs off the request
        # path; disabling it (interval 0) leaves on-demand sampling.
        ts_kwargs: dict[str, Any] = {}
        if timeseries_capacity is not None:
            ts_kwargs["capacity"] = timeseries_capacity
        if sample_interval_s > 0:
            ts_kwargs["interval_s"] = sample_interval_s
        self.timeseries = ServingTimeSeries(m, **ts_kwargs)
        self.slo = SLOTracker(slo if slo is not None else SLOConfig(),
                              registry=m)
        if sample_interval_s > 0:
            self.timeseries.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the sampler and the batcher (after draining its queue)."""
        self.timeseries.stop()
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        self._batcher.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------
    def _parse_predict(self, params: dict[str, Any]) -> tuple[
            InputDescription, Granularity, int, InferenceWorkload | None]:
        if ("description" in params) == ("preset" in params):
            raise ConfigError(
                "predict needs exactly one of 'description' or 'preset'")
        if "preset" in params:
            description = _preset_description(str(params["preset"]))
        else:
            payload = params["description"]
            if not isinstance(payload, dict):
                raise ConfigError("'description' must be an object")
            description = InputDescription.from_dict(payload)
        try:
            granularity = Granularity(
                params.get("granularity", self.default_granularity.value))
        except ValueError as exc:
            raise ConfigError(f"unknown granularity: {exc}") from None
        zero_stage = params.get("zero_stage", 1)
        if zero_stage not in (0, 1, 2, 3):
            raise ConfigError("zero_stage must be 0..3")
        # The workload envelope arrives exactly as the client serialised
        # it (None / training / inference); parsing is the only
        # transformation it undergoes on the way to the simulator.
        workload = workload_from_dict(params.get("workload"))
        return description, granularity, int(zero_stage), workload

    def _vtrain_for(self, description: InputDescription,
                    granularity: Granularity, zero_stage: int) -> VTrain:
        """The resident simulator for one system/granularity/stage."""
        key = json.dumps({"system": description.system.to_dict(),
                          "granularity": granularity.value,
                          "zero_stage": zero_stage}, sort_keys=True)
        with self._vtrain_lock:
            vtrain = self._vtrains.get(key)
            if vtrain is None:
                vtrain = VTrain(description.system, granularity=granularity,
                                zero_stage=zero_stage)
                self._vtrains[key] = vtrain
            return vtrain

    # ------------------------------------------------------------------
    # Predict: dedup + batch admission
    # ------------------------------------------------------------------
    def predict(self, params: dict[str, Any]) -> dict[str, Any]:
        """Serve one prediction (blocking; safe from any thread).

        When ``params["trace"]`` is truthy, the response's ``served``
        section additionally carries the daemon's wall-clock spans for
        this request (dispatch, micro-batch queueing, batched
        execution) and the daemon pid, ready for
        :func:`repro.obs.stitch.stitch_trace`.
        """
        description, granularity, zero_stage, workload = \
            self._parse_predict(params)
        trace = bool(params.get("trace"))
        trace_id = obs.current_trace_id() or protocol.trace_id_of(params)
        if trace and trace_id is None:
            trace_id = obs.new_trace_id()  # daemon-minted fallback
        self._predicts.increment()
        started = time.perf_counter()
        started_unix = time.time()
        point, job, source = self._admit(description, granularity,
                                         zero_stage, workload,
                                         trace_id=trace_id)
        if job is not None:
            job.done.wait()
            if job.error is not None:
                raise job.error
            point = job.point
        result = self._result_from_point(description, point, source)
        served = result["served"]
        if trace_id is not None:
            served["trace_id"] = trace_id
        if job is not None and job.trace_id is not None:
            served["leader_trace_id"] = job.trace_id
        if trace:
            served["pid"] = os.getpid()
            served["spans"] = self._predict_spans(trace_id, source, job,
                                                  started_unix)
        self._predict_latency.observe(time.perf_counter() - started)
        return result

    @staticmethod
    def _predict_spans(trace_id: str | None, source: str,
                       job: _Job | None,
                       started_unix: float) -> list[dict[str, Any]]:
        """The daemon-side wire spans of one traced predict.

        The outer ``serve.predict`` span covers the whole server-side
        handling; jobs that went through the batcher additionally
        expose the micro-batch queueing interval and the batched
        execution (stamped with the flush size and the leader's trace
        ID — for a coalesced follower these are the *leader's* job
        timestamps, which is exactly what "who served me" means).
        """
        now = time.time()
        spans = [wire_span("serve.predict", "serve", started_unix,
                           now - started_unix, trace_id=trace_id,
                           source=source)]
        if job is not None and job.exec_start_unix is not None:
            spans.append(wire_span(
                "serve.batch.queued", "serve", job.admitted_unix,
                max(job.exec_start_unix - job.admitted_unix, 0.0),
                trace_id=trace_id, leader_trace_id=job.trace_id))
            done_unix = job.done_unix or now
            spans.append(wire_span(
                "serve.batch.execute", "serve", job.exec_start_unix,
                max(done_unix - job.exec_start_unix, 0.0),
                trace_id=trace_id, leader_trace_id=job.trace_id,
                batch_size=job.batch_size))
        return spans

    def _admit(self, description: InputDescription,
               granularity: Granularity, zero_stage: int,
               workload: InferenceWorkload | None = None,
               trace_id: str | None = None,
               ) -> tuple[DesignPoint | None, _Job | None, str]:
        """Route one prediction to the cache, an in-flight job, or a
        fresh job; returns ``(cached_point, job_to_wait_on, source)``
        — exactly one of the first two is non-``None``. A fresh job is
        stamped with the admitting request's ``trace_id`` (it becomes
        the *leader* that coalesced followers point at)."""
        key = fingerprint(description.model, description.plan,
                          description.training, description.system,
                          granularity, zero_stage=zero_stage,
                          workload=workload)
        with self._inflight_lock:
            point = self.cache.get(key)
            if point is not None:
                self._cache_served.increment()
                return point, None, "cache"
            job = self._inflight.get(key)
            if job is not None:
                self._dedup_coalesced.increment()
                return None, job, "coalesced"
            job = _Job(description=description, granularity=granularity,
                       zero_stage=zero_stage, key=key, workload=workload,
                       trace_id=trace_id, admitted_unix=time.time())
            self._inflight[key] = job
            self._dedup_leaders.increment()
        with self._wake:
            if self._closed:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                raise ReproError("service is shutting down")
            self._queue.append(job)
            self._wake.notify()
        return None, job, "computed"

    def _result_from_point(self, description: InputDescription,
                           point: DesignPoint, source: str,
                           ) -> dict[str, Any]:
        """Assemble the predict response from a cached design point.

        Every serving path (fresh compute, coalesced wait, cache hit)
        goes through this one function, so identical requests receive
        identical payloads no matter how they were served. Infeasible
        points raise exactly like a direct :meth:`VTrain.predict`.
        """
        if not point.feasible:
            raise InfeasibleConfigError(point.infeasible_reason)
        if point.workload == "inference":
            return {
                "workload": "inference",
                "ttft_s": point.ttft_s,
                "tpot_s": point.tpot_s,
                "tokens_per_s": point.tokens_per_s,
                "memory_per_gpu": point.memory_gib * GIB,
                "num_gpus": point.plan.total_gpus,
                "num_replicas": point.plan.data,
                "served": {"source": source},
            }
        model = description.model
        training = description.training
        tokens = training.tokens_per_iteration(model)
        return {
            "iteration_time": point.iteration_time,
            "gpu_compute_utilization": point.utilization,
            "memory_per_gpu": point.memory_gib * GIB,
            "tokens_per_iteration": tokens,
            "model_flops": model.model_flops_per_iteration(tokens),
            "num_gpus": point.plan.total_gpus,
            "served": {"source": source},
        }

    # ------------------------------------------------------------------
    # The batcher
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._closed:
                    self._wake.wait()
                if not self._queue and self._closed:
                    return
            # Bounded delay: let the burst that woke us accumulate.
            if self.batch_window_s > 0.0:
                time.sleep(self.batch_window_s)
            with self._wake:
                jobs = [self._queue.popleft()
                        for _ in range(min(len(self._queue),
                                           self.max_batch))]
            if jobs:
                self._execute(jobs)

    def _execute(self, jobs: list[_Job]) -> None:
        """Run one flush: group, replay (batched), publish, release."""
        self._batch_flushes.increment()
        self._batch_jobs.increment(len(jobs))
        self._batch_size.observe(len(jobs))
        flush_start = time.time()
        for job in jobs:
            job.exec_start_unix = flush_start
            job.batch_size = len(jobs)
        groups: dict[str, list[_Job]] = {}
        for job in jobs:
            key_parts = {"model": job.description.model.to_dict(),
                         "training": job.description.training.to_dict(),
                         "system": job.description.system.to_dict(),
                         "granularity": job.granularity.value,
                         "zero_stage": job.zero_stage}
            if job.workload is not None:
                key_parts["workload"] = job.workload.to_dict()
            group_key = json.dumps(key_parts, sort_keys=True)
            groups.setdefault(group_key, []).append(job)
        for members in groups.values():
            self._execute_group(members)

    def _execute_group(self, jobs: list[_Job]) -> None:
        """Predict one (model, training, system, granularity) group.

        Plans inside a group that share a cached structure replay in a
        single vectorized sweep via :meth:`VTrain.predict_prepared`.
        Whatever happens, every job's latch fires.
        """
        model = jobs[0].description.model
        training = jobs[0].description.training
        try:
            group_span = obs.span(
                "serve.batch.execute_group", "serve", jobs=len(jobs),
                trace_ids=[job.trace_id for job in jobs
                           if job.trace_id is not None])
            with group_span:
                self._execute_group_inner(jobs, model, training)
        except BaseException as exc:  # noqa: BLE001 - published to waiters
            for job in jobs:
                if job.point is None:
                    job.error = exc
        finally:
            done_unix = time.time()
            for job in jobs:
                job.done_unix = done_unix
                if job.point is not None:
                    self.cache.put(job.key, job.point)
                with self._inflight_lock:
                    self._inflight.pop(job.key, None)
                job.done.set()

    def _execute_group_inner(self, jobs: list[_Job], model: ModelConfig,
                             training: TrainingConfig) -> None:
        """Predict one group's jobs (exceptions bubble to the caller)."""
        vtrain = self._vtrain_for(jobs[0].description,
                                  jobs[0].granularity,
                                  jobs[0].zero_stage)
        if jobs[0].workload is not None:
            # Inference jobs: two small phase-graph replays each; the
            # shared structure cache already collapses repeat
            # topologies, so there is no batched-replay path to ride.
            workload = jobs[0].workload
            for job in jobs:
                try:
                    job.description.validate()
                    prediction = vtrain.predict_inference(
                        model, job.description.plan, workload)
                except (InfeasibleConfigError, ConfigError) as exc:
                    job.point = DesignPoint(plan=job.description.plan,
                                            feasible=False,
                                            infeasible_reason=str(exc),
                                            workload="inference")
                    continue
                job.point = DesignPoint(
                    plan=job.description.plan, feasible=True,
                    iteration_time=prediction.decode_step_time,
                    memory_gib=prediction.memory_per_gpu / GIB,
                    workload="inference",
                    tokens_per_s=prediction.tokens_per_second,
                    ttft_s=prediction.prefill_time,
                    tpot_s=prediction.decode_step_time)
            return
        survivors: list[_Job] = []
        entries = []
        for job in jobs:
            try:
                job.description.validate()
                footprint, prepared = vtrain.prepare_checked(
                    model, job.description.plan, training)
            except (InfeasibleConfigError, ConfigError) as exc:
                job.point = DesignPoint(plan=job.description.plan,
                                        feasible=False,
                                        infeasible_reason=str(exc))
                continue
            survivors.append(job)
            entries.append((job.description.plan, footprint, prepared))
        if survivors:
            predictions = vtrain.predict_prepared(model, training,
                                                  entries)
            for job, prediction in zip(survivors, predictions):
                job.point = DesignPoint(
                    plan=job.description.plan, feasible=True,
                    iteration_time=prediction.iteration_time,
                    utilization=prediction.gpu_compute_utilization,
                    memory_gib=prediction.memory_per_gpu / GIB)

    # ------------------------------------------------------------------
    # predict_batch
    # ------------------------------------------------------------------
    def predict_batch(self, params: dict[str, Any]) -> dict[str, Any]:
        """Serve several predictions through one admission wave.

        Each entry of ``params['requests']`` is an independent predict
        params object; the response carries one row per entry, either
        ``{"result": ...}`` or ``{"error": {...}}``, in request order
        (one infeasible plan cannot fail its neighbours).
        """
        requests = params.get("requests")
        if not isinstance(requests, list):
            raise ConfigError("predict_batch needs a 'requests' array")
        parsed = [self._parse_predict(entry) for entry in requests]
        admissions = [self._admit(*inputs) for inputs in parsed]
        rows: list[dict[str, Any]] = []
        for (description, _, _, _), (point, job, source) in zip(parsed,
                                                                admissions):
            try:
                if job is not None:
                    job.done.wait()
                    if job.error is not None:
                        raise job.error
                    point = job.point
                rows.append({"result": self._result_from_point(
                    description, point, source)})
            except (InfeasibleConfigError, ConfigError) as exc:
                rows.append({"error": {"code": protocol.INFEASIBLE,
                                       "message": str(exc)}})
        return {"results": rows}

    # ------------------------------------------------------------------
    # DSE
    # ------------------------------------------------------------------
    def dse(self, params: dict[str, Any],
            notify: Notify | None = None) -> dict[str, Any]:
        """Run a design-space sweep, streaming progress notifications.

        Long sweeps emit ``dse.progress`` notifications (done/total,
        throttled to ~1% steps) through ``notify`` before the final
        response, so clients render progress without polling. The sweep
        shares the daemon's prediction cache: re-submitted or
        overlapping sweeps skip already-predicted plans.
        """
        self._dses.increment()
        model_key = params.get("model")
        if not isinstance(model_key, str):
            raise ConfigError("dse needs a 'model' preset key")
        model = self._dse_model(model_key)
        num_gpus = params.get("num_gpus")
        max_gpus = params.get("max_gpus")
        if (num_gpus is None) == (max_gpus is None):
            raise ConfigError(
                "dse needs exactly one of 'num_gpus' or 'max_gpus'")
        network = str(params.get("network", "flat"))
        NetworkSpec.parse(network)
        try:
            granularity = Granularity(params.get("granularity", "stage"))
        except ValueError as exc:
            raise ConfigError(f"unknown granularity: {exc}") from None
        training = TrainingConfig(
            global_batch_size=int(params.get("global_batch", 64)),
            total_tokens=int(params.get("total_tokens", 0)))
        space = SearchSpace(
            max_tensor=int(params.get("max_tensor", 16)),
            max_data=int(params.get("max_data", 32)),
            max_pipeline=int(params.get("max_pipeline", 105)),
            micro_batch_sizes=tuple(
                params.get("micro_batches", (1, 2, 4, 8, 16))),
            virtual_stages=tuple(params.get("virtual_stages", (1,))))

        last_emitted = -1

        def progress(done: int, total: int) -> None:
            nonlocal last_emitted
            if notify is None or not total:
                return
            step = max(1, total // 100)
            if done != total and done - last_emitted < step:
                return
            last_emitted = done
            notify(protocol.notification(
                "dse.progress", {"done": done, "total": total}))

        explorer = DesignSpaceExplorer(
            model, training,
            gpus_per_node=int(params.get("gpus_per_node", 8)),
            granularity=granularity, network=network,
            zero_stage=int(params.get("zero_stage", 1)))
        result = explorer.explore(
            space=space,
            num_gpus=int(num_gpus) if num_gpus is not None else None,
            max_gpus=int(max_gpus) if max_gpus is not None else None,
            cache=self.cache, progress=progress)

        top = int(params.get("top", 10))
        feasible = sorted(result.feasible_points,
                          key=lambda point: point.iteration_time)
        payload: dict[str, Any] = {
            "num_plans": len(result.points),
            "num_feasible": result.num_feasible,
            "top": [point.to_dict() for point in feasible[:top]],
        }
        if result.num_feasible:
            payload["fastest"] = result.best_by_iteration_time().to_dict()
            payload["cheapest"] = result.best_by_cost().to_dict()
        if params.get("include_points"):
            payload["points"] = [point.to_dict()
                                 for point in result.points]
        return payload

    @staticmethod
    def _dse_model(key: str) -> ModelConfig:
        for name, model in MODEL_ZOO.items():
            if name.lower().replace(" ", "-") == key:
                return model
        raise ConfigError(f"unknown preset {key!r}")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload: req/s, latency quantiles, hit rates."""
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        total = self._requests.value
        return {
            "uptime_s": uptime,
            "requests": {
                "total": total,
                "predict": self._predicts.value,
                "dse": self._dses.value,
                "errors": self._request_errors.value,
                "per_second": total / uptime,
            },
            "latency": {
                "request_s": self._request_latency.summary(),
                "predict_s": self._predict_latency.summary(),
            },
            "dedup": {
                "leaders": self._dedup_leaders.value,
                "coalesced": self._dedup_coalesced.value,
                "cache_served": self._cache_served.value,
            },
            "batch": {
                "flushes": self._batch_flushes.value,
                "jobs": self._batch_jobs.value,
                "size": self._batch_size.summary(),
            },
            "prediction_cache": self.cache.stats,
            "structure_cache": structure_cache_stats(),
            "resident_simulators": len(self._vtrains),
            "slo": self.slo_status(),
        }

    # ------------------------------------------------------------------
    # Telemetry endpoints
    # ------------------------------------------------------------------
    def metrics_payload(self, params: dict[str, Any] | None = None,
                        ) -> dict[str, Any]:
        """The ``metrics`` RPC: the full registry, as a JSON snapshot
        (default) or Prometheus text exposition."""
        fmt = str((params or {}).get("format", "snapshot"))
        # Refresh the serve.slo.* gauges so a Prometheus-only consumer
        # (nothing ever calling the slo RPC) still scrapes live values.
        self.slo_status()
        if fmt == "snapshot":
            return {"format": fmt, "snapshot": obs.snapshot()}
        if fmt == "prometheus":
            return {"format": fmt,
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "text": render_prometheus(obs.snapshot())}
        raise ConfigError(
            f"unknown metrics format {fmt!r} (snapshot or prometheus)")

    def healthz(self) -> dict[str, Any]:
        """Liveness + basic vitals (also ``GET /healthz`` on the HTTP
        scrape listener)."""
        return {"ok": True,
                "uptime_s": time.monotonic() - self.started_at,
                "requests": self._requests.value,
                "resident_simulators": len(self._vtrains)}

    def timeseries_payload(self, params: dict[str, Any] | None = None,
                           ) -> dict[str, Any]:
        """The ``timeseries`` RPC: the sampler ring (``repro top``'s
        data source). ``params["sample"]`` forces a fresh sample first
        — useful when the background sampler is disabled or the caller
        wants zero staleness."""
        if (params or {}).get("sample") or not self.timeseries.samples():
            self.timeseries.sample_now()
        return self.timeseries.payload()

    def slo_status(self) -> dict[str, Any]:
        """The SLO verdict over the current time-series window."""
        return self.slo.evaluate(self.timeseries.samples())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, message: dict[str, Any], notify: Notify,
                 peer: str | None = None) -> tuple[dict[str, Any], bool]:
        """Answer one JSON-RPC request.

        Returns ``(response, shutdown_requested)``; transports write
        the response and tear themselves down when the flag is set.
        Never raises — every failure becomes a JSON-RPC error response.

        The envelope's ``trace_id`` (if any) is bound for the request's
        lifetime, so every span, metric label, and dedup decision the
        handler makes is attributable to the originating client call;
        ``peer`` (the transport's remote address) rides along in the
        access log only.
        """
        try:
            request_id, method, params = protocol.parse_request(message)
        except protocol.ProtocolError as exc:
            self._request_errors.increment()
            response = protocol.error_response(
                message.get("id"), protocol.INVALID_REQUEST, str(exc))
            self._log_access(message.get("method"), message.get("id"),
                             protocol.trace_id_of(message), response,
                             0.0, peer)
            return response, False
        self._requests.increment()
        started = time.perf_counter()
        trace_id = protocol.trace_id_of(message)
        shutdown = False
        with obs.bind_trace(trace_id):
            try:
                if method == "ping":
                    result: Any = {"ok": True}
                elif method == "predict":
                    result = self.predict(params)
                elif method == "predict_batch":
                    result = self.predict_batch(params)
                elif method == "dse":
                    result = self.dse(params, notify)
                elif method == "stats":
                    result = self.stats()
                elif method == "metrics":
                    result = self.metrics_payload(params)
                elif method == "healthz":
                    result = self.healthz()
                elif method == "timeseries":
                    result = self.timeseries_payload(params)
                elif method == "slo":
                    result = self.slo_status()
                elif method == "shutdown":
                    result = {"ok": True}
                    shutdown = True
                else:
                    self._request_errors.increment()
                    response = protocol.error_response(
                        request_id, protocol.METHOD_NOT_FOUND,
                        f"unknown method {method!r}")
                    self._log_access(method, request_id, trace_id, response,
                                     time.perf_counter() - started, peer)
                    return response, False
                response = protocol.response(request_id, result)
            except InfeasibleConfigError as exc:
                self._request_errors.increment()
                response = protocol.error_response(
                    request_id, protocol.INFEASIBLE, str(exc))
            except (ConfigError, ReproError) as exc:
                self._request_errors.increment()
                response = protocol.error_response(
                    request_id, protocol.INVALID_PARAMS, str(exc))
            except Exception as exc:  # noqa: BLE001 - answered, not raised
                self._request_errors.increment()
                response = protocol.error_response(
                    request_id, protocol.INTERNAL_ERROR,
                    f"{type(exc).__name__}: {exc}")
        elapsed = time.perf_counter() - started
        self._request_latency.observe(elapsed)
        self._log_access(method, request_id, trace_id, response,
                         elapsed, peer)
        return response, shutdown

    def _log_access(self, method: Any, request_id: Any,
                    trace_id: str | None, response: dict[str, Any],
                    elapsed_s: float, peer: str | None) -> None:
        """One structured JSON access-log line per answered request."""
        if self._access_log is None:
            return
        error = response.get("error")
        record = {
            "t_unix": time.time(),
            "method": method,
            "id": request_id,
            "trace_id": trace_id,
            "status": "error" if error else "ok",
            "code": error["code"] if error else 0,
            "elapsed_s": round(elapsed_s, 9),
            "peer": peer,
        }
        line = json.dumps(record, separators=(",", ":"))
        try:
            with self._access_log_lock:
                self._access_log.write(line + "\n")
                self._access_log.flush()
        except (OSError, ValueError):
            pass  # a torn log sink must never fail the request
