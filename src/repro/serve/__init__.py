"""repro.serve — prediction-as-a-service (the ``repro serve`` daemon).

One resident process owns the warm state every prediction benefits
from — profiled operator tables, the process-wide LRU structure cache,
a persistent prediction cache — and serves concurrent ``predict`` /
``predict_batch`` / ``dse`` requests over newline-delimited JSON-RPC,
deduplicating identical in-flight fingerprints and micro-batching
concurrent retimes into vectorized sweeps. See
:mod:`repro.serve.service` for the serving semantics,
:mod:`repro.serve.daemon` for the TCP/stdio transports, and
:mod:`repro.serve.client` for the thin client the CLI's
``predict --connect`` uses.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import (MetricsHTTPServer, ServeDaemon,
                                serve_stdio, wait_for_port)
from repro.serve.protocol import ProtocolError, RemoteError
from repro.serve.service import PredictionService

__all__ = [
    "MetricsHTTPServer", "PredictionService", "ProtocolError",
    "RemoteError", "ServeClient", "ServeDaemon", "serve_stdio",
    "wait_for_port",
]
