"""Hardware substrate: GPU specs, kernel timing, interconnects, topology."""

from repro.hardware.cluster import ClusterTopology, RankCoordinates
from repro.hardware.gpu import (A100_40GB, A100_80GB, H100_80GB, KNOWN_GPUS,
                                V100_32GB, GPUSpec, gpu_by_name)
from repro.hardware.interconnect import (LinkType, RingParameters,
                                         infiniband_ring, nvlink_ring,
                                         p2p_time)
from repro.hardware.kernels import (FP16_BYTES, FP32_BYTES, DeviceModel,
                                    Kernel, KernelKind)

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "ClusterTopology",
    "DeviceModel",
    "FP16_BYTES",
    "FP32_BYTES",
    "GPUSpec",
    "H100_80GB",
    "Kernel",
    "KernelKind",
    "KNOWN_GPUS",
    "LinkType",
    "RankCoordinates",
    "RingParameters",
    "V100_32GB",
    "gpu_by_name",
    "infiniband_ring",
    "nvlink_ring",
    "p2p_time",
]
