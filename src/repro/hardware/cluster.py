"""Cluster topology and 3D-parallel rank mapping.

Implements the GPU placement of paper Figure 3: tensor-parallel groups are
consecutive GPUs within a node (NVLink domain), pipeline stages occupy
consecutive nodes, and data-parallel groups stride across pipeline blocks.
Formally a worker's global rank decomposes as::

    rank = t_idx + t * (p_idx + p * d_idx)

so GPUs [0, t) form tensor group 0 of stage 0 of replica 0, stages of one
replica are laid out contiguously, and replicas follow one another. The
topology answers the questions the communication models need: which link
type does a group use, and how many collectives contend for one node's
NICs (the Figure 3 "four data parallel groups share the same ToR switch"
discussion, which the testbed emulator models and vTrain's Equation-1
model deliberately does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.hardware.interconnect import LinkType

if TYPE_CHECKING:  # imported lazily to avoid a config <-> hardware cycle
    from repro.config.parallelism import ParallelismConfig
    from repro.config.system import SystemConfig


@dataclass(frozen=True)
class RankCoordinates:
    """Position of one GPU in the (t, d, p) grid."""

    tensor: int
    data: int
    pipeline: int


class ClusterTopology:
    """Maps 3D-parallel coordinates onto nodes and link types."""

    def __init__(self, system: "SystemConfig", plan: "ParallelismConfig") -> None:
        if plan.total_gpus > system.num_gpus:
            raise ConfigError(
                f"plan needs {plan.total_gpus} GPUs, system has "
                f"{system.num_gpus}")
        self.system = system
        self.plan = plan

    # ------------------------------------------------------------------
    # Rank arithmetic
    # ------------------------------------------------------------------
    def rank_of(self, coords: RankCoordinates) -> int:
        """Global rank of the GPU at (t_idx, d_idx, p_idx)."""
        t, p = self.plan.tensor, self.plan.pipeline
        self._check_coords(coords)
        return coords.tensor + t * (coords.pipeline + p * coords.data)

    def coords_of(self, rank: int) -> RankCoordinates:
        """Inverse of :meth:`rank_of`."""
        t, p = self.plan.tensor, self.plan.pipeline
        if not 0 <= rank < self.plan.total_gpus:
            raise ConfigError(f"rank {rank} out of range")
        t_idx = rank % t
        p_idx = (rank // t) % p
        d_idx = rank // (t * p)
        return RankCoordinates(tensor=t_idx, data=d_idx, pipeline=p_idx)

    def node_of(self, rank: int) -> int:
        """Server node hosting a global rank."""
        return rank // self.system.gpus_per_node

    def _check_coords(self, coords: RankCoordinates) -> None:
        plan = self.plan
        if not (0 <= coords.tensor < plan.tensor
                and 0 <= coords.data < plan.data
                and 0 <= coords.pipeline < plan.pipeline):
            raise ConfigError(f"coordinates {coords} outside plan {plan.way}")

    # ------------------------------------------------------------------
    # Communication groups
    # ------------------------------------------------------------------
    def tensor_group(self, d_idx: int, p_idx: int) -> list[int]:
        """Ranks of one tensor-parallel group (the yellow All-Reduce)."""
        return [self.rank_of(RankCoordinates(t, d_idx, p_idx))
                for t in range(self.plan.tensor)]

    def data_group(self, t_idx: int, p_idx: int) -> list[int]:
        """Ranks of one data-parallel group (the gray All-Reduce)."""
        return [self.rank_of(RankCoordinates(t_idx, d, p_idx))
                for d in range(self.plan.data)]

    def pipeline_group(self, t_idx: int, d_idx: int) -> list[int]:
        """Ranks of one pipeline (the orange Send-Receive chain)."""
        return [self.rank_of(RankCoordinates(t_idx, d_idx, p))
                for p in range(self.plan.pipeline)]

    def group_link(self, ranks: list[int]) -> LinkType:
        """Link type a group communicates over (intra iff one node)."""
        nodes = {self.node_of(r) for r in ranks}
        return (LinkType.INTRA_NODE if len(nodes) <= 1
                else LinkType.INTER_NODE)

    def tensor_link(self) -> LinkType:
        """Link type of tensor-parallel All-Reduces."""
        if self.plan.tensor == 1:
            return LinkType.INTRA_NODE
        return self.group_link(self.tensor_group(0, 0))

    def data_link(self) -> LinkType:
        """Link type of data-parallel gradient All-Reduces."""
        if self.plan.data == 1:
            return LinkType.INTRA_NODE
        return self.group_link(self.data_group(0, 0))

    def pipeline_hop_link(self, p_idx: int) -> LinkType:
        """Link type of the Send-Receive between stage p_idx and p_idx+1."""
        if p_idx < 0 or p_idx >= self.plan.pipeline - 1:
            raise ConfigError(f"no pipeline hop after stage {p_idx}")
        here = self.rank_of(RankCoordinates(0, 0, p_idx))
        there = self.rank_of(RankCoordinates(0, 0, p_idx + 1))
        return (LinkType.INTRA_NODE if self.node_of(here) == self.node_of(there)
                else LinkType.INTER_NODE)

    def pipeline_wrap_link(self) -> LinkType:
        """Link type of the interleaved schedule's wrap-around hop.

        Under virtual pipelining the last stage's chunk ``c`` output
        feeds the first stage's chunk ``c + 1``, so activations (and
        gradients, in reverse) travel from stage ``p-1`` back to stage
        0 — the extra P2P traffic interleaving pays for its smaller
        bubble.
        """
        if self.plan.pipeline <= 1:
            raise ConfigError("no wrap-around hop in a 1-stage pipeline")
        first = self.rank_of(RankCoordinates(0, 0, 0))
        last = self.rank_of(RankCoordinates(0, 0, self.plan.pipeline - 1))
        return (LinkType.INTRA_NODE if self.node_of(first) == self.node_of(last)
                else LinkType.INTER_NODE)

    # ------------------------------------------------------------------
    # Contention diagnostics (used by the testbed emulator)
    # ------------------------------------------------------------------
    def concurrent_data_groups_per_node(self) -> int:
        """How many inter-node DP All-Reduces share one node's NICs.

        Every GPU of a node belongs to a distinct (t_idx, p_idx) DP group;
        when DP groups are inter-node, all of a node's GPUs drive the same
        HCAs simultaneously during gradient synchronisation — the dynamic
        effect the paper names as vTrain's main multi-node error source.
        """
        if self.data_link() is LinkType.INTRA_NODE:
            return 1
        return min(self.system.gpus_per_node, self.plan.tensor * self.plan.pipeline)

    def num_nodes_used(self) -> int:
        """Number of distinct server nodes touched by the plan."""
        per_node = self.system.gpus_per_node
        return (self.plan.total_gpus + per_node - 1) // per_node
