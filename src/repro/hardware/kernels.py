"""Deterministic analytical GPU kernel-timing model.

This module is the substitution for the paper's CUPTI profiling of real
CUDA kernels on an A100 (DESIGN.md, "Substitutions"). It models each kernel
class the way the hardware behaves:

* **GEMM kernels** use a roofline with tile and wave quantization: the GEMM
  is decomposed into output tiles, tiles are scheduled in waves across the
  SMs, and efficiency degrades for shapes that leave SMs idle in the last
  wave, for partial edge tiles, and for short accumulation (small-k) GEMMs.
  The sustained-efficiency ceiling is calibrated so large Megatron-shaped
  FP16 GEMMs achieve ~60 % of peak, which puts end-to-end MT-NLG GPU
  utilization in the paper's observed 40–45 % band (Table I).
* **Element-wise kernels** (bias add, GeLU, dropout, residual) are
  memory-bandwidth bound.
* **Reduction kernels** (LayerNorm, softmax, cross-entropy) are
  memory-bound multi-pass sweeps.
* **Optimizer kernels** (fused Adam) stream parameter state.

Every duration is a pure function of the kernel shape and the
:class:`~repro.hardware.gpu.GPUSpec` — deterministic and reproducible, the
property the paper exploits ("the execution time of each individual LLM
graph node over a target GPU architecture is highly deterministic").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.gpu import GPUSpec

FP16_BYTES = 2
FP32_BYTES = 4


class KernelKind(enum.Enum):
    """Coarse kernel taxonomy used for breakdown reporting."""

    GEMM = "gemm"
    BATCHED_GEMM = "batched_gemm"
    ELEMENTWISE = "elementwise"
    REDUCTION = "reduction"
    EMBEDDING = "embedding"
    OPTIMIZER = "optimizer"


@dataclass(frozen=True)
class Kernel:
    """A single timed CUDA kernel, as CUPTI would report it.

    Attributes:
        name: CUDA-kernel-style name (e.g.
            ``ampere_fp16_s16816gemm_fp16_128x128_ldg8_f2f_tn``).
        kind: Coarse taxonomy bucket.
        duration: Device execution time in seconds.
        flops: Floating-point operations performed.
        bytes_accessed: DRAM traffic in bytes.
    """

    name: str
    kind: KernelKind
    duration: float
    flops: float
    bytes_accessed: float

    def scaled(self, factor: float) -> "Kernel":
        """Copy with duration multiplied by ``factor`` (testbed jitter)."""
        return Kernel(self.name, self.kind, self.duration * factor,
                      self.flops, self.bytes_accessed)


#: Candidate cuBLAS-style thread-block output tiles (M-tile, N-tile). The
#: device model evaluates each candidate and keeps the fastest, mirroring
#: the cuBLAS heuristic selector.
GEMM_TILE_CANDIDATES = ((256, 128), (128, 128), (128, 64), (64, 64), (64, 32))


class DeviceModel:
    """Times kernels on one GPU, standing in for CUPTI measurements.

    Args:
        spec: The GPU to model.
        max_gemm_efficiency: Sustained tensor-core fraction of peak for an
            ideally-shaped GEMM. Calibrated (0.62) against public A100
            cuBLAS HGEMM measurements for transformer-sized operands.
        sustained_memory_fraction: Achievable fraction of peak HBM
            bandwidth for streaming kernels.
        device_overhead: Fixed per-kernel device-side ramp time (seconds);
            distinct from host launch overhead, which only the testbed
            emulator adds (Section IV error discussion).
        gemm_k_ramp: Accumulation-depth constant: a GEMM with reduction
            dimension k reaches ``k / (k + gemm_k_ramp)`` of the ceiling,
            modelling main-loop prologue/epilogue overhead for shallow k.
    """

    def __init__(self, spec: GPUSpec, *,
                 max_gemm_efficiency: float = 0.62,
                 sustained_memory_fraction: float = 0.82,
                 device_overhead: float = 1.5e-6,
                 gemm_k_ramp: float = 192.0) -> None:
        if not 0.0 < max_gemm_efficiency <= 1.0:
            raise ConfigError("max_gemm_efficiency must be in (0, 1]")
        if not 0.0 < sustained_memory_fraction <= 1.0:
            raise ConfigError("sustained_memory_fraction must be in (0, 1]")
        self.spec = spec
        self.max_gemm_efficiency = max_gemm_efficiency
        self.sustained_memory_fraction = sustained_memory_fraction
        self.device_overhead = device_overhead
        self.gemm_k_ramp = gemm_k_ramp

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------
    @property
    def effective_bandwidth(self) -> float:
        """Sustained HBM bandwidth (bytes/s)."""
        return self.spec.memory_bandwidth * self.sustained_memory_fraction

    @property
    def per_sm_flops(self) -> float:
        """Peak FP16 FLOP/s of one SM."""
        return self.spec.peak_fp16_flops / self.spec.num_sms

    # ------------------------------------------------------------------
    # GEMM
    # ------------------------------------------------------------------
    def gemm(self, m: int, n: int, k: int, *, batch: int = 1,
             layout: str = "tn", name_hint: str = "") -> Kernel:
        """Time a (possibly batched) FP16 GEMM of shape ``m x n x k``.

        The returned duration is ``max(compute, memory) + overhead`` where
        compute accounts for tile/wave quantization over the SM array.
        """
        if min(m, n, k, batch) <= 0:
            raise ConfigError(f"GEMM dims must be positive: {(m, n, k, batch)}")
        flops = 2.0 * m * n * k * batch
        bytes_accessed = FP16_BYTES * batch * (m * k + k * n + 2 * m * n)
        memory_time = bytes_accessed / self.effective_bandwidth

        k_efficiency = k / (k + self.gemm_k_ramp)
        best_time = math.inf
        best_tile = GEMM_TILE_CANDIDATES[0]
        for tile_m, tile_n in GEMM_TILE_CANDIDATES:
            tiles = math.ceil(m / tile_m) * math.ceil(n / tile_n) * batch
            waves = math.ceil(tiles / self.spec.num_sms)
            tile_flops = 2.0 * tile_m * tile_n * k
            tile_time = tile_flops / (self.per_sm_flops
                                      * self.max_gemm_efficiency
                                      * k_efficiency)
            compute_time = waves * tile_time
            if compute_time < best_time:
                best_time = compute_time
                best_tile = (tile_m, tile_n)

        duration = max(best_time, memory_time) + self.device_overhead
        kind = KernelKind.BATCHED_GEMM if batch > 1 else KernelKind.GEMM
        name = self._gemm_name(best_tile, layout, batch, name_hint)
        return Kernel(name, kind, duration, flops, bytes_accessed)

    def _gemm_name(self, tile: tuple[int, int], layout: str, batch: int,
                   hint: str) -> str:
        """Generate a cuBLAS-flavoured kernel name for traces."""
        prefix = "ampere_fp16_s16816gemm_fp16"
        stem = f"{prefix}_{tile[0]}x{tile[1]}_ldg8_f2f_stages_64x3_{layout}"
        if batch > 1:
            stem += "_batched"
        if hint:
            stem += f"__{hint}"
        return stem

    # ------------------------------------------------------------------
    # Memory-bound kernels
    # ------------------------------------------------------------------
    def elementwise(self, num_elements: float, *, name: str,
                    reads: int = 1, writes: int = 1,
                    element_bytes: int = FP16_BYTES) -> Kernel:
        """Time a streaming element-wise kernel (bias, GeLU, dropout...)."""
        if num_elements <= 0:
            raise ConfigError("num_elements must be positive")
        bytes_accessed = num_elements * element_bytes * (reads + writes)
        duration = bytes_accessed / self.effective_bandwidth + self.device_overhead
        return Kernel(name, KernelKind.ELEMENTWISE, duration,
                      flops=float(num_elements), bytes_accessed=bytes_accessed)

    def reduction(self, rows: float, cols: float, *, name: str,
                  passes: float = 2.0,
                  element_bytes: int = FP16_BYTES) -> Kernel:
        """Time a row-wise reduction kernel (LayerNorm, softmax, loss).

        ``passes`` is the number of times each element crosses DRAM; a
        two-pass LayerNorm is ~2.5 (stats + normalize + write), a softmax
        ~3 (max, exp-sum, scale).
        """
        if rows <= 0 or cols <= 0:
            raise ConfigError("rows/cols must be positive")
        bytes_accessed = rows * cols * element_bytes * passes
        duration = bytes_accessed / self.effective_bandwidth + self.device_overhead
        return Kernel(name, KernelKind.REDUCTION, duration,
                      flops=rows * cols * passes, bytes_accessed=bytes_accessed)

    def embedding_lookup(self, tokens: int, hidden: int, *,
                         name: str = "embedding_lookup_kernel") -> Kernel:
        """Time an embedding gather (read row + write output per token)."""
        bytes_accessed = 2.0 * tokens * hidden * FP16_BYTES
        duration = bytes_accessed / self.effective_bandwidth + self.device_overhead
        return Kernel(name, KernelKind.EMBEDDING, duration,
                      flops=float(tokens * hidden),
                      bytes_accessed=bytes_accessed)

    def optimizer_update(self, num_params: float, *,
                         name: str = "multi_tensor_adam_kernel") -> Kernel:
        """Time a fused mixed-precision Adam step over ``num_params``.

        Traffic per parameter: read fp16 grad (2B) + fp32 master weight,
        momentum, variance (12B); write fp32 master, momentum, variance
        (12B) + fp16 weight (2B) = 28 bytes.
        """
        if num_params <= 0:
            raise ConfigError("num_params must be positive")
        bytes_accessed = 28.0 * num_params
        duration = bytes_accessed / self.effective_bandwidth + self.device_overhead
        return Kernel(name, KernelKind.OPTIMIZER, duration,
                      flops=10.0 * num_params, bytes_accessed=bytes_accessed)
