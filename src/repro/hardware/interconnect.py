"""Interconnect link models: NVLink/NVSwitch and InfiniBand.

The simulator distinguishes intra-node communication (NVLink/NVSwitch,
profile-table driven — Section III-D) from inter-node communication (the
Equation-1 latency–bandwidth model). This module provides the link-level
primitives both models are built from.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # imported lazily to avoid a config <-> hardware cycle
    from repro.config.system import SystemConfig


class LinkType(enum.Enum):
    """Where a communication group lives."""

    INTRA_NODE = "nvlink"
    INTER_NODE = "infiniband"


@dataclass(frozen=True)
class RingParameters:
    """Ring-collective parameters for one group on one link type.

    Attributes:
        bus_bandwidth: Per-rank bus bandwidth in bytes/s (the NCCL "busbw"
            convention: an All-Reduce of S bytes over n ranks moves
            ``2(n-1)/n * S`` bytes through each rank).
        base_latency: Fixed per-collective startup latency (seconds).
        hop_latency: Additional latency per ring hop (seconds).
    """

    bus_bandwidth: float
    base_latency: float
    hop_latency: float

    def allreduce_time(self, size_bytes: float, group_size: int) -> float:
        """Ring All-Reduce latency for ``size_bytes`` over the group.

        This is the paper's Equation 1, ``t = S/B * 2(n-1)/n``, plus the
        startup/hop latency terms that dominate at small sizes.
        """
        if group_size < 1:
            raise ConfigError("group_size must be >= 1")
        if group_size == 1 or size_bytes <= 0:
            return 0.0
        transfer = (size_bytes / self.bus_bandwidth
                    * 2.0 * (group_size - 1) / group_size)
        latency = self.base_latency + self.hop_latency * 2 * (group_size - 1)
        return transfer + latency

    def allgather_time(self, size_bytes: float, group_size: int) -> float:
        """Ring All-Gather: each rank receives (n-1)/n of the payload."""
        if group_size <= 1 or size_bytes <= 0:
            return 0.0
        transfer = (size_bytes / self.bus_bandwidth
                    * (group_size - 1) / group_size)
        latency = self.base_latency + self.hop_latency * (group_size - 1)
        return transfer + latency

    def reduce_scatter_time(self, size_bytes: float, group_size: int) -> float:
        """Ring Reduce-Scatter (same wire traffic as All-Gather)."""
        return self.allgather_time(size_bytes, group_size)


#: Lower bound on NVLink ring efficiency. The linear protocol-overhead
#: term is fit to 8–16 GPU NVSwitch domains; without a floor it would
#: degrade without bound (and go negative past 200 GPUs) on large
#: NVL-domain systems.
NVLINK_EFFICIENCY_FLOOR = 0.5


def nvlink_ring(system: "SystemConfig", group_size: int) -> RingParameters:
    """NVLink/NVSwitch ring parameters for an intra-node group.

    The bus bandwidth saturates toward ~80 % of the per-GPU NVLink rate as
    the ring grows (protocol overhead grows with ring length); a 2-GPU
    "ring" is direct P2P and slightly more efficient. The resulting 8-GPU
    All-Reduce busbw (~230 GB/s on A100/NVSwitch) matches published
    nccl-tests numbers, which is what the paper profiles. Efficiency is
    clamped at :data:`NVLINK_EFFICIENCY_FLOOR` for very large domains.
    """
    if group_size < 1:
        raise ConfigError("group_size must be >= 1")
    efficiency = (0.88 if group_size <= 2
                  else max(NVLINK_EFFICIENCY_FLOOR,
                           0.80 - 0.004 * (group_size - 2)))
    return RingParameters(
        bus_bandwidth=system.gpu.nvlink_bandwidth * efficiency,
        base_latency=system.intranode_latency,
        hop_latency=1.0e-6,
    )


def infiniband_ring(system: "SystemConfig") -> RingParameters:
    """Inter-node ring parameters from the Equation-1 model.

    ``B = alpha * Bmax`` where Bmax is the node's aggregate NIC bandwidth
    (800 Gbps for the paper's four HDR HCAs) and alpha is the
    bandwidth-effectiveness factor swept in Section IV.
    """
    return RingParameters(
        bus_bandwidth=system.effective_internode_bandwidth,
        base_latency=system.internode_latency,
        hop_latency=2.0e-6,
    )


def p2p_time(system: "SystemConfig", size_bytes: float,
             link: LinkType) -> float:
    """Point-to-point Send-Receive latency (pipeline-stage boundaries).

    The paper notes P2P exchanges are "less sensitive to the interconnect
    bandwidth"; an inter-node P2P rides a single HCA
    (``internode_bandwidth / nics_per_node``), an intra-node P2P rides
    NVLink.
    """
    if size_bytes < 0:
        raise ConfigError("size_bytes must be non-negative")
    if size_bytes == 0:
        return 0.0
    if link is LinkType.INTRA_NODE:
        bandwidth = system.gpu.nvlink_bandwidth * 0.88
        latency = system.intranode_latency
    else:
        bandwidth = system.nic_bandwidth
        latency = system.internode_latency
    return size_bytes / bandwidth + latency


def ring_hops(group_size: int) -> int:
    """Number of ring steps in one All-Reduce phase (for diagnostics)."""
    return max(0, 2 * (group_size - 1))


def log2_ceil(value: int) -> int:
    """Smallest integer ``e`` with ``2**e >= value`` (tree-latency helper)."""
    if value <= 0:
        raise ConfigError("value must be positive")
    return max(0, math.ceil(math.log2(value)))
