"""GPU device specifications.

The paper targets NVIDIA A100 GPUs (AWS p4d instances for single-node
validation, DGX A100 nodes for the 512-GPU cluster). Because this
reproduction has no physical GPU, the specification below feeds a
deterministic analytical device model (:mod:`repro.hardware.kernels`) that
stands in for CUPTI profiling — see DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

GIGA = 1e9
TERA = 1e12
GIB = float(1 << 30)


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU device.

    Attributes:
        name: Marketing name, e.g. ``"A100-SXM4-80GB"``.
        peak_fp16_flops: Dense FP16/BF16 tensor-core throughput (FLOP/s).
        memory_bytes: HBM capacity in bytes.
        memory_bandwidth: HBM bandwidth (bytes/s).
        num_sms: Number of streaming multiprocessors (used by the GEMM
            wave-quantization model).
        kernel_launch_overhead: Fixed host-side latency per kernel launch
            (seconds). The paper notes NCCL kernel-launch overheads as an
            unmodelled error source; the testbed emulator applies this,
            while vTrain's predictor ignores it — reproducing that gap.
        nvlink_bandwidth: Per-GPU aggregate NVLink bandwidth (bytes/s,
            unidirectional) through NVSwitch.
    """

    name: str
    peak_fp16_flops: float
    memory_bytes: float
    memory_bandwidth: float
    num_sms: int
    kernel_launch_overhead: float
    nvlink_bandwidth: float

    def __post_init__(self) -> None:
        numeric_fields = ("peak_fp16_flops", "memory_bytes", "memory_bandwidth",
                          "kernel_launch_overhead", "nvlink_bandwidth")
        for field in numeric_fields:
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be non-negative")
        if self.num_sms <= 0:
            raise ConfigError("num_sms must be positive")

    @property
    def peak_tflops(self) -> float:
        """Peak FP16 throughput in TFLOP/s (for reporting)."""
        return self.peak_fp16_flops / TERA

    @property
    def memory_gib(self) -> float:
        """HBM capacity in GiB (for reporting)."""
        return self.memory_bytes / GIB


#: NVIDIA A100 SXM4 80 GB — the DGX A100 part used by the paper's multi-node
#: validation cluster and by MT-NLG's training system (Selene).
A100_80GB = GPUSpec(
    name="A100-SXM4-80GB",
    peak_fp16_flops=312 * TERA,
    memory_bytes=80 * GIB,
    memory_bandwidth=2039 * GIGA,
    num_sms=108,
    kernel_launch_overhead=4e-6,
    nvlink_bandwidth=300 * GIGA,
)

#: NVIDIA A100 SXM4 40 GB — the AWS p4d.24xlarge part used for the paper's
#: single-node validation and for pricing (Table I uses p4d cost as proxy).
A100_40GB = GPUSpec(
    name="A100-SXM4-40GB",
    peak_fp16_flops=312 * TERA,
    memory_bytes=40 * GIB,
    memory_bandwidth=1555 * GIGA,
    num_sms=108,
    kernel_launch_overhead=4e-6,
    nvlink_bandwidth=300 * GIGA,
)

#: NVIDIA V100 SXM2 32 GB — provided for cross-generation studies; the
#: profiling pipeline is device-agnostic, which is one of vTrain's selling
#: points versus purely analytical models (Table V discussion).
V100_32GB = GPUSpec(
    name="V100-SXM2-32GB",
    peak_fp16_flops=125 * TERA,
    memory_bytes=32 * GIB,
    memory_bandwidth=900 * GIGA,
    num_sms=80,
    kernel_launch_overhead=5e-6,
    nvlink_bandwidth=150 * GIGA,
)

#: NVIDIA H100 SXM5 80 GB — "future hardware" option for extension studies.
H100_80GB = GPUSpec(
    name="H100-SXM5-80GB",
    peak_fp16_flops=989 * TERA,
    memory_bytes=80 * GIB,
    memory_bandwidth=3350 * GIGA,
    num_sms=132,
    kernel_launch_overhead=4e-6,
    nvlink_bandwidth=450 * GIGA,
)

KNOWN_GPUS = {
    spec.name: spec for spec in (A100_80GB, A100_40GB, V100_32GB, H100_80GB)
}


def gpu_by_name(name: str) -> GPUSpec:
    """Look up a GPU spec by its marketing name.

    Raises:
        ConfigError: If the name is unknown.
    """
    try:
        return KNOWN_GPUS[name]
    except KeyError:
        known = ", ".join(sorted(KNOWN_GPUS))
        raise ConfigError(f"unknown GPU {name!r}; known: {known}") from None
