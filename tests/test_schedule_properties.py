"""Schedule-validity properties for GPipe, 1F1B, and interleaved 1F1B.

Every schedule must be a valid permutation of its work: each
(chunk, micro-batch) unit has exactly one forward and one backward per
stage, each forward is issued before its backward, warm-up counts match
the closed forms, and the final backward is the unit gradient
synchronisation attaches to. Golden cases pin the interleaved issue
order to Megatron-LM's ``forward_backward_pipelining_with_interleaving``
schedule.
"""

import pytest
from hypothesis import given, strategies as st

from repro.config.parallelism import PipelineSchedule
from repro.graph.pipeline import (BACKWARD, FORWARD,
                                  interleaved_order,
                                  last_backward_micro_batch,
                                  max_in_flight_micro_batches,
                                  pipeline_bubble_fraction, schedule_order,
                                  warmup_forwards)

SCHEDULES = (PipelineSchedule.GPIPE, PipelineSchedule.ONE_F_ONE_B)


def units(order, phase):
    return [(c.chunk, c.micro_batch) for c in order if c.phase == phase]


def check_valid_permutation(order, num_micro_batches, virtual_stages):
    """Each unit forward-then-backward, every unit exactly once."""
    expected = {(chunk, mb) for chunk in range(virtual_stages)
                for mb in range(num_micro_batches)}
    forwards = units(order, FORWARD)
    backwards = units(order, BACKWARD)
    assert set(forwards) == expected and len(forwards) == len(expected)
    assert set(backwards) == expected and len(backwards) == len(expected)
    position = {}
    for index, chunk in enumerate(order):
        position[(chunk.phase, chunk.chunk, chunk.micro_batch)] = index
    for key in expected:
        assert position[(FORWARD, *key)] < position[(BACKWARD, *key)]


@st.composite
def schedule_cases(draw):
    schedule = draw(st.sampled_from(SCHEDULES))
    p = draw(st.integers(1, 8))
    if schedule is PipelineSchedule.ONE_F_ONE_B and p > 1:
        v = draw(st.integers(1, 4))
    else:
        v = 1
    if v > 1:
        nmb = p * draw(st.integers(1, 5))  # interleaving needs p | NMB
    else:
        nmb = draw(st.integers(1, 24))
    stage = draw(st.integers(0, p - 1))
    return schedule, stage, p, nmb, v


class TestPermutationProperty:
    @given(case=schedule_cases())
    def test_every_schedule_is_a_valid_permutation(self, case):
        schedule, stage, p, nmb, v = case
        order = schedule_order(schedule, stage, p, nmb, virtual_stages=v)
        assert len(order) == 2 * nmb * v
        check_valid_permutation(order, nmb, v)

    @given(case=schedule_cases())
    def test_warmup_matches_closed_form(self, case):
        """Leading forwards equal the closed form, which also bounds the
        in-flight window count the memory model uses."""
        schedule, stage, p, nmb, v = case
        order = schedule_order(schedule, stage, p, nmb, virtual_stages=v)
        leading = 0
        for chunk in order:
            if chunk.phase != FORWARD:
                break
            leading += 1
        assert leading == warmup_forwards(schedule, stage, p, nmb,
                                          virtual_stages=v)
        assert leading == max_in_flight_micro_batches(schedule, stage, p,
                                                      nmb, virtual_stages=v)

    @given(case=schedule_cases())
    def test_final_backward_is_the_sync_unit(self, case):
        """The last backward in issue order is chunk 0 of the micro-batch
        gradient synchronisation anchors to, on every stage."""
        schedule, stage, p, nmb, v = case
        order = schedule_order(schedule, stage, p, nmb, virtual_stages=v)
        final = order[-1]
        assert final.phase == BACKWARD
        assert final.chunk == 0
        assert final.micro_batch == last_backward_micro_batch(schedule, nmb)

    @given(case=schedule_cases())
    def test_backward_walks_chunks_descending_per_micro_batch(self, case):
        schedule, stage, p, nmb, v = case
        order = schedule_order(schedule, stage, p, nmb, virtual_stages=v)
        chunks_seen: dict[int, list[int]] = {}
        for chunk in order:
            if chunk.phase == BACKWARD:
                chunks_seen.setdefault(chunk.micro_batch, []).append(
                    chunk.chunk)
        for walked in chunks_seen.values():
            assert walked == sorted(walked, reverse=True)

    @given(p=st.integers(2, 8), group=st.integers(1, 4),
           v=st.integers(1, 4))
    def test_bubble_fraction_monotone_in_v(self, p, group, v):
        nmb = p * group
        fractions = [pipeline_bubble_fraction(p, nmb, candidate)
                     for candidate in range(1, v + 1)]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] == pytest.approx(
            (p - 1) / (v * nmb + p - 1))


def phases(order):
    return [(c.phase, c.chunk, c.micro_batch) for c in order]


class TestMegatronGolden:
    """Hand-derived Megatron-LM interleaved issue orders.

    Derived from ``forward_backward_pipelining_with_interleaving``:
    warm-up admits ``2*(p - rank - 1) + (v-1)*p`` units, forward unit
    ``k`` maps to chunk ``(k % (p*v)) // p`` of micro-batch
    ``(k // (p*v)) * p + k % p``, backward units reverse the chunk walk.
    """

    def test_p2_v2_nmb4_rank0(self):
        order = interleaved_order(stage=0, num_stages=2,
                                  num_micro_batches=4, virtual_stages=2)
        assert phases(order) == [
            ("F", 0, 0), ("F", 0, 1), ("F", 1, 0), ("F", 1, 1),  # warm-up
            ("F", 0, 2), ("B", 1, 0), ("F", 0, 3), ("B", 1, 1),  # steady
            ("F", 1, 2), ("B", 0, 0), ("F", 1, 3), ("B", 0, 1),
            ("B", 1, 2), ("B", 1, 3), ("B", 0, 2), ("B", 0, 3),  # drain
        ]

    def test_p2_v2_nmb4_rank1(self):
        order = interleaved_order(stage=1, num_stages=2,
                                  num_micro_batches=4, virtual_stages=2)
        assert phases(order) == [
            ("F", 0, 0), ("F", 0, 1),                            # warm-up
            ("F", 1, 0), ("B", 1, 0), ("F", 1, 1), ("B", 1, 1),  # steady
            ("F", 0, 2), ("B", 0, 0), ("F", 0, 3), ("B", 0, 1),
            ("F", 1, 2), ("B", 1, 2), ("F", 1, 3), ("B", 1, 3),
            ("B", 0, 2), ("B", 0, 3),                            # drain
        ]

    def test_p4_v2_warmup_counts(self):
        """Megatron's Figure-4-style configuration: p=4, v=2, NMB=8."""
        expected = {0: 10, 1: 8, 2: 6, 3: 4}  # 2*(p-r-1) + (v-1)*p
        for rank, warmup in expected.items():
            order = interleaved_order(stage=rank, num_stages=4,
                                      num_micro_batches=8, virtual_stages=2)
            leading = 0
            for chunk in order:
                if chunk.phase != FORWARD:
                    break
                leading += 1
            assert leading == warmup + 1  # first steady forward leads too

    def test_p4_v2_rank0_leading_units(self):
        """The warm-up walks chunk 0 of micro-batches 0..3, then chunk 1
        of the same group, then chunk 0 of the next group — Megatron's
        group-of-p round-robin."""
        order = interleaved_order(stage=0, num_stages=4,
                                  num_micro_batches=8, virtual_stages=2)
        assert phases(order)[:10] == [
            ("F", 0, 0), ("F", 0, 1), ("F", 0, 2), ("F", 0, 3),
            ("F", 1, 0), ("F", 1, 1), ("F", 1, 2), ("F", 1, 3),
            ("F", 0, 4), ("F", 0, 5),
        ]
        # First backward on rank 0 is the *last* chunk (loss flows back
        # from chunk v-1), micro-batch 0.
        first_backward = next(c for c in order if c.phase == BACKWARD)
        assert (first_backward.chunk, first_backward.micro_batch) == (1, 0)

    def test_all_warmup_when_nmb_equals_p(self):
        """Megatron special-cases NMB == p: all forwards, then all
        backwards (no steady state)."""
        order = interleaved_order(stage=1, num_stages=4,
                                  num_micro_batches=4, virtual_stages=2)
        assert [c.phase for c in order] == ["F"] * 8 + ["B"] * 8

    def test_rejects_indivisible_micro_batches(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="multiple"):
            interleaved_order(stage=0, num_stages=4, num_micro_batches=6,
                              virtual_stages=2)

    def test_gpipe_rejects_interleaving(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="interleaved"):
            schedule_order(PipelineSchedule.GPIPE, 0, 4, 8,
                           virtual_stages=2)
