"""Unit tests for the Chinchilla parametric loss model."""

import pytest

from repro.errors import ConfigError
from repro.scaling.chinchilla import TOKENS_PER_PARAMETER
from repro.scaling.loss import (IRREDUCIBLE, LossEstimate, estimate,
                                expected_loss, optimal_split,
                                undertraining_penalty)


class TestExpectedLoss:
    def test_loss_above_irreducible(self):
        assert expected_loss(70e9, 1.4e12) > IRREDUCIBLE

    def test_chinchilla_70b_value(self):
        """Chinchilla (70B, 1.4T tokens) sits near ~1.93 under the
        published parametric fit."""
        loss = expected_loss(70e9, 1.4e12)
        assert 1.85 < loss < 2.0

    def test_more_params_lower_loss(self):
        assert expected_loss(140e9, 1e12) < expected_loss(70e9, 1e12)

    def test_more_tokens_lower_loss(self):
        assert expected_loss(70e9, 2e12) < expected_loss(70e9, 1e12)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            expected_loss(0, 1e12)
        with pytest.raises(ConfigError):
            expected_loss(1e9, 0)


class TestOptimalSplit:
    def test_split_consumes_budget(self):
        budget = 5.76e23  # Chinchilla's training compute
        n, d = optimal_split(budget)
        assert 6.0 * n * d == pytest.approx(budget, rel=1e-6)

    def test_split_near_chinchilla_point(self):
        """For Chinchilla's budget, the fit's optimum lies in the tens
        of billions of parameters. (The published Approach-3 fit is
        known to lean more data-heavy than the 20-tokens-per-parameter
        rule of thumb, so D/N lands in the tens-to-low-hundreds.)"""
        n, d = optimal_split(5.76e23)
        assert 1e10 < n < 2e11
        assert 10 < d / n < 150

    def test_optimum_beats_neighbours(self):
        budget = 1e24
        n, d = optimal_split(budget)
        best = expected_loss(n, d)
        for factor in (0.5, 0.8, 1.25, 2.0):
            other_n = n * factor
            other_d = budget / (6.0 * other_n)
            assert expected_loss(other_n, other_d) >= best - 1e-9

    def test_scaling_with_budget(self):
        n_small, _ = optimal_split(1e22)
        n_large, _ = optimal_split(1e24)
        assert n_large > n_small

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigError):
            optimal_split(0.0)


class TestEstimates:
    def test_estimate_bundles_inputs(self):
        item = estimate(70e9, 1.4e12)
        assert isinstance(item, LossEstimate)
        assert item.tokens_per_parameter == pytest.approx(20.0)

    def test_table_iv_rows_follow_loss_ordering(self):
        """Among candidates trained to their 20x point, larger models
        achieve lower expected loss — the reason Table IV picks the
        largest model that fits the budget."""
        losses = []
        for params in (71.8e9, 76.0e9, 88.6e9, 145.6e9):
            losses.append(expected_loss(params,
                                        TOKENS_PER_PARAMETER * params))
        assert losses == sorted(losses, reverse=True)

    def test_undertraining_penalty_positive(self):
        """MT-NLG: 530B parameters on only 270B tokens is severely
        under-trained (the Section II-A motivation)."""
        penalty = undertraining_penalty(530e9, 270e9)
        assert penalty > 0.05

    def test_fully_trained_penalty_zero(self):
        assert undertraining_penalty(1e9, 20e9) == pytest.approx(0.0)

    def test_overtrained_penalty_negative(self):
        assert undertraining_penalty(1e9, 100e9) < 0.0
