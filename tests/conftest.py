"""Shared fixtures for the test suite.

The fixtures centre on a small, fast model so unit tests run in
milliseconds; paper-scale integration checks live in
``test_integration.py`` and build their own configurations.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import multi_node, single_node
from repro.hardware.gpu import A100_80GB
from repro.hardware.kernels import DeviceModel
from repro.profiling.cupti import CuptiTracer
from repro.profiling.lookup import OperatorToTaskTable
from repro.profiling.nccl import NcclModel
from repro.sim.estimator import VTrain

# Hypothesis effort tiers: the capped "tier1" profile keeps the default
# `pytest -x -q` loop fast; CI's full lane (and anyone hunting for
# counterexamples) selects the exhaustive profile via
# REPRO_HYPOTHESIS_PROFILE=exhaustive. Property tests should rely on
# these profiles instead of pinning max_examples inline.
settings.register_profile("tier1", max_examples=25, deadline=None)
settings.register_profile("exhaustive", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "tier1"))


@pytest.fixture
def tiny_model() -> ModelConfig:
    """A 4-layer toy LLM that still exercises every code path."""
    return ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                       num_heads=8, vocab_size=32_000, name="tiny")


@pytest.fixture
def small_model() -> ModelConfig:
    """A larger toy model for pipeline-heavy plans."""
    return ModelConfig(hidden_size=1024, num_layers=8, seq_length=512,
                       num_heads=16, vocab_size=32_000, name="small")


@pytest.fixture
def training() -> TrainingConfig:
    """A 16-sequence global batch with a token budget."""
    return TrainingConfig(global_batch_size=16, total_tokens=10_000_000)


@pytest.fixture
def node_system():
    """One 8-GPU A100 node."""
    return single_node()


@pytest.fixture
def cluster_system():
    """A 4-node (32 GPU) A100 cluster."""
    return multi_node(4)


@pytest.fixture
def device() -> DeviceModel:
    """Analytical A100 device model."""
    return DeviceModel(A100_80GB)


@pytest.fixture
def lookup(device) -> OperatorToTaskTable:
    """A fresh operator-to-task lookup table."""
    return OperatorToTaskTable(CuptiTracer(device))


@pytest.fixture
def nccl(node_system) -> NcclModel:
    """Clean (isolated-profile) NCCL model on one node."""
    return NcclModel(node_system)


@pytest.fixture
def vtrain(node_system) -> VTrain:
    """A single-node vTrain simulator at operator granularity."""
    return VTrain(node_system)


def plan_2x2x2() -> ParallelismConfig:
    """A (2, 2, 2)-way plan used across graph tests."""
    return ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2)
