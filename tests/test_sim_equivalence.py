"""Compiled-engine equivalence: simulate() is bit-identical to the
reference Algorithm-1 loop.

The compiled engine (precompiled replay order + flat arrays,
:func:`repro.sim.engine.simulate_retimed`) must reproduce
:func:`repro.sim.engine.simulate_reference` *exactly* — same makespan
bits, same per-device timelines, same busy accounting (values and dict
insertion order), same recorded events in the same order — on arbitrary
DAGs, not just builder-shaped ones. These tests drive both engines over
randomized graphs (seeded generators plus hypothesis) and over real
builder output at every granularity.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.config.parallelism import ParallelismConfig, PipelineSchedule
from repro.config.system import single_node
from repro.errors import SimulationError
from repro.graph.builder import Granularity
from repro.graph.structure import (ALL_KINDS, COMM_STREAM, COMPUTE_STREAM,
                                   GraphAssembler, GraphStructure)
from repro.sim.engine import simulate, simulate_reference, simulate_retimed
from repro.sim.estimator import VTrain

STREAMS = (COMPUTE_STREAM, COMM_STREAM)


def random_graph(seed: int):
    """A random DAG via the assembler (chain edges + random back-deps)."""
    rng = random.Random(seed)
    num_devices = rng.randint(1, 4)
    num_tasks = rng.randint(1, 60)
    asm = GraphAssembler()
    for index in range(num_tasks):
        deps = ()
        if index and rng.random() < 0.6:
            deps = tuple(rng.sample(range(index),
                                    rng.randint(1, min(3, index))))
        duration = rng.choice([0.0, rng.random(), rng.random() * 10.0])
        asm.add(rng.randrange(num_devices), rng.choice(STREAMS), duration,
                rng.choice(ALL_KINDS), f"t{index}", deps=deps,
                chain=rng.random() < 0.7)
    return asm.finish(num_devices=num_devices)


def assert_bit_identical(graph):
    """Both engines, timeline recorded, every field compared exactly."""
    reference = simulate_reference(graph, record_timeline=True)
    compiled = simulate(graph, record_timeline=True)
    assert compiled.iteration_time == reference.iteration_time
    assert compiled.num_tasks == reference.num_tasks
    assert compiled.device_timeline == reference.device_timeline
    assert list(compiled.device_timeline) == list(reference.device_timeline)
    assert compiled.device_busy == reference.device_busy
    for device in reference.device_busy:
        assert list(compiled.device_busy[device]) == \
            list(reference.device_busy[device])
    assert compiled.events == reference.events
    assert [event.task_id for event in compiled.events] == \
        [event.task_id for event in reference.events]


class TestRandomizedDags:
    @pytest.mark.parametrize("seed", range(12))
    def test_seeded_random_graphs(self, seed):
        assert_bit_identical(random_graph(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(12, 60))
    def test_seeded_random_graphs_exhaustive(self, seed):
        """The long tail of seeds, run in the full (slow) lane only."""
        assert_bit_identical(random_graph(seed))

    @given(data=st.data())
    def test_hypothesis_random_graphs(self, data):
        num_devices = data.draw(st.integers(1, 3), label="num_devices")
        num_tasks = data.draw(st.integers(1, 25), label="num_tasks")
        asm = GraphAssembler()
        for index in range(num_tasks):
            deps = ()
            if index:
                deps = tuple(data.draw(
                    st.sets(st.integers(0, index - 1), max_size=3),
                    label=f"deps{index}"))
            asm.add(data.draw(st.integers(0, num_devices - 1),
                              label=f"dev{index}"),
                    data.draw(st.sampled_from(STREAMS),
                              label=f"stream{index}"),
                    data.draw(st.floats(0.0, 100.0, allow_nan=False),
                              label=f"dur{index}"),
                    data.draw(st.sampled_from(ALL_KINDS),
                              label=f"kind{index}"),
                    f"t{index}", deps=deps,
                    chain=data.draw(st.booleans(), label=f"chain{index}"))
        assert_bit_identical(asm.finish(num_devices=num_devices))


class TestBuilderGraphs:
    @pytest.mark.parametrize("granularity", list(Granularity))
    def test_all_granularities(self, granularity, tiny_model, training):
        vtrain = VTrain(single_node(), granularity=granularity)
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        assert_bit_identical(vtrain.build_graph(tiny_model, plan, training))

    @pytest.mark.parametrize("plan", [
        ParallelismConfig(tensor=1, data=1, pipeline=4, micro_batch_size=2),
        ParallelismConfig(tensor=4, data=2, pipeline=1),
        ParallelismConfig(tensor=1, data=8, pipeline=1, micro_batch_size=2,
                          gradient_bucketing=False),
        ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2,
                          schedule=PipelineSchedule.GPIPE),
    ])
    def test_plan_shapes(self, plan, tiny_model, training):
        vtrain = VTrain(single_node())
        assert_bit_identical(vtrain.build_graph(tiny_model, plan, training))


class TestRetime:
    def test_scaled_durations_match_scaled_graph(self, tiny_model, training):
        """Replaying a structure with 2x durations equals the reference
        engine on a graph whose node durations were doubled."""
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        graph = vtrain.build_graph(tiny_model, plan, training)
        structure = graph.compiled()
        retimed = simulate_retimed(structure, structure.duration * 2.0)
        for node in graph.nodes:
            node.duration *= 2.0
        reference = simulate_reference(graph)
        assert retimed.iteration_time == reference.iteration_time
        assert retimed.device_timeline == reference.device_timeline
        assert retimed.device_busy == reference.device_busy

    def test_fill_durations_matches_build(self, tiny_model, training):
        """The slot-broadcast refill reproduces build-time durations."""
        from repro.graph.builder import GraphBuilder
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        builder = GraphBuilder(tiny_model, vtrain.system, plan, training,
                               vtrain.lookup, vtrain.nccl,
                               vtrain.granularity)
        structure = builder.compile()
        refilled = builder.fill_durations(structure)
        assert refilled.tolist() == structure.duration.tolist()

    def test_retime_rejects_wrong_length(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, ALL_KINDS[0], "a")
        structure = asm.finish(num_devices=1).compiled()
        with pytest.raises(SimulationError, match="entries"):
            simulate_retimed(structure, [1.0, 2.0])

    def test_retime_rejects_negative_durations(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, ALL_KINDS[0], "a")
        structure = asm.finish(num_devices=1).compiled()
        with pytest.raises(SimulationError, match="non-negative"):
            simulate_retimed(structure, [-1.0])

    def test_retime_without_slots_raises(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, ALL_KINDS[0], "a")
        structure = asm.finish(num_devices=1).compiled()
        with pytest.raises(SimulationError, match="slot"):
            structure.retime({"op:any": 1.0})


class TestStructureDispatch:
    def test_simulate_accepts_structure(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.5, ALL_KINDS[0], "a")
        graph = asm.finish(num_devices=1)
        assert simulate(graph.compiled()).iteration_time == \
            simulate_reference(graph).iteration_time

    def test_compiled_is_memoized(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, ALL_KINDS[0], "a")
        graph = asm.finish(num_devices=1)
        assert graph.compiled() is graph.compiled()

    def test_simulate_sees_mutated_durations(self):
        """Durations are re-read per call: mutating a node between
        replays (sensitivity studies) works as in the reference engine,
        even though the topology is memoized."""
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, ALL_KINDS[0], "a")
        graph = asm.finish(num_devices=1)
        assert simulate(graph).iteration_time == 1.0
        graph.nodes[0].duration = 5.0
        assert simulate(graph).iteration_time == 5.0
        assert simulate(graph).iteration_time == \
            simulate_reference(graph).iteration_time

    def test_cycle_detected_through_compiled_path(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, ALL_KINDS[0], "a", chain=False)
        b = asm.add(0, COMPUTE_STREAM, 1.0, ALL_KINDS[0], "b", deps=(a,),
                    chain=False)
        asm.link(b, a)
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(asm.finish(num_devices=1))

    def test_empty_structure_rejected(self):
        structure = GraphStructure.compile(
            GraphAssembler().finish(num_devices=0))
        with pytest.raises(SimulationError, match="empty"):
            simulate_retimed(structure)
