"""Unit tests for DSE result export."""

import pytest

from repro.config.model import ModelConfig
from repro.config.parallelism import TrainingConfig
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.report import load_csv, save_csv, to_csv, to_markdown
from repro.dse.space import SearchSpace
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def result():
    model = ModelConfig(hidden_size=1024, num_layers=8, seq_length=512,
                        num_heads=16, name="report-model")
    training = TrainingConfig(global_batch_size=32)
    explorer = DesignSpaceExplorer(model, training)
    return explorer.explore(max_gpus=8, space=SearchSpace(
        max_tensor=8, max_data=8, max_pipeline=8,
        micro_batch_sizes=(1, 2)))


class TestCsv:
    def test_header_and_rows(self, result):
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0].startswith("tensor,data,pipeline")
        assert len(lines) == 1 + result.num_feasible

    def test_include_infeasible(self, result):
        text = to_csv(result, include_infeasible=True)
        assert len(text.strip().splitlines()) == 1 + len(result.points)

    def test_round_trip(self, result, tmp_path):
        path = tmp_path / "dse.csv"
        save_csv(result, path)
        rows = load_csv(path)
        assert len(rows) == result.num_feasible
        first = rows[0]
        assert int(first["num_gpus"]) == (int(first["tensor"])
                                          * int(first["data"])
                                          * int(first["pipeline"]))
        assert float(first["iteration_time_s"]) > 0


class TestMarkdown:
    def test_table_structure(self, result):
        text = to_markdown(result, top=5)
        lines = text.splitlines()
        assert lines[0].startswith("| (t, d, p) |")
        assert len(lines) == 2 + min(5, result.num_feasible)

    def test_sort_by_time_ascending(self, result):
        text = to_markdown(result, top=3, sort_by="time")
        times = [float(line.split("|")[4]) for line in
                 text.splitlines()[2:]]
        assert times == sorted(times)

    def test_unknown_sort_rejected(self, result):
        with pytest.raises(ConfigError):
            to_markdown(result, sort_by="vibes")
