"""Unit tests for GPipe/1F1B schedule generation (Figure 7)."""

import pytest

from repro.config.parallelism import PipelineSchedule
from repro.errors import ConfigError
from repro.graph.pipeline import (BACKWARD, FORWARD, gpipe_order,
                                  last_backward_micro_batch,
                                  max_in_flight_micro_batches,
                                  one_f_one_b_order,
                                  pipeline_bubble_fraction, schedule_order)


def phases(order):
    return [(chunk.phase, chunk.micro_batch) for chunk in order]


class TestGPipe:
    def test_all_forwards_then_all_backwards(self):
        order = gpipe_order(4)
        assert phases(order) == [("F", 0), ("F", 1), ("F", 2), ("F", 3),
                                 ("B", 3), ("B", 2), ("B", 1), ("B", 0)]

    def test_every_micro_batch_once_per_phase(self):
        order = gpipe_order(7)
        fwd = [c.micro_batch for c in order if c.phase == FORWARD]
        bwd = [c.micro_batch for c in order if c.phase == BACKWARD]
        assert sorted(fwd) == list(range(7))
        assert sorted(bwd) == list(range(7))

    def test_rejects_zero_micro_batches(self):
        with pytest.raises(ConfigError):
            gpipe_order(0)


class TestOneFOneB:
    def test_figure_7b_stage0(self):
        """Stage 0 of a 2-deep pipeline with 4 micro-batches:
        F1, F2 B1, F3 B2, F4 B3, B4 (Figure 7b, 1-indexed)."""
        order = one_f_one_b_order(stage=0, num_stages=2, num_micro_batches=4)
        assert phases(order) == [("F", 0), ("F", 1), ("B", 0), ("F", 2),
                                 ("B", 1), ("F", 3), ("B", 2), ("B", 3)]

    def test_last_stage_strictly_alternates(self):
        order = one_f_one_b_order(stage=1, num_stages=2, num_micro_batches=4)
        assert phases(order) == [("F", 0), ("B", 0), ("F", 1), ("B", 1),
                                 ("F", 2), ("B", 2), ("F", 3), ("B", 3)]

    def test_warmup_shrinks_with_stage(self):
        for stage in range(4):
            order = one_f_one_b_order(stage, 4, 8)
            warmup = 0
            for chunk in order:
                if chunk.phase == BACKWARD:
                    break
                warmup += 1
            assert warmup == 4 - stage  # (p - 1 - stage) + the paired F

    def test_fewer_micro_batches_than_warmup(self):
        order = one_f_one_b_order(stage=0, num_stages=8, num_micro_batches=2)
        assert phases(order) == [("F", 0), ("F", 1), ("B", 0), ("B", 1)]

    def test_backward_order_is_fifo(self):
        order = one_f_one_b_order(stage=0, num_stages=3, num_micro_batches=6)
        bwd = [c.micro_batch for c in order if c.phase == BACKWARD]
        assert bwd == sorted(bwd)

    def test_rejects_bad_stage(self):
        with pytest.raises(ConfigError):
            one_f_one_b_order(stage=3, num_stages=3, num_micro_batches=2)


class TestHelpers:
    def test_schedule_order_dispatch(self):
        assert phases(schedule_order(PipelineSchedule.GPIPE, 0, 2, 2)) == \
            phases(gpipe_order(2))
        assert phases(schedule_order(PipelineSchedule.ONE_F_ONE_B, 0, 2, 2)) \
            == phases(one_f_one_b_order(0, 2, 2))

    def test_last_backward_micro_batch(self):
        assert last_backward_micro_batch(PipelineSchedule.GPIPE, 6) == 0
        assert last_backward_micro_batch(PipelineSchedule.ONE_F_ONE_B, 6) == 5

    def test_in_flight_gpipe_holds_everything(self):
        assert max_in_flight_micro_batches(PipelineSchedule.GPIPE, 0, 4,
                                           16) == 16

    def test_in_flight_1f1b_caps_at_depth(self):
        assert max_in_flight_micro_batches(PipelineSchedule.ONE_F_ONE_B, 0, 4,
                                           16) == 4
        assert max_in_flight_micro_batches(PipelineSchedule.ONE_F_ONE_B, 3, 4,
                                           16) == 1

    def test_bubble_fraction(self):
        assert pipeline_bubble_fraction(1, 8) == 0.0
        assert pipeline_bubble_fraction(4, 12) == pytest.approx(3 / 15)

    def test_bubble_fraction_rejects_bad_input(self):
        with pytest.raises(ConfigError):
            pipeline_bubble_fraction(0, 4)
        with pytest.raises(ConfigError):
            pipeline_bubble_fraction(2, 0)
        with pytest.raises(ConfigError):
            pipeline_bubble_fraction(2, 4, 0)


class TestInterleavedHelpers:
    def test_schedule_order_dispatches_to_interleaved(self):
        from repro.graph.pipeline import interleaved_order
        interleaved = schedule_order(PipelineSchedule.ONE_F_ONE_B, 0, 2, 4,
                                     virtual_stages=2)
        assert phases(interleaved) == phases(interleaved_order(0, 2, 4, 2))
        assert any(chunk.chunk == 1 for chunk in interleaved)

    def test_v1_dispatch_is_plain_1f1b(self):
        assert phases(schedule_order(PipelineSchedule.ONE_F_ONE_B, 0, 2, 4,
                                     virtual_stages=1)) == \
            phases(one_f_one_b_order(0, 2, 4))

    def test_bubble_fraction_shrinks_by_v(self):
        assert pipeline_bubble_fraction(4, 12, 3) == pytest.approx(3 / 39)
        assert pipeline_bubble_fraction(4, 12, 1) == \
            pipeline_bubble_fraction(4, 12)

    def test_in_flight_interleaved_window_count(self):
        # p=4, v=2, NMB=8: stage 0 warms up 2*3 + 4 = 10 chunks, +1 in
        # steady state; deeper stages admit fewer.
        assert max_in_flight_micro_batches(
            PipelineSchedule.ONE_F_ONE_B, 0, 4, 8, virtual_stages=2) == 11
        assert max_in_flight_micro_batches(
            PipelineSchedule.ONE_F_ONE_B, 3, 4, 8, virtual_stages=2) == 5

    def test_in_flight_all_warmup_case(self):
        # NMB == p runs all-forward-then-all-backward: every chunk lives.
        assert max_in_flight_micro_batches(
            PipelineSchedule.ONE_F_ONE_B, 0, 4, 4, virtual_stages=2) == 8
