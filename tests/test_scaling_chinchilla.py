"""Unit tests for the Chinchilla compute-optimal module (case study #3)."""

import pytest

from repro.config.system import multi_node
from repro.errors import ConfigError
from repro.hardware.gpu import A100_80GB
from repro.scaling.chinchilla import (TOKENS_PER_PARAMETER,
                                      best_plan_for_budget, candidate_model,
                                      compute_budget_flops,
                                      compute_optimal_search,
                                      evaluate_candidate,
                                      naive_chinchilla_point)


class TestBudgetAndNaivePoint:
    def test_paper_budget(self):
        """3,360 A100s for 30 days at 100% utility: C = 2.72e24 FLOPs."""
        budget = compute_budget_flops(3360, 30, A100_80GB.peak_fp16_flops)
        assert budget == pytest.approx(2.72e24, rel=0.01)

    def test_paper_naive_point(self):
        """The naive Chinchilla point: ~145.6B parameters."""
        budget = compute_budget_flops(3360, 30, A100_80GB.peak_fp16_flops)
        params, tokens = naive_chinchilla_point(budget)
        assert params == pytest.approx(145.61e9, rel=0.01)
        assert tokens == pytest.approx(2912e9, rel=0.07)

    def test_utilization_shrinks_budget(self):
        full = compute_budget_flops(100, 1, 1e12)
        half = compute_budget_flops(100, 1, 1e12, utilization=0.5)
        assert half == pytest.approx(full / 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            compute_budget_flops(0, 30, 1e12)
        with pytest.raises(ConfigError):
            compute_budget_flops(8, 30, 1e12, utilization=1.5)
        with pytest.raises(ConfigError):
            naive_chinchilla_point(0.0)


class TestCandidates:
    def test_table_iv_sizes(self):
        """(12288, 80) is the 145.6B architecture; (10240, 60) is 76B."""
        assert candidate_model(12288, 80).parameters_billion == \
            pytest.approx(145.6, rel=0.01)
        assert candidate_model(10240, 60).parameters_billion == \
            pytest.approx(76.0, rel=0.01)

    @pytest.mark.slow
    def test_tokens_at_20x_params(self):
        system = multi_node(8)
        candidate = evaluate_candidate(4096, 32, 64, system)
        assert candidate.tokens == pytest.approx(
            TOKENS_PER_PARAMETER * candidate.model.num_parameters())

    @pytest.mark.slow
    def test_candidate_row_fields(self):
        system = multi_node(8)
        row = evaluate_candidate(4096, 32, 64, system).as_row()
        assert set(row) == {"h", "L", "parameters_b", "tokens_b",
                            "optimal_tdp", "estimated_days"}


@pytest.mark.slow
class TestBestPlan:
    def test_plan_uses_exact_budget(self):
        system = multi_node(8)
        model = candidate_model(4096, 32)
        plan, training, iteration_time, utilization = best_plan_for_budget(
            model, 64, system)
        assert plan.total_gpus == 64
        assert iteration_time > 0
        assert 0 < utilization < 1
        assert training.global_batch_size % plan.data == 0


@pytest.mark.slow
class TestSearch:
    def test_smaller_models_train_faster(self):
        """Monotonicity across two Table IV rows."""
        system = multi_node(8)
        big = evaluate_candidate(4096, 32, 64, system)
        small = evaluate_candidate(3072, 24, 64, system)
        assert small.training_days < big.training_days

    def test_search_picks_largest_within_budget(self):
        system = multi_node(8)
        architectures = ((4096, 32), (3072, 24), (2048, 16))
        rows, best = compute_optimal_search(
            64, budget_days=10_000.0, system=system,
            architectures=architectures)
        assert len(rows) == 3
        assert best is not None
        # Everything fits a huge budget -> pick the largest model.
        assert best.model.hidden_size == 4096

    def test_search_respects_budget(self):
        system = multi_node(8)
        architectures = ((4096, 32), (2048, 16))
        rows, best = compute_optimal_search(64, budget_days=0.0001,
                                            system=system,
                                            architectures=architectures)
        assert best is None  # nothing trains in 8.6 seconds
