"""Tests for ``repro.workload`` — the workload abstraction layer.

The contract under test: the training workload is the default
everywhere (omit-default serialisation keeps pre-workload configs and
fingerprints valid), and the inference workload carries exactly the
serving-shape knobs the prefill/decode graphs and KV-cache memory
model need.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.parallelism import TrainingConfig
from repro.errors import ConfigError
from repro.workload import (DECODE, INFERENCE, INFERENCE_PHASES, PREFILL,
                            TRAINING, InferenceWorkload, TrainingWorkload,
                            Workload, workload_from_dict)


class TestTrainingWorkload:
    def test_kind_tag(self, training):
        assert TrainingWorkload(training).kind == TRAINING

    def test_satisfies_protocol(self, training):
        assert isinstance(TrainingWorkload(training), Workload)

    def test_round_trip(self, training):
        workload = TrainingWorkload(training)
        rebuilt = TrainingWorkload.from_dict(workload.to_dict())
        assert rebuilt == workload

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ConfigError):
            TrainingWorkload.from_dict({"kind": "inference"})


class TestInferenceWorkload:
    def test_kind_tag(self):
        workload = InferenceWorkload(batch_size=8, prompt_len=128,
                                     gen_len=64)
        assert workload.kind == INFERENCE
        assert isinstance(workload, Workload)

    def test_phase_tags(self):
        assert INFERENCE_PHASES == (PREFILL, DECODE)
        assert PREFILL == "prefill" and DECODE == "decode"

    @pytest.mark.parametrize("field", ["batch_size", "prompt_len",
                                       "gen_len"])
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "8"])
    def test_shape_knobs_must_be_positive_ints(self, field, bad):
        shape = {"batch_size": 8, "prompt_len": 128, "gen_len": 64}
        shape[field] = bad
        with pytest.raises(ConfigError):
            InferenceWorkload(**shape)

    def test_max_kv_length_is_the_provisioning_bound(self):
        workload = InferenceWorkload(batch_size=4, prompt_len=100,
                                     gen_len=28)
        assert workload.max_kv_length == 128

    def test_static_batch_decodes_at_full_depth(self):
        workload = InferenceWorkload(batch_size=4, prompt_len=100,
                                     gen_len=28)
        assert workload.decode_kv_length == workload.max_kv_length

    def test_continuous_batching_decodes_at_mean_depth(self):
        workload = InferenceWorkload(batch_size=4, prompt_len=100,
                                     gen_len=28, continuous_batching=True)
        assert workload.decode_kv_length == 100 + 28 // 2
        assert workload.max_kv_length == 128  # memory bound unchanged

    def test_tokens_per_request_counts_generated_tokens(self):
        workload = InferenceWorkload(batch_size=4, prompt_len=100,
                                     gen_len=28)
        assert workload.tokens_per_request == 28

    @given(batch=st.integers(1, 64), replicas=st.integers(1, 8))
    def test_training_proxy_scales_with_replicas(self, batch, replicas):
        workload = InferenceWorkload(batch_size=batch, prompt_len=32,
                                     gen_len=8)
        proxy = workload.training_proxy(replicas)
        assert isinstance(proxy, TrainingConfig)
        assert proxy.global_batch_size == batch * replicas
        # Per-replica batch is exactly the serving batch.
        assert proxy.global_batch_size // replicas == batch

    def test_training_proxy_rejects_nonpositive_replicas(self):
        workload = InferenceWorkload(batch_size=8, prompt_len=128,
                                     gen_len=64)
        with pytest.raises(ConfigError):
            workload.training_proxy(0)

    def test_round_trip(self):
        workload = InferenceWorkload(batch_size=8, prompt_len=128,
                                     gen_len=64, continuous_batching=True)
        assert InferenceWorkload.from_dict(workload.to_dict()) == workload

    def test_to_dict_omits_default_continuous_batching(self):
        payload = InferenceWorkload(batch_size=8, prompt_len=128,
                                    gen_len=64).to_dict()
        assert "continuous_batching" not in payload
        assert payload["kind"] == INFERENCE

    def test_from_dict_rejects_missing_field(self):
        with pytest.raises(ConfigError):
            InferenceWorkload.from_dict({"kind": INFERENCE,
                                         "batch_size": 8})


class TestWorkloadFromDict:
    """The serve-daemon envelope decoder: absent/training → None
    (classic path), inference → :class:`InferenceWorkload`."""

    def test_absent_means_training_path(self):
        assert workload_from_dict(None) is None

    def test_training_kind_means_training_path(self):
        assert workload_from_dict({"kind": TRAINING}) is None

    def test_inference_envelope_decodes(self):
        workload = InferenceWorkload(batch_size=8, prompt_len=128,
                                     gen_len=64)
        assert workload_from_dict(workload.to_dict()) == workload

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            workload_from_dict({"kind": "finetune"})
