"""Unit tests for the VTrain facade and end-to-end estimation."""

import pytest

from repro.config.description import InputDescription
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.cost.pricing import PricingModel
from repro.errors import InfeasibleConfigError
from repro.graph.builder import Granularity
from repro.sim.estimator import (VTrain, cost_for_utilization,
                                 training_days_for_utilization)


class TestPredict:
    def test_prediction_fields(self, vtrain, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        prediction = vtrain.predict(tiny_model, plan, training)
        assert prediction.iteration_time > 0
        assert 0 < prediction.gpu_compute_utilization < 1
        assert prediction.num_gpus == 8
        assert prediction.tokens_per_iteration == 16 * 128
        assert prediction.memory_per_gpu > 0
        assert prediction.achieved_flops_per_gpu > 0
        assert prediction.tokens_per_second > 0

    def test_memory_check_can_reject(self, training):
        from repro.config.model import ModelConfig
        huge = ModelConfig(hidden_size=16384, num_layers=8, seq_length=2048,
                           num_heads=128, name="too-big")
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=1, data=8, pipeline=1)
        with pytest.raises(InfeasibleConfigError, match="GiB"):
            vtrain.predict(huge, plan, TrainingConfig(global_batch_size=8))

    def test_memory_check_can_be_disabled(self, training):
        from repro.config.model import ModelConfig
        huge = ModelConfig(hidden_size=16384, num_layers=8, seq_length=2048,
                           num_heads=128, name="too-big")
        vtrain = VTrain(single_node(), check_memory_feasibility=False)
        plan = ParallelismConfig(tensor=1, data=8, pipeline=1)
        prediction = vtrain.predict(huge, plan,
                                    TrainingConfig(global_batch_size=8))
        assert prediction.iteration_time > 0

    def test_structural_violation_raises(self, vtrain, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=3)  # 12 != 8
        with pytest.raises(InfeasibleConfigError):
            vtrain.predict(tiny_model, plan, training)

    def test_predict_from_description(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        desc = InputDescription(model=tiny_model, system=single_node(),
                                plan=plan, training=training)
        prediction = VTrain(single_node()).predict_description(desc)
        assert prediction.iteration_time > 0

    def test_more_gpus_faster(self, tiny_model, training):
        slow = VTrain(single_node()).predict(
            tiny_model, ParallelismConfig(tensor=1, data=2, pipeline=1),
            training)
        # same model, 8-way data parallel
        fast = VTrain(single_node()).predict(
            tiny_model, ParallelismConfig(tensor=1, data=8, pipeline=1),
            training)
        assert fast.iteration_time < slow.iteration_time


class TestGranularities:
    @pytest.mark.parametrize("granularity", list(Granularity))
    def test_all_granularities_run(self, tiny_model, training, granularity):
        vtrain = VTrain(single_node(), granularity=granularity)
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        prediction = vtrain.predict(tiny_model, plan, training)
        assert prediction.iteration_time > 0


class TestEndToEnd:
    def test_estimate_training_days_and_cost(self, vtrain, tiny_model,
                                             training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        estimate = vtrain.estimate_training(tiny_model, plan, training)
        iterations = training.num_iterations(tiny_model)
        assert estimate.num_iterations == iterations
        expected_days = estimate.iteration_time * iterations / 86_400
        assert estimate.total_days == pytest.approx(expected_days)
        assert estimate.dollars_per_hour == pytest.approx(8 * 5.0)
        expected_total = (estimate.dollars_per_hour * estimate.total_days
                          * 24)
        assert estimate.dollars_total == pytest.approx(expected_total,
                                                       rel=1e-6)

    def test_custom_pricing(self, vtrain, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        estimate = vtrain.estimate_training(
            tiny_model, plan, training, pricing=PricingModel(10.0))
        assert estimate.dollars_per_hour == pytest.approx(80.0)

    def test_as_row_keys(self, vtrain, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        row = vtrain.estimate_training(tiny_model, plan, training).as_row()
        assert set(row) == {"iteration_time_s", "total_days",
                            "utilization_pct", "num_gpus",
                            "dollars_per_hour", "dollars_total_millions"}


class TestProfilingAmortisation:
    def test_shared_lookup_across_predictions(self, tiny_model, training):
        """Predicting many plans profiles each necessary operator once."""
        vtrain = VTrain(single_node())
        plans = [ParallelismConfig(tensor=2, data=2, pipeline=2,
                                   micro_batch_size=m) for m in (1, 2, 4)]
        for plan in plans:
            vtrain.predict(tiny_model, plan, training)
        stats = vtrain.profiling_stats
        # 3 micro-batch sizes x ~9 operator kinds, not x plans x layers.
        assert stats["operators_profiled"] <= 3 * 9
        # Re-predicting profiles nothing new: every operator duration is
        # served from the lookup table (the builder's timing table
        # consults it O(#operators) times per build, not per task).
        before = stats["operators_profiled"]
        vtrain.predict(tiny_model, plans[0], training)
        after = vtrain.profiling_stats
        assert after["operators_profiled"] == before
        assert after["lookups_served_from_table"] > \
            stats["lookups_served_from_table"]

    def test_structure_cache_amortises_graph_builds(self, tiny_model,
                                                    training):
        """A repeated predict reuses the compiled structure: only the
        duration vector is refilled, and the prediction is identical."""
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        first = vtrain.predict(tiny_model, plan, training)
        assert vtrain.last_predict_timing is not None
        second = vtrain.predict(tiny_model, plan, training)
        stats = vtrain.profiling_stats
        assert stats["structure_cache_hits"] >= 1
        assert vtrain.last_predict_timing.structure_cache_hit
        assert vtrain.last_predict_timing.structure_s == 0.0
        assert vtrain.last_predict_timing.structure_source == "cache hit"
        assert second.iteration_time == first.iteration_time
        assert second.simulation.device_timeline == \
            first.simulation.device_timeline


class TestFigure1Helpers:
    def test_days_inverse_in_utilization(self):
        from repro.config.presets import GPT3_175B
        days_40 = training_days_for_utilization(GPT3_175B, 300e9, 1024, 0.40,
                                                312e12)
        days_50 = training_days_for_utilization(GPT3_175B, 300e9, 1024, 0.50,
                                                312e12)
        assert days_40 == pytest.approx(days_50 * 50 / 40)

    def test_figure1_magnitude(self):
        """GPT-3 at 50% utilization on 1,024 A100s: tens of days
        (Figure 1 shows ~25 days at 50%)."""
        from repro.config.presets import GPT3_175B
        days = training_days_for_utilization(GPT3_175B, 300e9, 1024, 0.50,
                                             312e12)
        assert 15 < days < 40

    def test_cost_scales_with_days(self):
        from repro.config.presets import GPT3_175B
        cost_40 = cost_for_utilization(GPT3_175B, 300e9, 1024, 0.40, 312e12)
        cost_50 = cost_for_utilization(GPT3_175B, 300e9, 1024, 0.50, 312e12)
        assert cost_40 > cost_50

    def test_bad_utilization_rejected(self):
        from repro.config.presets import GPT3_175B
        with pytest.raises(ValueError):
            training_days_for_utilization(GPT3_175B, 300e9, 1024, 0.0, 312e12)
