"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.cli import _preset_description, main
from repro.config.description import InputDescription
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.presets import MT_NLG_530B
from repro.config.system import single_node
from repro.obs.export import load_trace
from repro.obs.schema import validate
from repro.obs.tracer import ENGINE_PID

SCHEMA_DIR = Path(__file__).parent.parent / "schemas"


@pytest.fixture
def restore_obs():
    """Commands like ``--trace``/``--metrics`` enable the global obs
    switch; put it back so later tests see the default state."""
    was_enabled = obs.enabled()
    yield
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.reset()


@pytest.fixture
def description_file(tmp_path, tiny_model, training):
    plan = ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2)
    description = InputDescription(model=tiny_model, system=single_node(),
                                   plan=plan, training=training)
    path = tmp_path / "desc.json"
    description.save(path)
    return path


class TestPredict:
    def test_predict_prints_metrics(self, description_file, capsys):
        assert main(["predict", str(description_file)]) == 0
        out = capsys.readouterr().out
        assert "iteration time" in out
        assert "utilization" in out
        assert "training time" in out  # token budget present

    def test_predict_without_token_budget(self, tmp_path, tiny_model,
                                          capsys):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        description = InputDescription(
            model=tiny_model, system=single_node(), plan=plan,
            training=TrainingConfig(global_batch_size=16))
        path = tmp_path / "nobudget.json"
        description.save(path)
        assert main(["predict", str(path)]) == 0
        out = capsys.readouterr().out
        assert "training time" not in out

    def test_predict_granularity_flag(self, description_file, capsys):
        assert main(["predict", str(description_file),
                     "--granularity", "stage"]) == 0
        assert "iteration time" in capsys.readouterr().out

    def test_predict_timing_flag_prints_phase_breakdown(
            self, description_file, capsys):
        assert main(["predict", str(description_file), "--timing"]) == 0
        out = capsys.readouterr().out
        assert "timing breakdown" in out
        for phase in ("memory check", "structure", "duration fill",
                      "replay", "total"):
            assert phase in out
        assert "built" in out or "cache hit" in out

    def test_predict_without_timing_flag_omits_breakdown(
            self, description_file, capsys):
        assert main(["predict", str(description_file)]) == 0
        assert "timing breakdown" not in capsys.readouterr().out

    def test_timing_includes_network_setup_phase(self, description_file,
                                                 capsys):
        # A cold predict spends real time constructing the network model
        # inside GraphBuilder; the breakdown must account for it rather
        # than leave a gap between the phases and the total.
        assert main(["predict", str(description_file), "--timing"]) == 0
        assert "network setup" in capsys.readouterr().out

    def test_predict_needs_description_xor_preset(self, description_file,
                                                  capsys):
        assert main(["predict"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["predict", str(description_file),
                     "--preset", "megatron-1.7b"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_predict_preset_writes_schema_valid_trace(self, tmp_path, capsys,
                                                      restore_obs):
        trace_path = tmp_path / "trace.json"
        assert main(["predict", "--preset", "megatron-1.7b",
                     "--granularity", "stage",
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "iteration time" in out
        assert "trace" in out
        payload = load_trace(trace_path)
        schema_path = SCHEMA_DIR / "chrome_trace.schema.json"
        validate(payload, json.loads(schema_path.read_text()))
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert ENGINE_PID in pids  # engine spans present
        assert any(pid >= 1000 for pid in pids)  # simulated devices too

    def test_preset_alias_resolves_to_published_mtnlg_plan(self):
        description = _preset_description("mtnlg")
        assert description.model is MT_NLG_530B
        plan = description.plan
        assert (plan.tensor, plan.data, plan.pipeline) == (8, 8, 35)

    def test_unknown_preset_fails_cleanly(self, capsys):
        assert main(["predict", "--preset", "not-a-model"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_description_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"model": {}}))
        assert main(["predict", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["predict", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestDse:
    ARGS = ["dse", "megatron-1.7b", "--max-gpus", "4", "--global-batch", "8",
            "--max-tensor", "2", "--max-data", "2", "--max-pipeline", "2",
            "--micro-batches", "1", "--quiet"]

    def test_dse_prints_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "search space" in out
        assert "fastest plan" in out
        assert "cheapest plan" in out

    def test_dse_writes_cache_and_reuses_it(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        args = self.ARGS + ["--cache", str(cache)]
        assert main(args) == 0
        assert cache.exists()
        first = capsys.readouterr().out
        assert "0 hits" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second

    def test_dse_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "points.csv"
        assert main(self.ARGS + ["--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "tensor" in csv_path.read_text().splitlines()[0]

    def test_dse_requires_a_gpu_budget(self, capsys):
        with pytest.raises(SystemExit):
            main(["dse", "megatron-1.7b"])

    def test_dse_network_flag_sweeps_topology_backend(self, capsys):
        assert main(self.ARGS + ["--network", "rail"]) == 0
        out = capsys.readouterr().out
        assert "fastest plan" in out

    def test_dse_network_flag_accepts_fat_tree_ratio(self, capsys):
        assert main(self.ARGS + ["--network", "fat-tree:4"]) == 0
        assert "fastest plan" in capsys.readouterr().out

    def test_dse_rejects_bad_network_spec(self, capsys):
        assert main(self.ARGS + ["--network", "torus"]) == 1
        assert "error" in capsys.readouterr().err

    def test_dse_reports_structure_cache_line(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "structure cache" in out
        assert "evictions" in out

    def test_dse_metrics_round_trips_through_stats(self, tmp_path, capsys,
                                                   restore_obs):
        snapshot = tmp_path / "metrics.json"
        assert main(self.ARGS + ["--metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "observability snapshot" in out
        assert "saved metrics" in out
        assert "hit rates" in out
        assert snapshot.exists()
        assert main(["stats", str(snapshot)]) == 0
        stats_out = capsys.readouterr().out
        assert f"snapshot         : {snapshot}" in stats_out
        assert "counters" in stats_out
        # the sweep replays plans, so throughput quantiles are populated
        assert "sim.replay_tasks_per_s" in stats_out
        assert "p50=" in stats_out and "p99=" in stats_out


class TestStats:
    def test_stats_missing_snapshot_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--metrics" in err


class TestExampleAndPresets:
    def test_example_round_trips_through_predict(self, tmp_path, capsys):
        output = tmp_path / "example.json"
        assert main(["example", "megatron-1.7b",
                     "--output", str(output)]) == 0
        assert output.exists()
        assert main(["predict", str(output),
                     "--granularity", "stage"]) == 0
        out = capsys.readouterr().out
        assert "iteration time" in out

    def test_presets_lists_models(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "mt-nlg-530b" in out
        assert "gpt-3-175b" in out


class TestInferenceCli:
    def test_predict_inference_prints_serving_report(
            self, description_file, capsys):
        assert main(["predict", str(description_file),
                     "--workload", "inference", "--batch-size", "8",
                     "--prompt-len", "128", "--gen-len", "64"]) == 0
        out = capsys.readouterr().out
        assert "TTFT (prefill)" in out
        assert "TPOT (decode)" in out
        assert "decode tokens/s" in out
        assert "Mtok" in out

    def test_inference_flags_require_inference_workload(
            self, description_file, capsys):
        assert main(["predict", str(description_file),
                     "--batch-size", "8"]) == 1
        err = capsys.readouterr().err
        assert "--workload inference" in err

    def test_predict_inference_timing_flag_rejected(
            self, description_file, capsys):
        assert main(["predict", str(description_file),
                     "--workload", "inference", "--timing"]) == 1

    def test_predict_inference_writes_decode_trace(
            self, description_file, tmp_path, capsys, restore_obs):
        trace_path = tmp_path / "decode.json"
        assert main(["predict", str(description_file),
                     "--workload", "inference",
                     "--trace", str(trace_path)]) == 0
        trace = load_trace(trace_path)
        categories = {event.get("cat") for event in trace["traceEvents"]
                      if event.get("ph") == "X"}
        assert "decode" in categories
        assert trace["otherData"]["workload"] == "inference"
        assert trace["otherData"]["phase"] == "decode"

    def test_dse_inference_prints_pareto_summary(self, capsys):
        assert main(["dse", "gpt-3-175b", "--workload", "inference",
                     "--batch-size", "8", "--prompt-len", "128",
                     "--gen-len", "64", "--max-gpus", "16",
                     "--max-data", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "tok/s" in out
        assert "$/Mtok" in out
        assert "pareto" in out.lower()

    def test_dse_inference_writes_serving_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "serving.csv"
        assert main(["dse", "gpt-3-175b", "--workload", "inference",
                     "--batch-size", "8", "--prompt-len", "128",
                     "--gen-len", "64", "--max-gpus", "16",
                     "--max-data", "2", "--quiet",
                     "--csv", str(csv_path)]) == 0
        header = csv_path.read_text().splitlines()[0]
        assert "tokens_per_s" in header
        assert "cost_per_million_tokens_usd" in header

    def test_dse_inference_rejects_virtual_stages(self, capsys):
        assert main(["dse", "gpt-3-175b", "--workload", "inference",
                     "--batch-size", "8", "--prompt-len", "128",
                     "--gen-len", "64", "--max-gpus", "8",
                     "--virtual-stages", "2"]) == 1
