"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.config.description import InputDescription
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node


@pytest.fixture
def description_file(tmp_path, tiny_model, training):
    plan = ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2)
    description = InputDescription(model=tiny_model, system=single_node(),
                                   plan=plan, training=training)
    path = tmp_path / "desc.json"
    description.save(path)
    return path


class TestPredict:
    def test_predict_prints_metrics(self, description_file, capsys):
        assert main(["predict", str(description_file)]) == 0
        out = capsys.readouterr().out
        assert "iteration time" in out
        assert "utilization" in out
        assert "training time" in out  # token budget present

    def test_predict_without_token_budget(self, tmp_path, tiny_model,
                                          capsys):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        description = InputDescription(
            model=tiny_model, system=single_node(), plan=plan,
            training=TrainingConfig(global_batch_size=16))
        path = tmp_path / "nobudget.json"
        description.save(path)
        assert main(["predict", str(path)]) == 0
        out = capsys.readouterr().out
        assert "training time" not in out

    def test_predict_granularity_flag(self, description_file, capsys):
        assert main(["predict", str(description_file),
                     "--granularity", "stage"]) == 0
        assert "iteration time" in capsys.readouterr().out

    def test_invalid_description_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"model": {}}))
        assert main(["predict", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["predict", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestExampleAndPresets:
    def test_example_round_trips_through_predict(self, tmp_path, capsys):
        output = tmp_path / "example.json"
        assert main(["example", "megatron-1.7b",
                     "--output", str(output)]) == 0
        assert output.exists()
        assert main(["predict", str(output),
                     "--granularity", "stage"]) == 0
        out = capsys.readouterr().out
        assert "iteration time" in out

    def test_presets_lists_models(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "mt-nlg-530b" in out
        assert "gpt-3-175b" in out
