"""Unit tests for the execution-graph structure and assembler."""

import pytest

from repro.errors import SimulationError
from repro.graph.structure import (COMM_STREAM, COMPUTE_STREAM,
                                   GraphAssembler, KIND_COMPUTE,
                                   KIND_DP_COMM)


class TestAssembler:
    def test_chain_serialises_same_stream(self):
        asm = GraphAssembler()
        first = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        second = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b")
        graph = asm.finish(num_devices=1)
        assert second in graph.nodes[first].children
        assert graph.nodes[second].num_parents == 1

    def test_streams_are_independent(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        comm = asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "c")
        graph = asm.finish(num_devices=1)
        assert graph.nodes[comm].num_parents == 0

    def test_chain_false_does_not_extend_chain(self):
        asm = GraphAssembler()
        first = asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "a")
        asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "send", chain=False)
        third = asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "b")
        graph = asm.finish(num_devices=1)
        assert third in graph.nodes[first].children

    def test_explicit_deps(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        b = asm.add(1, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b", deps=(a,))
        graph = asm.finish(num_devices=2)
        assert b in graph.nodes[a].children

    def test_negative_duration_rejected(self):
        asm = GraphAssembler()
        with pytest.raises(SimulationError):
            asm.add(0, COMPUTE_STREAM, -1.0, KIND_COMPUTE, "bad")

    def test_self_dependency_rejected(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        with pytest.raises(SimulationError):
            asm.link(a, a)

    def test_chain_tail_tracking(self):
        asm = GraphAssembler()
        assert asm.chain_tail(0, COMPUTE_STREAM) is None
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        assert asm.chain_tail(0, COMPUTE_STREAM) == a


class TestExecutionGraph:
    def _diamond(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a", chain=False)
        b = asm.add(0, COMM_STREAM, 2.0, KIND_DP_COMM, "b", deps=(a,),
                    chain=False)
        c = asm.add(1, COMPUTE_STREAM, 3.0, KIND_COMPUTE, "c", deps=(a,),
                    chain=False)
        asm.add(1, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "d", deps=(b, c),
                chain=False)
        return asm.finish(num_devices=2)

    def test_roots(self):
        graph = self._diamond()
        assert graph.roots() == [0]

    def test_edge_count(self):
        assert self._diamond().num_edges == 4

    def test_duration_by_kind(self):
        totals = self._diamond().total_duration_by_kind()
        assert totals[KIND_COMPUTE] == pytest.approx(5.0)
        assert totals[KIND_DP_COMM] == pytest.approx(2.0)

    def test_device_durations(self):
        per_device = self._diamond().device_durations()
        assert per_device[0] == pytest.approx(3.0)
        assert per_device[1] == pytest.approx(4.0)

    def test_validate_acyclic_passes(self):
        self._diamond().validate_acyclic()

    def test_validate_acyclic_detects_cycle(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a", chain=False)
        b = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b", deps=(a,),
                    chain=False)
        asm.link(b, a)  # cycle
        graph = asm.finish(num_devices=1)
        with pytest.raises(SimulationError, match="cycle"):
            graph.validate_acyclic()

    def test_networkx_export(self):
        nx_graph = self._diamond().to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        import networkx as nx
        assert nx.is_directed_acyclic_graph(nx_graph)
