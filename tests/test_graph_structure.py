"""Unit tests for the execution-graph structure and assembler."""

import pytest

from repro.errors import SimulationError
from repro.graph.structure import (COMM_STREAM, COMPUTE_STREAM,
                                   GraphAssembler, GraphStructure,
                                   KIND_COMPUTE, KIND_DP_COMM)


class TestAssembler:
    def test_chain_serialises_same_stream(self):
        asm = GraphAssembler()
        first = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        second = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b")
        graph = asm.finish(num_devices=1)
        assert second in graph.nodes[first].children
        assert graph.nodes[second].num_parents == 1

    def test_streams_are_independent(self):
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        comm = asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "c")
        graph = asm.finish(num_devices=1)
        assert graph.nodes[comm].num_parents == 0

    def test_chain_false_does_not_extend_chain(self):
        asm = GraphAssembler()
        first = asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "a")
        asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "send", chain=False)
        third = asm.add(0, COMM_STREAM, 1.0, KIND_DP_COMM, "b")
        graph = asm.finish(num_devices=1)
        assert third in graph.nodes[first].children

    def test_explicit_deps(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        b = asm.add(1, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b", deps=(a,))
        graph = asm.finish(num_devices=2)
        assert b in graph.nodes[a].children

    def test_negative_duration_rejected(self):
        asm = GraphAssembler()
        with pytest.raises(SimulationError):
            asm.add(0, COMPUTE_STREAM, -1.0, KIND_COMPUTE, "bad")

    def test_self_dependency_rejected(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        with pytest.raises(SimulationError):
            asm.link(a, a)

    def test_chain_tail_tracking(self):
        asm = GraphAssembler()
        assert asm.chain_tail(0, COMPUTE_STREAM) is None
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        assert asm.chain_tail(0, COMPUTE_STREAM) == a


class TestExecutionGraph:
    def _diamond(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a", chain=False)
        b = asm.add(0, COMM_STREAM, 2.0, KIND_DP_COMM, "b", deps=(a,),
                    chain=False)
        c = asm.add(1, COMPUTE_STREAM, 3.0, KIND_COMPUTE, "c", deps=(a,),
                    chain=False)
        asm.add(1, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "d", deps=(b, c),
                chain=False)
        return asm.finish(num_devices=2)

    def test_roots(self):
        graph = self._diamond()
        assert graph.roots() == [0]

    def test_edge_count(self):
        assert self._diamond().num_edges == 4

    def test_duration_by_kind(self):
        totals = self._diamond().total_duration_by_kind()
        assert totals[KIND_COMPUTE] == pytest.approx(5.0)
        assert totals[KIND_DP_COMM] == pytest.approx(2.0)

    def test_device_durations(self):
        per_device = self._diamond().device_durations()
        assert per_device[0] == pytest.approx(3.0)
        assert per_device[1] == pytest.approx(4.0)

    def test_validate_acyclic_passes(self):
        self._diamond().validate_acyclic()

    def test_validate_acyclic_detects_cycle(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a", chain=False)
        b = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "b", deps=(a,),
                    chain=False)
        asm.link(b, a)  # cycle
        graph = asm.finish(num_devices=1)
        with pytest.raises(SimulationError, match="cycle"):
            graph.validate_acyclic()

    def test_networkx_export(self):
        nx_graph = self._diamond().to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        import networkx as nx
        assert nx.is_directed_acyclic_graph(nx_graph)

    def test_device_out_of_range_rejected_at_build(self):
        """A task on a device >= num_devices is a build-time error (the
        old engine silently invented timeline entries for it)."""
        asm = GraphAssembler()
        asm.add(2, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "ghost")
        with pytest.raises(SimulationError, match="device 2"):
            asm.finish(num_devices=2)

    def test_negative_device_rejected_at_build(self):
        asm = GraphAssembler()
        asm.add(-1, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "ghost")
        with pytest.raises(SimulationError, match="device -1"):
            asm.finish(num_devices=2)


class TestGraphStructure:
    def _diamond(self):
        asm = GraphAssembler()
        a = asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a", chain=False,
                    slot="x")
        b = asm.add(0, COMM_STREAM, 2.0, KIND_DP_COMM, "b", deps=(a,),
                    chain=False, slot="y")
        c = asm.add(1, COMPUTE_STREAM, 3.0, KIND_COMPUTE, "c", deps=(a,),
                    chain=False, slot="x")
        asm.add(1, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "d", deps=(b, c),
                chain=False, slot="z")
        return asm, asm.finish(num_devices=2)

    def test_replay_order_is_topological(self):
        asm, graph = self._diamond()
        structure = GraphStructure.compile(graph, slots=asm.slots)
        position = {task: pos
                    for pos, task in enumerate(structure.task_id.tolist())}
        for node in graph.nodes:
            for child in node.children:
                assert position[node.task_id] < position[child]

    def test_csr_arrays_consistent(self):
        asm, graph = self._diamond()
        structure = GraphStructure.compile(graph, slots=asm.slots)
        ptr = structure.child_ptr.tolist()
        assert ptr[0] == 0
        assert ptr[-1] == structure.num_edges == graph.num_edges
        assert all(lo <= hi for lo, hi in zip(ptr, ptr[1:]))
        for pos, children in enumerate(structure.children_view):
            lo, hi = ptr[pos], ptr[pos + 1]
            assert structure.child_idx.tolist()[lo:hi] == list(children)

    def test_slots_interned_and_retimed(self):
        asm, graph = self._diamond()
        structure = GraphStructure.compile(graph, slots=asm.slots)
        assert set(structure.slot_keys) == {"x", "y", "z"}
        durations = structure.retime({"x": 5.0, "y": 6.0, "z": 7.0})
        by_task = dict(zip(structure.task_id.tolist(), durations.tolist()))
        assert by_task == {0: 5.0, 1: 6.0, 2: 5.0, 3: 7.0}

    def test_retime_missing_slot_raises(self):
        asm, graph = self._diamond()
        structure = GraphStructure.compile(graph, slots=asm.slots)
        with pytest.raises(SimulationError, match="missing slot"):
            structure.retime({"x": 5.0})

    def test_missing_slots_disable_retime(self):
        _, graph = self._diamond()
        structure = GraphStructure.compile(graph)  # no slots recorded
        assert structure.slot_keys is None
        with pytest.raises(SimulationError, match="slot"):
            structure.retime({"x": 1.0})

    def test_baseline_durations_read_only(self):
        asm, graph = self._diamond()
        structure = GraphStructure.compile(graph, slots=asm.slots)
        with pytest.raises(ValueError):
            structure.duration[0] = 99.0


class TestStructureCache:
    def test_put_get_and_stats(self):
        from repro.graph.builder import (clear_structure_cache,
                                         structure_cache_get,
                                         structure_cache_put,
                                         structure_cache_stats)
        asm = GraphAssembler()
        asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, "a")
        structure = GraphStructure.compile(asm.finish(num_devices=1))
        clear_structure_cache()
        try:
            assert structure_cache_get("k") is None
            structure_cache_put("k", structure)
            assert structure_cache_get("k") is structure
            stats = structure_cache_stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            assert stats["entries"] == 1 and stats["cached_tasks"] == 1
        finally:
            clear_structure_cache()

    def test_lru_eviction_respects_task_budget(self, monkeypatch):
        from repro.graph.builder import (clear_structure_cache,
                                         structure_cache_get,
                                         structure_cache_put,
                                         structure_cache_stats)
        monkeypatch.setenv("REPRO_STRUCTURE_CACHE_TASKS", "5")

        def structure_with(num_tasks):
            asm = GraphAssembler()
            for index in range(num_tasks):
                asm.add(0, COMPUTE_STREAM, 1.0, KIND_COMPUTE, f"t{index}")
            return GraphStructure.compile(asm.finish(num_devices=1))

        clear_structure_cache()
        try:
            structure_cache_put("a", structure_with(3))
            structure_cache_put("b", structure_with(2))
            structure_cache_get("a")  # refresh 'a' so 'b' is LRU
            structure_cache_put("c", structure_with(2))
            assert structure_cache_get("b") is None  # evicted
            assert structure_cache_get("a") is not None
            assert structure_cache_get("c") is not None
            assert structure_cache_stats()["evictions"] == 1
        finally:
            clear_structure_cache()
