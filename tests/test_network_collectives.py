"""Unit tests for contention-costed collective algorithms."""

import pytest

from repro.errors import ConfigError
from repro.hardware.interconnect import RingParameters
from repro.network.collectives import (Flow, flat_ring_lower_bound,
                                       hierarchical_allreduce_time,
                                       ring_allgather_time,
                                       ring_allreduce_time,
                                       ring_reduce_scatter_time,
                                       transfer_time, tree_allreduce_time)
from repro.network.topology import (RailOptimizedTopology, Topology, gpu_id)

MIB = float(1 << 20)
NIC = 25e9


def rail(num_nodes=4, gpus=8, nics=4):
    return RailOptimizedTopology(num_nodes, gpus, nics,
                                 nvlink_bandwidth=300e9, nic_bandwidth=NIC,
                                 intranode_latency=3e-6,
                                 internode_latency=5e-6)


def one_per_node(topo, count):
    return [gpu_id(node, 0) for node in range(count)]


class TestTransferTime:
    def test_single_flow_is_payload_over_bandwidth(self):
        topo = Topology()
        topo.add_link("a", "b", 100e9, 2e-6)
        flow = Flow(tuple(topo.route("a", "b")), 100e9)
        assert transfer_time([flow]) == pytest.approx(1.0 + 2e-6)

    def test_contended_link_splits_bandwidth(self):
        """Two flows over one link each get B/2 — twice the time."""
        topo = Topology()
        topo.add_link("a", "b", 100e9, 0.0)
        flow = Flow(tuple(topo.route("a", "b")), 100e9)
        assert transfer_time([flow, flow]) == pytest.approx(2.0)

    def test_disjoint_flows_do_not_contend(self):
        topo = Topology()
        topo.add_link("a", "b", 100e9, 0.0)
        topo.add_link("c", "d", 100e9, 0.0)
        flows = [Flow(tuple(topo.route("a", "b")), 100e9),
                 Flow(tuple(topo.route("c", "d")), 100e9)]
        assert transfer_time(flows) == pytest.approx(1.0)

    def test_bottleneck_is_the_minimum_share(self):
        topo = Topology()
        topo.add_link("a", "b", 100e9, 0.0)
        topo.add_link("b", "c", 10e9, 0.0)  # narrow second hop
        flow = Flow(tuple(topo.route("a", "c")), 10e9)
        assert transfer_time([flow]) == pytest.approx(1.0)

    def test_empty_flow_costs_its_latency(self):
        assert transfer_time([Flow((), 0.0)]) == 0.0


class TestRingAllReduce:
    def test_matches_aggregate_closed_form_on_rails(self):
        """Striped over all 4 rails, an uncontended inter-node ring
        reaches the node's aggregate bandwidth: the transfer part is the
        Equation-1 term over 4 x NIC."""
        topo = rail()
        size = 256 * MIB
        count = 4
        time = ring_allreduce_time(topo, one_per_node(topo, count), size,
                                   channels=4)
        transfer = flat_ring_lower_bound(4 * NIC, size, count)
        assert time > transfer
        assert time == pytest.approx(transfer, rel=0.05)  # latency is small

    def test_fewer_channels_are_slower(self):
        topo = rail()
        gpus = one_per_node(topo, 4)
        one = ring_allreduce_time(topo, gpus, 64 * MIB, channels=1)
        four = ring_allreduce_time(topo, gpus, 64 * MIB, channels=4)
        assert one > four

    def test_trivial_cases_are_free(self):
        topo = rail()
        assert ring_allreduce_time(topo, [gpu_id(0, 0)], MIB) == 0.0
        assert ring_allreduce_time(topo, one_per_node(topo, 4), 0.0) == 0.0

    def test_repeated_members_rejected(self):
        topo = rail()
        with pytest.raises(ConfigError):
            ring_allreduce_time(topo, [gpu_id(0, 0), gpu_id(0, 0)], MIB)

    def test_allgather_is_half_the_steps(self):
        topo = rail()
        gpus = one_per_node(topo, 4)
        ar = ring_allreduce_time(topo, gpus, 64 * MIB, channels=4)
        ag = ring_allgather_time(topo, gpus, 64 * MIB, channels=4)
        assert ag == pytest.approx(ar / 2)
        assert ring_reduce_scatter_time(topo, gpus, 64 * MIB,
                                        channels=4) == ag


class TestTreeAllReduce:
    def test_beats_ring_on_small_payloads(self):
        topo = rail(num_nodes=16)
        gpus = one_per_node(topo, 16)
        size = 64 * 1024  # latency-dominated
        assert tree_allreduce_time(topo, gpus, size, channels=4) < \
            ring_allreduce_time(topo, gpus, size, channels=4)

    def test_loses_to_ring_on_large_payloads(self):
        topo = rail(num_nodes=16)
        gpus = one_per_node(topo, 16)
        size = 512 * MIB  # bandwidth-dominated
        assert tree_allreduce_time(topo, gpus, size, channels=4) > \
            ring_allreduce_time(topo, gpus, size, channels=4)

    def test_two_members_is_one_exchange_up_and_down(self):
        topo = rail(num_nodes=2)
        gpus = one_per_node(topo, 2)
        time = tree_allreduce_time(topo, gpus, 4 * MIB, channels=1)
        path = topo.route(gpus[1], gpus[0])
        single = transfer_time([Flow(tuple(path), 4 * MIB)])
        assert time == pytest.approx(2 * single)


class TestHierarchicalAllReduce:
    INTRA = RingParameters(bus_bandwidth=230e9, base_latency=3e-6,
                           hop_latency=1e-6)

    def test_combines_intra_and_inter_phases(self):
        topo = rail(num_nodes=4)
        slots = [[gpu_id(n, s) for s in range(8)] for n in range(4)]
        size = 128 * MIB
        total = hierarchical_allreduce_time(topo, slots, size,
                                            intra_ring=self.INTRA)
        intra = (self.INTRA.reduce_scatter_time(size, 8)
                 + self.INTRA.allgather_time(size, 8))
        assert total > intra
        assert total > flat_ring_lower_bound(4 * NIC, size, 4)

    def test_slot_rings_share_rails(self):
        """8 slots over 4 rails: each rail carries two concurrent rings,
        so the inter phase still moves S total per node at aggregate
        speed (2 rings x half bandwidth each)."""
        topo = rail(num_nodes=4)
        full = [[gpu_id(n, s) for s in range(8)] for n in range(4)]
        half = [[gpu_id(n, s) for s in range(4)] for n in range(4)]
        size = 128 * MIB
        t_full = hierarchical_allreduce_time(topo, full, size,
                                             intra_ring=self.INTRA)
        t_half = hierarchical_allreduce_time(topo, half, size,
                                             intra_ring=self.INTRA)
        # Same inter-phase wire time either way; only intra ring length
        # differs, so the two are close but not equal.
        assert t_full != t_half
        assert t_full == pytest.approx(t_half, rel=0.2)

    def test_rejects_single_node_groups(self):
        topo = rail(num_nodes=2)
        with pytest.raises(ConfigError):
            hierarchical_allreduce_time(topo, [[gpu_id(0, 0), gpu_id(0, 1)]],
                                        MIB, intra_ring=self.INTRA)

    def test_ragged_slots_are_costed_not_padded(self):
        """A group that does not divide across its nodes keeps its true
        member count: the extra slot's ring just spans fewer nodes."""
        topo = rail(num_nodes=2)
        ragged = hierarchical_allreduce_time(
            topo, [[gpu_id(0, 0), gpu_id(0, 1)], [gpu_id(1, 0)]],
            64 * MIB, intra_ring=self.INTRA)
        even = hierarchical_allreduce_time(
            topo, [[gpu_id(0, 0), gpu_id(0, 1)],
                   [gpu_id(1, 0), gpu_id(1, 1)]],
            64 * MIB, intra_ring=self.INTRA)
        assert 0.0 < ragged <= even

    def test_rejects_empty_slot_lists(self):
        topo = rail(num_nodes=2)
        with pytest.raises(ConfigError):
            hierarchical_allreduce_time(
                topo, [[gpu_id(0, 0), gpu_id(0, 1)], []],
                MIB, intra_ring=self.INTRA)

    def test_intra_interference_scales_intra_phases_only(self):
        topo = rail(num_nodes=4)
        slots = [[gpu_id(n, s) for s in range(8)] for n in range(4)]
        size = 128 * MIB
        quiet = hierarchical_allreduce_time(topo, slots, size,
                                            intra_ring=self.INTRA)
        noisy = hierarchical_allreduce_time(topo, slots, size,
                                            intra_ring=self.INTRA,
                                            intra_interference=1.3)
        intra = (self.INTRA.reduce_scatter_time(size, 8)
                 + self.INTRA.allgather_time(size, 8))
        assert noisy == pytest.approx(quiet + 0.3 * intra)
