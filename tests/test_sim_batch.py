"""Batched-engine equivalence: every simulate_retimed_batch column is
bit-identical to a scalar simulate_retimed replay of that column.

The batched sweep groups replay positions into chunks and propagates all
N duration columns together, but each column still performs the exact
float operations of the scalar engine: one IEEE-754 add per finish time
and exact, order-independent maxima everywhere tasks combine. These
tests pin that contract — same makespan bits, same per-device timelines,
same busy accounting (values and dict insertion order) — over randomized
DAGs (seeded generators plus hypothesis), real builder structures, awkward
input layouts (N=0, N=1, strided views, Fortran order, float32), and the
batched consumer surfaces (``VTrain.predict_batch`` and the DSE
explorer's ``evaluate_batch``).
"""

import random

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config.parallelism import ParallelismConfig
from repro.config.system import single_node
from repro.dse.explorer import DesignSpaceExplorer
from repro.errors import SimulationError
from repro.graph.structure import ALL_KINDS, COMM_STREAM, COMPUTE_STREAM, GraphAssembler
from repro.sim.engine import simulate_retimed, simulate_retimed_batch
from repro.sim.estimator import VTrain

STREAMS = (COMPUTE_STREAM, COMM_STREAM)


def random_structure(seed):
    """A compiled random DAG (chain edges + random back-deps)."""
    rng = random.Random(seed)
    num_devices = rng.randint(1, 4)
    num_tasks = rng.randint(1, 60)
    asm = GraphAssembler()
    for index in range(num_tasks):
        deps = ()
        if index and rng.random() < 0.6:
            deps = tuple(rng.sample(range(index), rng.randint(1, min(3, index))))
        duration = rng.choice([0.0, rng.random(), rng.random() * 10.0])
        asm.add(
            rng.randrange(num_devices),
            rng.choice(STREAMS),
            duration,
            rng.choice(ALL_KINDS),
            f"t{index}",
            deps=deps,
            chain=rng.random() < 0.7,
        )
    return asm.finish(num_devices=num_devices).compiled()


def random_matrix(structure, seed, batch_size):
    """Per-column random retimings of the structure's build durations."""
    rng = np.random.default_rng(seed)
    base = np.asarray(structure.duration, dtype=np.float64)
    return base[:, None] * rng.uniform(0.0, 2.0, (structure.num_tasks, batch_size))


def assert_columns_bit_identical(structure, matrix):
    """Batched replay vs one scalar replay per column, field for field."""
    matrix = np.asarray(matrix, dtype=np.float64)
    batch = simulate_retimed_batch(structure, matrix)
    assert len(batch) == matrix.shape[1]
    assert batch.makespans.shape == (matrix.shape[1],)
    assert batch.iteration_times() == batch.makespans.tolist()
    for col in range(matrix.shape[1]):
        scalar = simulate_retimed(structure, np.ascontiguousarray(matrix[:, col]))
        result = batch.column(col)
        assert result.iteration_time == scalar.iteration_time
        assert result.num_tasks == scalar.num_tasks
        assert result.device_timeline == scalar.device_timeline
        assert list(result.device_timeline) == list(scalar.device_timeline)
        assert result.device_busy == scalar.device_busy
        for device in scalar.device_busy:
            assert list(result.device_busy[device]) == list(scalar.device_busy[device])
        assert result.events is None
        assert result.metadata == scalar.metadata


class TestRandomizedDags:
    @pytest.mark.parametrize("seed", range(10))
    def test_seeded_random_graphs(self, seed):
        structure = random_structure(seed)
        assert_columns_bit_identical(structure, random_matrix(structure, seed, 7))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(10, 40))
    def test_seeded_random_graphs_exhaustive(self, seed):
        structure = random_structure(seed)
        assert_columns_bit_identical(structure, random_matrix(structure, seed, 16))

    @given(data=st.data())
    def test_hypothesis_random_graphs(self, data):
        num_devices = data.draw(st.integers(1, 3), label="num_devices")
        num_tasks = data.draw(st.integers(1, 20), label="num_tasks")
        asm = GraphAssembler()
        for index in range(num_tasks):
            deps = ()
            if index:
                drawn = data.draw(st.sets(st.integers(0, index - 1), max_size=3), label=f"d{index}")
                deps = tuple(drawn)
            asm.add(
                data.draw(st.integers(0, num_devices - 1), label=f"dev{index}"),
                data.draw(st.sampled_from(STREAMS), label=f"stream{index}"),
                data.draw(st.floats(0.0, 100.0, allow_nan=False), label=f"dur{index}"),
                data.draw(st.sampled_from(ALL_KINDS), label=f"kind{index}"),
                f"t{index}",
                deps=deps,
                chain=data.draw(st.booleans(), label=f"chain{index}"),
            )
        structure = asm.finish(num_devices=num_devices).compiled()
        batch_size = data.draw(st.integers(0, 5), label="batch_size")
        cells = [
            data.draw(st.floats(0.0, 100.0, allow_nan=False), label=f"cell{index}")
            for index in range(num_tasks * batch_size)
        ]
        matrix = np.asarray(cells, dtype=np.float64).reshape(num_tasks, batch_size)
        assert_columns_bit_identical(structure, matrix)


class TestInputLayouts:
    def test_batch_of_zero_columns(self):
        structure = random_structure(3)
        batch = simulate_retimed_batch(structure, np.empty((structure.num_tasks, 0)))
        assert len(batch) == 0
        assert batch.makespans.shape == (0,)
        assert batch.iteration_times() == []
        assert batch.device_timeline.shape == (structure.num_devices, 0)

    def test_batch_of_one_column(self):
        structure = random_structure(4)
        matrix = random_matrix(structure, 4, 1)
        assert_columns_bit_identical(structure, matrix)

    def test_non_contiguous_view_matches_contiguous(self):
        structure = random_structure(5)
        wide = random_matrix(structure, 5, 12)
        strided = simulate_retimed_batch(structure, wide[:, ::3])
        contiguous = simulate_retimed_batch(structure, np.ascontiguousarray(wide[:, ::3]))
        assert strided.makespans.tolist() == contiguous.makespans.tolist()
        assert_columns_bit_identical(structure, wide[:, ::3])

    def test_fortran_order_matches_c_order(self):
        structure = random_structure(6)
        matrix = random_matrix(structure, 6, 5)
        fortran = simulate_retimed_batch(structure, np.asfortranarray(matrix))
        c_order = simulate_retimed_batch(structure, matrix)
        assert fortran.makespans.tolist() == c_order.makespans.tolist()

    def test_float32_input_is_upcast_once(self):
        """A float32 matrix replays exactly like its float64 upcast."""
        structure = random_structure(7)
        matrix32 = random_matrix(structure, 7, 6).astype(np.float32)
        batch32 = simulate_retimed_batch(structure, matrix32)
        batch64 = simulate_retimed_batch(structure, matrix32.astype(np.float64))
        assert batch32.makespans.tolist() == batch64.makespans.tolist()

    def test_nested_list_input(self):
        structure = random_structure(8)
        matrix = random_matrix(structure, 8, 3)
        from_list = simulate_retimed_batch(structure, matrix.tolist())
        from_array = simulate_retimed_batch(structure, matrix)
        assert from_list.makespans.tolist() == from_array.makespans.tolist()


class TestValidation:
    def test_wrong_row_count_rejected(self):
        structure = random_structure(9)
        matrix = random_matrix(structure, 9, 2)
        with pytest.raises(SimulationError, match="shape"):
            simulate_retimed_batch(structure, matrix[:-1])

    def test_wrong_rank_rejected(self):
        structure = random_structure(9)
        with pytest.raises(SimulationError, match="shape"):
            simulate_retimed_batch(structure, np.zeros(structure.num_tasks))

    def test_negative_durations_rejected(self):
        structure = random_structure(9)
        matrix = random_matrix(structure, 9, 2)
        matrix[0, 1] = -1.0
        with pytest.raises(SimulationError, match="non-negative"):
            simulate_retimed_batch(structure, matrix)

    def test_empty_structure_rejected(self):
        structure = GraphAssembler().finish(num_devices=0).compiled()
        with pytest.raises(SimulationError, match="empty"):
            simulate_retimed_batch(structure, np.empty((0, 4)))


class TestBuilderStructures:
    def test_builder_structure_columns(self, tiny_model, training):
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2)
        prepared = vtrain.prepare(tiny_model, plan, training)
        matrix = random_matrix(prepared.structure, 11, 9)
        assert_columns_bit_identical(prepared.structure, matrix)

    def test_column_metadata_override(self, tiny_model, training):
        vtrain = VTrain(single_node())
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2)
        prepared = vtrain.prepare(tiny_model, plan, training)
        matrix = np.asarray(prepared.durations, dtype=np.float64)[:, None]
        batch = simulate_retimed_batch(prepared.structure, matrix)
        scalar = simulate_retimed(
            prepared.structure, prepared.durations, metadata=prepared.metadata
        )
        assert batch.column(0, metadata=prepared.metadata).metadata == scalar.metadata


class TestPredictBatch:
    def plans(self):
        plans = [
            ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=m)
            for m in (1, 2, 4, 8)
        ]
        plans.append(ParallelismConfig(tensor=4, data=2, pipeline=1, micro_batch_size=2))
        return plans

    def test_predict_batch_matches_scalar_predict(self, tiny_model, training):
        scalar_sim = VTrain(single_node())
        scalar = [scalar_sim.predict(tiny_model, plan, training) for plan in self.plans()]
        batch_sim = VTrain(single_node())
        batched = batch_sim.predict_batch(tiny_model, self.plans(), training)
        assert batch_sim.num_predictions == len(self.plans())
        for one, other in zip(scalar, batched):
            assert one.iteration_time == other.iteration_time
            assert one.gpu_compute_utilization == other.gpu_compute_utilization
            assert one.memory_per_gpu == other.memory_per_gpu
            assert one.simulation.device_timeline == other.simulation.device_timeline
            assert one.simulation.device_busy == other.simulation.device_busy

    def test_predict_prepared_groups_shared_structures(self, tiny_model, training):
        """Plans resolving to one cached structure replay as one batch."""
        vtrain = VTrain(single_node())
        entries = []
        for plan in self.plans():
            footprint, prepared = vtrain.prepare_checked(tiny_model, plan, training)
            entries.append((plan, footprint, prepared))
        predictions = vtrain.predict_prepared(tiny_model, training, entries)
        assert len(predictions) == len(entries)
        for (plan, _, _), prediction in zip(entries, predictions):
            reference = VTrain(single_node()).predict(tiny_model, plan, training)
            assert prediction.iteration_time == reference.iteration_time


class TestEvaluateBatch:
    def test_evaluate_batch_matches_scalar_evaluate(self, tiny_model, training):
        plans = [
            ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=m)
            for m in (1, 2, 4)
        ]
        plans.append(ParallelismConfig(tensor=8, data=8, pipeline=8))  # infeasible: 512 GPUs
        scalar_explorer = DesignSpaceExplorer(tiny_model, training)
        scalar = [scalar_explorer.evaluate(plan) for plan in plans]
        batch_explorer = DesignSpaceExplorer(tiny_model, training)
        batched = batch_explorer.evaluate_batch(plans)
        assert batched == scalar

    def test_explore_is_bit_identical_to_per_plan_evaluate(self, tiny_model, training):
        explorer = DesignSpaceExplorer(tiny_model, training)
        result = explorer.explore(max_gpus=8)
        reference = DesignSpaceExplorer(tiny_model, training)
        for point in result.points:
            assert point == reference.evaluate(point.plan)
