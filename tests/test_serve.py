"""Tests for ``repro.serve`` — the prediction daemon and its guarantees.

The load-bearing claims under test:

* served predictions are **bit-identical** to direct
  :meth:`VTrain.predict` calls, on every serving path;
* N identical concurrent predicts run **exactly one** simulation
  (in-flight dedup for the concurrent window, the prediction cache for
  stragglers);
* concurrent ``VTrain.predict`` on a warm structure cache stays
  bit-identical to serial with exact hit counters (the thread-safety
  satellite of the serving PR);
* the JSON-RPC transports (TCP and stdio) round-trip results and
  streamed progress without altering them.
"""

from __future__ import annotations

import io
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.config.description import InputDescription
from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.dse.cache import PredictionCache, fingerprint
from repro.dse.explorer import DesignPoint
from repro.errors import ReproError
from repro.graph.builder import (Granularity, clear_structure_cache,
                                 structure_cache_get, structure_cache_put,
                                 structure_cache_stats)
from repro.serve import (PredictionService, RemoteError, ServeClient,
                         ServeDaemon, protocol, serve_stdio)
from repro.sim.estimator import VTrain


@pytest.fixture(autouse=True)
def clean_slate():
    """Serve tests assert on process-wide state (structure cache,
    metric counters); start and leave each test clean."""
    clear_structure_cache()
    obs.reset()
    yield
    clear_structure_cache()
    obs.reset()


@pytest.fixture
def service():
    svc = PredictionService(batch_window_s=0.001)
    yield svc
    svc.close()


def tiny_description(*, tensor: int = 2, data: int = 2, pipeline: int = 2,
                     micro_batch_size: int = 2) -> InputDescription:
    model = ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                        num_heads=8, vocab_size=32_000, name="tiny")
    plan = ParallelismConfig(tensor=tensor, data=data, pipeline=pipeline,
                             micro_batch_size=micro_batch_size)
    return InputDescription(model=model, system=single_node(), plan=plan,
                            training=TrainingConfig(global_batch_size=16))


# ---------------------------------------------------------------------------
# Protocol framing
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = protocol.request(7, "predict", {"x": [1.5, "a"]})
        assert protocol.decode_line(protocol.encode(message)[:-1]) == message

    def test_float_repr_survives_the_wire(self):
        value = 0.1 + 0.2  # not exactly 0.3
        frame = protocol.encode(protocol.response(1, {"t": value}))
        assert protocol.decode_line(frame[:-1])["result"]["t"] == value

    def test_notification_has_no_id(self):
        note = protocol.notification("dse.progress", {"done": 1})
        assert "id" not in note and note["method"] == "dse.progress"

    def test_read_message_clean_eof_returns_none(self):
        assert protocol.read_message(io.BytesIO(b"")) is None

    def test_read_message_rejects_truncated_frame(self):
        with pytest.raises(protocol.ProtocolError, match="mid-message"):
            protocol.read_message(io.BytesIO(b'{"jsonrpc":"2.0"'))

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError, match="object"):
            protocol.decode_line(b"[1,2]")

    def test_parse_request_rejects_missing_method(self):
        with pytest.raises(protocol.ProtocolError, match="method"):
            protocol.parse_request({"jsonrpc": "2.0", "id": 1})

    def test_stream_of_messages(self):
        stream = io.BytesIO(protocol.encode(protocol.request(1, "ping"))
                            + protocol.encode(protocol.request(2, "ping")))
        first = protocol.read_message(stream)
        second = protocol.read_message(stream)
        assert (first["id"], second["id"]) == (1, 2)
        assert protocol.read_message(stream) is None


# ---------------------------------------------------------------------------
# Service semantics (no transport)
# ---------------------------------------------------------------------------
class TestServiceBitIdentical:
    def test_served_equals_direct_vtrain(self, service):
        description = tiny_description()
        direct = VTrain(description.system).predict(
            description.model, description.plan, description.training)
        served = service.predict({"description": description.to_dict()})
        assert served["iteration_time"] == direct.iteration_time
        assert (served["gpu_compute_utilization"]
                == direct.gpu_compute_utilization)
        assert served["memory_per_gpu"] == direct.memory_per_gpu
        assert served["num_gpus"] == description.plan.total_gpus

    def test_cache_path_is_bit_identical_to_computed(self, service):
        description = tiny_description()
        params = {"description": description.to_dict()}
        computed = service.predict(params)
        cached = service.predict(params)
        assert computed["served"]["source"] == "computed"
        assert cached["served"]["source"] == "cache"
        computed.pop("served")
        cached.pop("served")
        assert cached == computed

    def test_stage_granularity_matches_direct(self, service):
        description = tiny_description()
        direct = VTrain(description.system,
                        granularity=Granularity.STAGE).predict(
            description.model, description.plan, description.training)
        served = service.predict({"description": description.to_dict(),
                                  "granularity": "stage"})
        assert served["iteration_time"] == direct.iteration_time

    def test_preset_request_resolves_zoo_key(self, service):
        served = service.predict({"preset": "megatron-1.7b",
                                  "granularity": "stage"})
        assert served["iteration_time"] > 0
        assert served["num_gpus"] == 32


class TestServiceDedup:
    def test_n_identical_concurrent_predicts_run_one_simulation(
            self, service):
        """The acceptance criterion: the dedup counter is pinned.

        Whatever the interleaving, the total across serving sources is
        exactly N with one leader — and the resident simulator counts
        exactly one simulation.
        """
        description = tiny_description()
        params = {"description": description.to_dict()}
        n = 8
        results: list[dict] = [None] * n
        errors: list[BaseException] = []
        barrier = threading.Barrier(n)

        def worker(slot: int) -> None:
            try:
                barrier.wait()
                results[slot] = service.predict(params)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Exactly one simulation ran, no matter how threads interleaved.
        assert [v.num_predictions
                for v in service._vtrains.values()] == [1]
        stats = service.stats()["dedup"]
        assert stats["leaders"] == 1
        assert stats["coalesced"] + stats["cache_served"] == n - 1
        # And every caller saw the same bits.
        payloads = [{k: v for k, v in r.items() if k != "served"}
                    for r in results]
        assert all(payload == payloads[0] for payload in payloads)

    def test_sequential_repeats_hit_the_cache_not_the_simulator(
            self, service):
        params = {"description": tiny_description().to_dict()}
        service.predict(params)
        for _ in range(3):
            assert service.predict(params)["served"]["source"] == "cache"
        assert [v.num_predictions
                for v in service._vtrains.values()] == [1]

    def test_distinct_plans_do_not_coalesce(self, service):
        first = service.predict(
            {"description": tiny_description(tensor=2, data=2, pipeline=2)
             .to_dict()})
        second = service.predict(
            {"description": tiny_description(tensor=1, data=4, pipeline=2)
             .to_dict()})
        assert first["iteration_time"] != second["iteration_time"]
        assert service.stats()["dedup"]["leaders"] == 2


class TestServiceBatching:
    def test_predict_batch_preserves_order_and_matches_direct(
            self, service):
        descriptions = [tiny_description(tensor=2, data=2, pipeline=2),
                        tiny_description(tensor=1, data=4, pipeline=2),
                        tiny_description(tensor=4, data=2, pipeline=1)]
        rows = service.predict_batch(
            {"requests": [{"description": d.to_dict()}
                          for d in descriptions]})["results"]
        assert len(rows) == 3
        vtrain = VTrain(descriptions[0].system)
        for description, row in zip(descriptions, rows):
            direct = vtrain.predict(description.model, description.plan,
                                    description.training)
            assert row["result"]["iteration_time"] == direct.iteration_time
            assert row["result"]["memory_per_gpu"] == direct.memory_per_gpu

    def test_duplicate_entries_in_one_batch_coalesce(self, service):
        params = {"description": tiny_description().to_dict()}
        rows = service.predict_batch(
            {"requests": [params, params, params]})["results"]
        assert [v.num_predictions
                for v in service._vtrains.values()] == [1]
        payloads = [{k: v for k, v in row["result"].items()
                     if k != "served"} for row in rows]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_infeasible_entry_fails_alone(self, service):
        good = {"description": tiny_description().to_dict()}
        bad = {"description":
               tiny_description(tensor=2, data=2, pipeline=3).to_dict()}
        rows = service.predict_batch({"requests": [good, bad]})["results"]
        assert "result" in rows[0]
        assert rows[1]["error"]["code"] == protocol.INFEASIBLE

    def test_batched_jobs_flow_through_batch_counters(self, service):
        descriptions = [tiny_description(tensor=2, data=2, pipeline=2),
                        tiny_description(tensor=1, data=4, pipeline=2)]
        service.predict_batch(
            {"requests": [{"description": d.to_dict()}
                          for d in descriptions]})
        batch = service.stats()["batch"]
        assert batch["jobs"] == 2
        assert batch["flushes"] >= 1


class TestServiceErrors:
    def test_infeasible_plan_raises_like_direct_predict(self, service):
        from repro.errors import InfeasibleConfigError
        bad = tiny_description(tensor=2, data=2, pipeline=3)  # 12 != 8
        with pytest.raises(InfeasibleConfigError):
            service.predict({"description": bad.to_dict()})

    def test_needs_exactly_one_of_description_or_preset(self, service):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="exactly one"):
            service.predict({})
        with pytest.raises(ConfigError, match="exactly one"):
            service.predict({"preset": "gpt3",
                             "description": tiny_description().to_dict()})

    def test_unknown_preset_rejected(self, service):
        with pytest.raises(ReproError, match="unknown preset"):
            service.predict({"preset": "definitely-not-a-model"})

    def test_closed_service_refuses_admission(self):
        svc = PredictionService(batch_window_s=0.0)
        svc.close()
        with pytest.raises(ReproError, match="shutting down"):
            svc.predict({"description": tiny_description().to_dict()})


class TestDispatch:
    def test_ping(self, service):
        response, shutdown = service.dispatch(
            protocol.request(1, "ping"), lambda note: None)
        assert response["result"] == {"ok": True} and not shutdown

    def test_unknown_method_maps_to_method_not_found(self, service):
        response, _ = service.dispatch(
            protocol.request(2, "frobnicate"), lambda note: None)
        assert response["error"]["code"] == protocol.METHOD_NOT_FOUND

    def test_malformed_request_maps_to_invalid_request(self, service):
        response, _ = service.dispatch({"jsonrpc": "2.0", "id": 3},
                                       lambda note: None)
        assert response["error"]["code"] == protocol.INVALID_REQUEST

    def test_infeasible_maps_to_infeasible_code(self, service):
        bad = tiny_description(tensor=2, data=2, pipeline=3)
        response, _ = service.dispatch(
            protocol.request(4, "predict",
                             {"description": bad.to_dict()}),
            lambda note: None)
        assert response["error"]["code"] == protocol.INFEASIBLE

    def test_shutdown_sets_the_flag(self, service):
        response, shutdown = service.dispatch(
            protocol.request(5, "shutdown"), lambda note: None)
        assert response["result"] == {"ok": True} and shutdown

    def test_dispatch_never_raises_on_internal_error(self, service):
        response, _ = service.dispatch(
            protocol.request(6, "dse", {"model": "megatron-1.7b",
                                        "num_gpus": "not-a-number"}),
            lambda note: None)
        assert response["error"]["code"] == protocol.INTERNAL_ERROR

    def test_stats_shape(self, service):
        service.predict({"description": tiny_description().to_dict()})
        response, _ = service.dispatch(protocol.request(7, "stats"),
                                       lambda note: None)
        stats = response["result"]
        assert stats["requests"]["total"] >= 1
        assert {"p50", "p99"} <= set(stats["latency"]["predict_s"])
        assert {"leaders", "coalesced",
                "cache_served"} <= set(stats["dedup"])
        assert stats["resident_simulators"] == 1
        assert stats["structure_cache"]["entries"] >= 1


# ---------------------------------------------------------------------------
# TCP daemon + client
# ---------------------------------------------------------------------------
@pytest.fixture
def daemon(service):
    server = ServeDaemon(service, port=0)
    server.start()
    yield server
    server.stop()


def connect(daemon: ServeDaemon) -> ServeClient:
    host, port = daemon.address
    return ServeClient.connect(host, port, timeout=5.0)


class TestDaemon:
    def test_ping_and_stats_round_trip(self, daemon):
        with connect(daemon) as client:
            assert client.ping()
            assert client.stats()["requests"]["total"] >= 1

    def test_served_over_tcp_is_bit_identical(self, daemon):
        description = tiny_description()
        direct = VTrain(description.system).predict(
            description.model, description.plan, description.training)
        with connect(daemon) as client:
            served = client.predict(description=description.to_dict())
        assert served["iteration_time"] == direct.iteration_time
        assert served["memory_per_gpu"] == direct.memory_per_gpu

    def test_concurrent_clients_share_one_simulation(self, daemon,
                                                     service):
        description = tiny_description()
        n = 6
        results: list[dict] = [None] * n
        barrier = threading.Barrier(n)

        def worker(slot: int) -> None:
            with connect(daemon) as client:
                barrier.wait()
                results[slot] = client.predict(
                    description=description.to_dict())

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [v.num_predictions
                for v in service._vtrains.values()] == [1]
        payloads = [{k: v for k, v in r.items() if k != "served"}
                    for r in results]
        assert all(payload == payloads[0] for payload in payloads)

    def test_remote_error_carries_infeasible_code(self, daemon):
        bad = tiny_description(tensor=2, data=2, pipeline=3)
        with connect(daemon) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.predict(description=bad.to_dict())
        assert excinfo.value.code == protocol.INFEASIBLE

    def test_dse_streams_progress_and_reuses_the_cache(self, daemon,
                                                       service):
        params = {"model": "megatron-1.7b", "num_gpus": 8,
                  "max_tensor": 4, "max_data": 8, "max_pipeline": 4,
                  "micro_batches": [1, 2], "granularity": "stage"}
        events: list[dict] = []
        with connect(daemon) as client:
            first = client.dse(params, on_progress=events.append)
            second = client.dse(params)
        assert first["num_plans"] > 0
        assert events and events[-1]["done"] == events[-1]["total"]
        assert second == first  # replayed fully from the shared cache
        assert service.cache.stats["hits"] >= first["num_plans"]

    def test_shutdown_stops_the_daemon(self, service):
        server = ServeDaemon(service, port=0)
        server.start()
        client = connect(server)
        client.shutdown()
        # The accept loop winds down; stop() (idempotent) must not hang.
        server.stop()


# ---------------------------------------------------------------------------
# stdio transport
# ---------------------------------------------------------------------------
class TestStdio:
    def test_serve_stdio_round_trip_in_memory(self, service):
        stdin = io.BytesIO(
            protocol.encode(protocol.request(1, "ping"))
            + protocol.encode(protocol.request(
                2, "predict",
                {"description": tiny_description().to_dict()}))
            + protocol.encode(protocol.request(3, "shutdown"))
            + protocol.encode(protocol.request(4, "ping")))
        stdout = io.BytesIO()
        serve_stdio(service, stdin, stdout)
        stdout.seek(0)
        replies = []
        while (message := protocol.read_message(stdout)) is not None:
            replies.append(message)
        # The shutdown reply is the last one; request 4 is never read.
        assert [m["id"] for m in replies] == [1, 2, 3]
        assert replies[1]["result"]["iteration_time"] > 0

    def test_spawned_subprocess_serves_and_exits_cleanly(self):
        client, process = ServeClient.spawn()
        try:
            assert client.ping()
            served = client.predict(
                description=tiny_description().to_dict(),
                granularity="stage")
            assert served["iteration_time"] > 0
            client.shutdown()
            assert process.wait(timeout=30) == 0
        finally:
            client.close()
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


# ---------------------------------------------------------------------------
# Thread-safety satellites: warm concurrent VTrain and the shared caches
# ---------------------------------------------------------------------------
class TestConcurrentVTrain:
    def test_warm_concurrent_predicts_are_bit_identical_with_exact_counters(
            self):
        """Concurrent ``VTrain.predict`` on a warm structure cache: every
        thread sees the serial answer, and the hit counters are exact
        under contention (the ``int +=`` races the lock now prevents)."""
        description = tiny_description()
        vtrain = VTrain(description.system)
        serial = vtrain.predict(description.model, description.plan,
                                description.training)
        assert vtrain.structure_cache_misses == 1
        threads_n, calls_each = 4, 5
        results: list[list] = [[] for _ in range(threads_n)]
        barrier = threading.Barrier(threads_n)

        def worker(slot: int) -> None:
            barrier.wait()
            for _ in range(calls_each):
                results[slot].append(vtrain.predict(
                    description.model, description.plan,
                    description.training))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for bucket in results:
            for prediction in bucket:
                assert prediction.iteration_time == serial.iteration_time
                assert prediction.memory_per_gpu == serial.memory_per_gpu
        total = threads_n * calls_each
        assert vtrain.num_predictions == total + 1
        assert vtrain.structure_cache_hits == total
        assert vtrain.structure_cache_misses == 1

    def test_cold_concurrent_predicts_agree(self):
        """No warmup: racing builders may each construct the structure,
        but every thread's answer is still the same bits and the
        counters add up."""
        description = tiny_description()
        vtrain = VTrain(description.system)
        n = 4
        results: list = [None] * n
        barrier = threading.Barrier(n)

        def worker(slot: int) -> None:
            barrier.wait()
            results[slot] = vtrain.predict(
                description.model, description.plan, description.training)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r.iteration_time == results[0].iteration_time
                   for r in results)
        assert vtrain.num_predictions == n
        assert (vtrain.structure_cache_hits
                + vtrain.structure_cache_misses) == n


class _StubStructure:
    """Just enough of a GraphStructure for the LRU's task budget."""

    num_tasks = 1

    def __init__(self, key: str) -> None:
        self.key = key


class TestConcurrentStructureCache:
    def test_concurrent_put_get_keeps_stats_consistent(self):
        """Hammer the process-wide cache from several threads; the LRU
        bookkeeping must stay coherent (no lost entries, stats add up)."""
        n_threads, n_keys, rounds = 4, 6, 50
        barrier = threading.Barrier(n_threads)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(rounds):
                    key = f"serve-test-{(seed + i) % n_keys}"
                    if structure_cache_get(key) is None:
                        structure_cache_put(key, _StubStructure(key))
                    cached = structure_cache_get(key)
                    assert cached is not None and cached.key == key
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = structure_cache_stats()
        assert stats["entries"] == n_keys
        assert stats["hits"] + stats["misses"] == 2 * n_threads * rounds


class TestConcurrentPredictionCache:
    @staticmethod
    def _point(key: str) -> DesignPoint:
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1)
        return DesignPoint(plan=plan, feasible=True,
                           iteration_time=float(len(key)),
                           utilization=0.5, memory_gib=1.0)

    def test_concurrent_put_get_and_merge(self):
        cache = PredictionCache()
        other = PredictionCache()
        for i in range(8):
            other.put(f"pre-{i}", self._point(f"pre-{i}"))
        n = 4
        barrier = threading.Barrier(n)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(40):
                    key = f"k-{(seed * 7 + i) % 10}"
                    cache.put(key, self._point(key))
                    found = cache.get(key)
                    if found is not None:
                        assert found.iteration_time == float(len(key))
                    cache.merge(other)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) == 10 + 8
        stats = cache.stats
        assert stats["hits"] + stats["misses"] == n * 40

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]),
                  st.integers(min_value=0, max_value=4)),
        min_size=1, max_size=30))
    def test_interleaved_ops_from_two_threads_preserve_entries(self, ops):
        """Hypothesis interleaving: split one op sequence across two
        racing threads; whatever the schedule, every key that anyone
        ``put`` is present with exactly its own payload, and ``get``
        never returns a foreign point."""
        cache = PredictionCache()
        half = len(ops) // 2
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []
        put_keys: set[str] = {f"key-{i}" for op, i in ops if op == "put"}

        def run(sequence) -> None:
            try:
                barrier.wait()
                for op, i in sequence:
                    key = f"key-{i}"
                    if op == "put":
                        cache.put(key, self._point(key))
                    else:
                        found = cache.get(key)
                        if found is not None:
                            assert (found.iteration_time
                                    == float(len(key)))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(ops[:half],)),
                   threading.Thread(target=run, args=(ops[half:],))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) == len(put_keys)
        for key in put_keys:
            assert cache.get(key).iteration_time == float(len(key))


class TestServiceCacheIntegration:
    def test_service_populates_the_prediction_cache_it_was_given(self):
        cache = PredictionCache()
        svc = PredictionService(cache=cache, batch_window_s=0.0)
        try:
            description = tiny_description()
            svc.predict({"description": description.to_dict()})
            key = fingerprint(description.model, description.plan,
                              description.training, description.system,
                              svc.default_granularity)
            assert key in cache
            point = cache.get(key)
            assert point is not None and point.feasible
        finally:
            svc.close()

    def test_preloaded_cache_serves_without_any_simulation(self):
        description = tiny_description()
        warm = PredictionService(batch_window_s=0.0)
        try:
            expected = warm.predict({"description": description.to_dict()})
        finally:
            warm.close()
        svc = PredictionService(cache=warm.cache, batch_window_s=0.0)
        try:
            served = svc.predict({"description": description.to_dict()})
            assert served["served"]["source"] == "cache"
            assert not svc._vtrains  # no simulator was even constructed
            served.pop("served")
            expected.pop("served")
            assert served == expected
        finally:
            svc.close()


class TestInferenceServing:
    """The workload envelope: `predict` with a serialised
    InferenceWorkload runs the serving path and everything else is
    untouched."""

    def workload_dict(self) -> dict:
        return {"kind": "inference", "batch_size": 8, "prompt_len": 128,
                "gen_len": 64}

    def test_served_equals_direct_predict_inference(self, service):
        from repro.workload import InferenceWorkload
        description = tiny_description()
        payload = service.predict({"description": description.to_dict(),
                                   "workload": self.workload_dict()})
        vtrain = VTrain(description.system,
                        granularity=service.default_granularity)
        direct = vtrain.predict_inference(
            description.model, description.plan,
            InferenceWorkload.from_dict(self.workload_dict()))
        assert payload["workload"] == "inference"
        assert payload["ttft_s"] == direct.time_to_first_token
        assert payload["tpot_s"] == direct.time_per_output_token
        assert payload["tokens_per_s"] == direct.tokens_per_second
        assert payload["num_replicas"] == description.plan.data

    def test_repeat_is_served_from_cache(self, service):
        description = tiny_description()
        request = {"description": description.to_dict(),
                   "workload": self.workload_dict()}
        first = service.predict(request)
        second = service.predict(request)
        assert first["served"]["source"] == "computed"
        assert second["served"]["source"] == "cache"
        for field in ("ttft_s", "tpot_s", "tokens_per_s"):
            assert second[field] == first[field]

    def test_training_and_inference_do_not_share_cache_rows(self, service):
        description = tiny_description()
        inference = service.predict({"description": description.to_dict(),
                                     "workload": self.workload_dict()})
        training = service.predict({"description": description.to_dict()})
        assert training["served"]["source"] == "computed"
        assert "ttft_s" not in training
        assert training["iteration_time"] != inference["tpot_s"]

    def test_explicit_training_envelope_is_the_classic_path(self, service):
        description = tiny_description()
        classic = service.predict({"description": description.to_dict()})
        tagged = service.predict({"description": description.to_dict(),
                                  "workload": {"kind": "training"}})
        assert tagged["served"]["source"] == "cache"
        assert tagged["iteration_time"] == classic["iteration_time"]

    def test_malformed_envelope_is_rejected(self, service):
        description = tiny_description()
        with pytest.raises(ReproError):
            service.predict({"description": description.to_dict(),
                             "workload": {"kind": "finetune"}})

    def test_envelope_rides_the_wire_unchanged(self):
        """Client → stdio transport → daemon: the envelope arrives
        intact and the serving payload comes back."""
        client_to_server = io.BytesIO()
        request = protocol.encode(protocol.request(
            1, "predict", {"description": tiny_description().to_dict(),
                           "workload": self.workload_dict()}))
        client_to_server.write(request)
        client_to_server.seek(0)
        server_to_client = io.BytesIO()
        service = PredictionService(batch_window_s=0.0)
        try:
            serve_stdio(service, client_to_server, server_to_client)
        finally:
            service.close()
        server_to_client.seek(0)
        reply = protocol.read_message(server_to_client)
        assert reply["result"]["workload"] == "inference"
        assert reply["result"]["tokens_per_s"] > 0
