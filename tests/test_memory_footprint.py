"""Unit tests for the per-GPU memory model and feasibility filter."""

import pytest

from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig)
from repro.config.presets import MT_NLG_530B, MT_NLG_TRAINING
from repro.errors import InfeasibleConfigError
from repro.memory.footprint import (activation_bytes_per_layer, check_memory,
                                    fits_in_memory, memory_footprint,
                                    stage_zero_params,
                                    suggest_schedule_for_memory)


class TestModelStates:
    def test_weights_are_fp16(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1)
        footprint = memory_footprint(tiny_model, plan, training)
        assert footprint.weights == pytest.approx(
            2.0 * stage_zero_params(tiny_model, plan))

    def test_zero1_divides_optimizer_by_d(self, tiny_model, training):
        base = ParallelismConfig(tensor=1, data=1, pipeline=1)
        sharded = ParallelismConfig(tensor=1, data=4, pipeline=1)
        full = memory_footprint(tiny_model, base, training,
                                zero1_sharding=True)
        split = memory_footprint(tiny_model, sharded, training,
                                 zero1_sharding=True)
        assert split.optimizer_states == pytest.approx(
            full.optimizer_states / 4)

    def test_without_zero1_optimizer_unsharded(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=4, pipeline=1)
        footprint = memory_footprint(tiny_model, plan, training,
                                     zero1_sharding=False)
        assert footprint.optimizer_states == pytest.approx(
            12.0 * stage_zero_params(tiny_model, plan))

    def test_tensor_parallel_shrinks_states(self, tiny_model, training):
        t1 = memory_footprint(tiny_model,
                              ParallelismConfig(tensor=1, data=1, pipeline=1),
                              training)
        t4 = memory_footprint(tiny_model,
                              ParallelismConfig(tensor=4, data=1, pipeline=1),
                              training)
        assert t4.model_states < t1.model_states / 3

    def test_pipeline_shrinks_states(self, tiny_model, training):
        p1 = memory_footprint(tiny_model,
                              ParallelismConfig(tensor=1, data=1, pipeline=1),
                              training)
        p4 = memory_footprint(tiny_model,
                              ParallelismConfig(tensor=1, data=1, pipeline=4),
                              training)
        assert p4.weights < p1.weights


class TestActivations:
    def _plan(self, recompute, m=1, schedule=PipelineSchedule.ONE_F_ONE_B):
        return ParallelismConfig(tensor=1, data=1, pipeline=1,
                                 micro_batch_size=m, recompute=recompute,
                                 schedule=schedule)

    def test_recompute_ordering(self, tiny_model):
        none = activation_bytes_per_layer(tiny_model,
                                          self._plan(RecomputeMode.NONE))
        selective = activation_bytes_per_layer(
            tiny_model, self._plan(RecomputeMode.SELECTIVE))
        full = activation_bytes_per_layer(tiny_model,
                                          self._plan(RecomputeMode.FULL))
        assert full < selective < none

    def test_full_recompute_stores_layer_input_only(self, tiny_model):
        plan = self._plan(RecomputeMode.FULL)
        expected = 2.0 * tiny_model.seq_length * tiny_model.hidden_size
        assert activation_bytes_per_layer(tiny_model, plan) == expected

    def test_micro_batch_scales_activations(self, tiny_model):
        one = activation_bytes_per_layer(tiny_model,
                                         self._plan(RecomputeMode.SELECTIVE))
        four = activation_bytes_per_layer(
            tiny_model, self._plan(RecomputeMode.SELECTIVE, m=4))
        assert four == pytest.approx(4 * one)

    def test_gpipe_holds_all_micro_batches(self, tiny_model, training):
        gpipe = memory_footprint(
            tiny_model, ParallelismConfig(
                tensor=1, data=1, pipeline=2, micro_batch_size=1,
                schedule=PipelineSchedule.GPIPE), training)
        one_f = memory_footprint(
            tiny_model, ParallelismConfig(
                tensor=1, data=1, pipeline=2, micro_batch_size=1,
                schedule=PipelineSchedule.ONE_F_ONE_B), training)
        assert gpipe.activations > one_f.activations


class TestEmbeddingOutputWithSequenceParallel:
    def test_sp_shards_the_stage0_embedding_output(self, training):
        """With SP the embedding output is scattered ``s/t`` before the
        first layer consumes it; the activation delta between SP on/off
        must therefore include the sharded (not full) embedding term."""
        from repro.config.model import ModelConfig
        from repro.memory.footprint import activation_bytes_per_layer
        model = ModelConfig(hidden_size=2048, num_layers=8, seq_length=2048,
                            num_heads=16, name="sp-embed")
        t = 8
        base = ParallelismConfig(tensor=t, data=1, pipeline=1,
                                 sequence_parallel=False)
        sp = base.replaced(sequence_parallel=True)
        batch = TrainingConfig(global_batch_size=1)
        embed_out = 2.0 * 1 * model.seq_length * model.hidden_size
        expected_sp = (model.num_layers
                       * activation_bytes_per_layer(model, sp)
                       + embed_out / t)
        footprint = memory_footprint(model, sp, batch)
        assert footprint.activations == pytest.approx(expected_sp)
        # Without SP the embedding output stays replicated.
        expected_base = (model.num_layers
                         * activation_bytes_per_layer(model, base)
                         + embed_out)
        assert memory_footprint(model, base, batch).activations == \
            pytest.approx(expected_base)

    def test_sp_fix_unlocks_feasibility(self):
        """A plan the old (replicated-embedding-output) model wrongly
        rejected: GPipe holds every micro-batch's embedding output in
        flight, so the un-sharded term alone overflowed the budget."""
        from repro.config.model import ModelConfig
        from repro.config.system import single_node
        from repro.memory.footprint import (USABLE_MEMORY_FRACTION,
                                            fits_in_memory)
        model = ModelConfig(hidden_size=8192, num_layers=8, seq_length=16384,
                            num_heads=64, name="long-ctx")
        plan = ParallelismConfig(tensor=8, data=1, pipeline=1,
                                 micro_batch_size=4, sequence_parallel=True,
                                 schedule=PipelineSchedule.GPIPE,
                                 recompute=RecomputeMode.FULL)
        training = TrainingConfig(global_batch_size=192)  # 48 micro-batches
        system = single_node()
        footprint = memory_footprint(model, plan, training)
        budget = system.gpu.memory_bytes * USABLE_MEMORY_FRACTION
        replication_delta = (48 * 2.0 * 4 * model.seq_length
                             * model.hidden_size * (1 - 1 / plan.tensor))
        assert footprint.total <= budget < footprint.total + replication_delta
        assert fits_in_memory(model, plan, training, system)


class TestLastStageFeasibility:
    def _tiny_seq_model(self):
        """b*s*h activations tiny against the last stage's extra params
        (final LayerNorm + untied LM-head copy)."""
        from repro.config.model import ModelConfig
        return ModelConfig(hidden_size=4096, num_layers=4, seq_length=8,
                           num_heads=8, vocab_size=512_000,
                           name="head-heavy")

    def test_peak_is_max_over_boundary_stages(self, training):
        from repro.memory.footprint import last_stage_params
        model = self._tiny_seq_model()
        plan = ParallelismConfig(tensor=1, data=1, pipeline=2,
                                 micro_batch_size=1)
        batch = TrainingConfig(global_batch_size=1)  # NMB=1: tiny windows
        footprint = memory_footprint(model, plan, batch)
        # The last stage dominates here: its params carry the untied
        # LM-head copy plus the final LayerNorm, while stage 0's only
        # edge is the (tiny, b*s=8) embedding-output activation.
        assert last_stage_params(model, plan) > stage_zero_params(model,
                                                                  plan)
        assert footprint.weights == pytest.approx(
            2.0 * last_stage_params(model, plan))

    def test_single_stage_pipeline_unchanged(self, tiny_model, training):
        """With p=1 the head is tied to the input embedding — the old
        stage-0 accounting must be reproduced exactly."""
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1)
        footprint = memory_footprint(tiny_model, plan, training)
        assert footprint.weights == pytest.approx(
            2.0 * stage_zero_params(tiny_model, plan))

    def test_last_stage_params_p1_has_no_head_copy(self, tiny_model):
        from repro.memory.footprint import last_stage_params
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1)
        assert last_stage_params(tiny_model, plan) == (
            tiny_model.num_layers * tiny_model.params_per_layer()
            + 2 * tiny_model.hidden_size)


class TestFeasibility:
    def test_tiny_model_fits(self, tiny_model, training, node_system):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=1)
        assert fits_in_memory(tiny_model, plan, training, node_system)
        footprint = check_memory(tiny_model, plan, training, node_system)
        assert footprint.total_gib < 80

    def test_mtnlg_needs_model_parallelism(self, node_system):
        plan = ParallelismConfig(tensor=8, data=1, pipeline=1)
        assert not fits_in_memory(MT_NLG_530B, plan, MT_NLG_TRAINING,
                                  node_system)

    def test_mtnlg_baseline_plan_fits(self):
        """The (8, 8, 35) MT-NLG plan must be feasible (Table I)."""
        from repro.config.presets import MT_NLG_BASELINE_PLANS
        from repro.config.system import multi_node
        system = multi_node(280)
        assert fits_in_memory(MT_NLG_530B, MT_NLG_BASELINE_PLANS[0],
                              MT_NLG_TRAINING, system)

    def test_mtnlg_vtrain_plans_fit(self):
        from repro.config.presets import MT_NLG_VTRAIN_PLANS
        from repro.config.system import multi_node
        for plan in MT_NLG_VTRAIN_PLANS:
            system = multi_node(plan.total_gpus // 8)
            assert fits_in_memory(MT_NLG_530B, plan, MT_NLG_TRAINING, system)

    def test_check_memory_raises_with_reason(self, node_system):
        plan = ParallelismConfig(tensor=8, data=1, pipeline=1)
        with pytest.raises(InfeasibleConfigError, match="GiB"):
            check_memory(MT_NLG_530B, plan, MT_NLG_TRAINING, node_system)

    def test_suggest_schedule(self, tiny_model, training, node_system):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=2)
        schedule = suggest_schedule_for_memory(tiny_model, plan, training,
                                               node_system)
        assert schedule is PipelineSchedule.GPIPE  # tiny model fits either
