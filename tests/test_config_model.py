"""Unit tests for the model description and FLOP/parameter accounting."""

import pytest

from repro.config.model import ModelConfig
from repro.config.presets import (GPT3_175B, MEGATRON_3_6B, MEGATRON_18_4B,
                                  MEGATRON_39_1B, MEGATRON_81_2B,
                                  MEGATRON_145_6B, MT_NLG_530B)
from repro.errors import ConfigError


class TestValidation:
    def test_rejects_non_positive_hidden_size(self):
        with pytest.raises(ConfigError):
            ModelConfig(hidden_size=0, num_layers=1, seq_length=8, num_heads=1)

    def test_rejects_non_integer_layers(self):
        with pytest.raises(ConfigError):
            ModelConfig(hidden_size=64, num_layers=1.5, seq_length=8,
                        num_heads=1)

    def test_rejects_heads_not_dividing_hidden(self):
        with pytest.raises(ConfigError):
            ModelConfig(hidden_size=100, num_layers=2, seq_length=8,
                        num_heads=3)

    def test_negative_vocab_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(hidden_size=64, num_layers=2, seq_length=8,
                        num_heads=2, vocab_size=-1)


class TestDerivedDimensions:
    def test_head_dim(self):
        model = ModelConfig(hidden_size=512, num_layers=2, seq_length=8,
                            num_heads=8)
        assert model.head_dim == 64

    def test_ffn_hidden_size_is_4h(self):
        model = ModelConfig(hidden_size=512, num_layers=2, seq_length=8,
                            num_heads=8)
        assert model.ffn_hidden_size == 2048

    def test_padded_vocab_divisible_by_shards(self):
        model = ModelConfig(hidden_size=512, num_layers=2, seq_length=8,
                            num_heads=8, vocab_size=50_257)
        for t in (1, 2, 4, 8):
            padded = model.padded_vocab_size(t)
            assert padded >= model.vocab_size
            assert padded % (128 * t) == 0

    def test_padded_vocab_rejects_bad_tensor(self):
        model = ModelConfig(hidden_size=512, num_layers=2, seq_length=8,
                            num_heads=8)
        with pytest.raises(ConfigError):
            model.padded_vocab_size(0)


class TestParameterCounts:
    """The presets must land on their published parameter counts."""

    @pytest.mark.parametrize("model,expected_billion", [
        (GPT3_175B, 175.0),
        (MT_NLG_530B, 530.0),
        (MEGATRON_3_6B, 3.6),
        (MEGATRON_18_4B, 18.4),
        (MEGATRON_39_1B, 39.1),
        (MEGATRON_81_2B, 81.2),
        (MEGATRON_145_6B, 145.6),
    ])
    def test_published_sizes(self, model, expected_billion):
        assert model.parameters_billion == pytest.approx(expected_billion,
                                                         rel=0.02)

    def test_total_includes_layers_and_embeddings(self, tiny_model):
        total = tiny_model.num_parameters()
        parts = (tiny_model.num_layers * tiny_model.params_per_layer()
                 + tiny_model.embedding_params())
        assert total > parts  # final layernorm on top
        assert total - parts == 2 * tiny_model.hidden_size

    def test_params_per_layer_dominated_by_12h2(self, tiny_model):
        h = tiny_model.hidden_size
        assert tiny_model.params_per_layer() == pytest.approx(12 * h * h,
                                                              rel=0.01)


class TestFlopAccounting:
    def test_backward_is_twice_forward(self, tiny_model):
        assert tiny_model.flops_per_token() == pytest.approx(
            3.0 * tiny_model.flops_per_token_forward())

    def test_flops_per_token_close_to_6n(self):
        """For big models, FLOPs/token ~ 6 x parameters (the standard
        rule the paper's utilization metric builds on)."""
        ratio = MT_NLG_530B.flops_per_token() / MT_NLG_530B.num_parameters()
        assert 5.5 < ratio < 7.5

    def test_iteration_flops_scale_with_tokens(self, tiny_model):
        one = tiny_model.model_flops_per_iteration(1000)
        two = tiny_model.model_flops_per_iteration(2000)
        assert two == pytest.approx(2 * one)

    def test_iteration_flops_reject_zero_tokens(self, tiny_model):
        with pytest.raises(ConfigError):
            tiny_model.model_flops_per_iteration(0)


class TestConvenience:
    def test_scaled_replaces_fields(self, tiny_model):
        wider = tiny_model.scaled(hidden_size=1024, num_heads=16)
        assert wider.hidden_size == 1024
        assert wider.num_layers == tiny_model.num_layers

    def test_describe_mentions_dimensions(self, tiny_model):
        text = tiny_model.describe()
        assert "h=512" in text and "L=4" in text

    def test_frozen(self, tiny_model):
        with pytest.raises(AttributeError):
            tiny_model.hidden_size = 1
