"""Tests for the parallel, cache-aware sweep engine.

Covers the determinism contract (parallel == serial, bit-identical),
cache hit/miss accounting, checkpoint interrupt/resume, and the progress
callback.
"""

import pytest

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.dse.cache import PredictionCache
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.parallel import ParallelExplorer
from repro.dse.space import SearchSpace, enumerate_plans
from repro.errors import ConfigError
from repro.sim.estimator import VTrain


@pytest.fixture
def model():
    return ModelConfig(hidden_size=512, num_layers=4, seq_length=128,
                       num_heads=8, vocab_size=32_000, name="sweep-model")


@pytest.fixture
def training():
    return TrainingConfig(global_batch_size=16)


@pytest.fixture
def space():
    return SearchSpace(max_tensor=4, max_data=4, max_pipeline=4,
                       micro_batch_sizes=(1, 2))


@pytest.fixture
def serial_result(model, training, space):
    return DesignSpaceExplorer(model, training).explore(max_gpus=8,
                                                        space=space)


class TestParity:
    def test_parallel_matches_serial_bit_identical(self, model, training,
                                                   space, serial_result):
        engine = ParallelExplorer(model, training, workers=2)
        result = engine.explore(max_gpus=8, space=space)
        assert result.points == serial_result.points

    def test_explore_workers_kwarg_delegates(self, model, training, space,
                                             serial_result):
        explorer = DesignSpaceExplorer(model, training)
        result = explorer.explore(max_gpus=8, space=space, workers=2)
        assert result.points == serial_result.points

    def test_single_worker_matches_serial(self, model, training, space,
                                          serial_result):
        engine = ParallelExplorer(model, training, workers=1)
        result = engine.explore(max_gpus=8, space=space)
        assert result.points == serial_result.points

    def test_points_follow_enumeration_order(self, model, training, space):
        plans = list(enumerate_plans(model, training, max_gpus=8,
                                     space=space))
        engine = ParallelExplorer(model, training, workers=2, chunk_size=3)
        result = engine.explore(plans=plans)
        assert [p.plan for p in result.points] == plans


class TestCacheAccounting:
    def test_cold_sweep_is_all_misses(self, model, training, space):
        cache = PredictionCache()
        engine = ParallelExplorer(model, training, workers=1, cache=cache)
        result = engine.explore(max_gpus=8, space=space)
        assert cache.misses == len(result.points)
        assert cache.hits == 0
        assert len(cache) == len(result.points)

    def test_warm_sweep_skips_all_predict_calls(self, model, training,
                                                space, monkeypatch):
        cache = PredictionCache()
        ParallelExplorer(model, training, workers=1,
                         cache=cache).explore(max_gpus=8, space=space)
        entries = len(cache)
        cache.hits = cache.misses = 0

        calls = []
        original = VTrain.predict

        def counting_predict(self, *args, **kwargs):
            calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(VTrain, "predict", counting_predict)
        engine = ParallelExplorer(model, training, workers=1, cache=cache)
        result = engine.explore(max_gpus=8, space=space)
        assert not calls  # every point served from the cache
        assert cache.hits == len(result.points) == entries
        assert cache.misses == 0

    def test_changed_training_recipe_misses_stale_cache(self, model, space):
        """Regression: the fingerprint must include the training recipe,
        or a sweep with a different global batch would silently reuse
        predictions computed for the old one."""
        cache = PredictionCache()
        first = TrainingConfig(global_batch_size=16)
        second = TrainingConfig(global_batch_size=8)
        ParallelExplorer(model, first, workers=1,
                         cache=cache).explore(max_gpus=8, space=space)
        cache.hits = cache.misses = 0
        result = ParallelExplorer(model, second, workers=1,
                                  cache=cache).explore(max_gpus=8,
                                                       space=space)
        assert cache.hits == 0
        assert cache.misses == len(result.points)

    def test_warm_parallel_sweep_serves_from_cache(self, model, training,
                                                   space):
        cache = PredictionCache()
        cold = ParallelExplorer(model, training, workers=2, cache=cache)
        expected = cold.explore(max_gpus=8, space=space)
        cache.hits = cache.misses = 0
        warm = ParallelExplorer(model, training, workers=2, cache=cache)
        result = warm.explore(max_gpus=8, space=space)
        assert result.points == expected.points
        assert cache.hits == len(result.points)
        assert cache.misses == 0


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_from_checkpoint(self, model, training,
                                                       space, tmp_path):
        checkpoint = tmp_path / "sweep.json"
        plans = list(enumerate_plans(model, training, max_gpus=8,
                                     space=space))
        # First run covers only a prefix of the space (an "interrupted"
        # sweep that checkpointed before dying).
        partial = ParallelExplorer(model, training, workers=1,
                                   checkpoint_path=checkpoint)
        partial.explore(plans=plans[:5])
        assert checkpoint.exists()

        resumed_cache = PredictionCache()
        resumed = ParallelExplorer(model, training, workers=1,
                                   cache=resumed_cache,
                                   checkpoint_path=checkpoint)
        result = resumed.explore(plans=plans)
        # The checkpointed prefix is served from disk, the rest computed.
        assert resumed_cache.hits == 5
        assert resumed_cache.misses == len(plans) - 5
        serial = DesignSpaceExplorer(model, training).explore(plans=plans)
        assert result.points == serial.points

    def test_checkpoint_written_mid_sweep(self, model, training, space,
                                          tmp_path):
        checkpoint = tmp_path / "mid.json"
        engine = ParallelExplorer(model, training, workers=1,
                                  checkpoint_path=checkpoint,
                                  checkpoint_every=1, chunk_size=4)
        result = engine.explore(max_gpus=8, space=space)
        saved = PredictionCache.load(checkpoint)
        assert len(saved) == len(result.points)

    def test_full_checkpoint_round_trip(self, model, training, space,
                                        tmp_path, serial_result):
        checkpoint = tmp_path / "done.json"
        ParallelExplorer(model, training, workers=2,
                         checkpoint_path=checkpoint).explore(max_gpus=8,
                                                             space=space)
        rerun_cache = PredictionCache()
        rerun = ParallelExplorer(model, training, workers=1,
                                 cache=rerun_cache,
                                 checkpoint_path=checkpoint)
        result = rerun.explore(max_gpus=8, space=space)
        assert rerun_cache.misses == 0
        assert result.points == serial_result.points


class TestProgress:
    def test_progress_reaches_total(self, model, training, space):
        seen = []
        engine = ParallelExplorer(model, training, workers=1, chunk_size=4,
                                  progress=lambda done, total:
                                  seen.append((done, total)))
        result = engine.explore(max_gpus=8, space=space)
        total = len(result.points)
        assert seen[-1] == (total, total)
        dones = [done for done, _ in seen]
        assert dones == sorted(dones)
        assert all(t == total for _, t in seen)

    def test_progress_threads_through_explore(self, model, training, space):
        seen = []
        explorer = DesignSpaceExplorer(model, training)
        explorer.explore(max_gpus=8, space=space,
                         progress=lambda done, total:
                         seen.append((done, total)))
        assert seen and seen[-1][0] == seen[-1][1]


class TestValidation:
    def test_rejects_bad_worker_count(self, model, training):
        with pytest.raises(ConfigError):
            ParallelExplorer(model, training, workers=0)

    def test_rejects_bad_chunk_size(self, model, training):
        with pytest.raises(ConfigError):
            ParallelExplorer(model, training, workers=1, chunk_size=0)

    def test_rejects_bad_checkpoint_cadence(self, model, training):
        with pytest.raises(ConfigError):
            ParallelExplorer(model, training, workers=1, checkpoint_every=0)


class TestStructurallyInvalidPlans:
    def test_invalid_plan_becomes_infeasible_row_in_parallel_sweep(
            self, model, training):
        # micro-batch 64 cannot divide the 16-sequence per-replica batch;
        # the resulting ConfigError must not abort the sweep.
        bad = ParallelismConfig(tensor=1, data=1, pipeline=1,
                                micro_batch_size=64)
        good = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        engine = ParallelExplorer(model, training, workers=2)
        result = engine.explore(plans=[bad, good])
        assert not result.points[0].feasible
        assert result.points[0].infeasible_reason
        assert result.points[1].feasible
