"""Tests for serving-workload design-space exploration.

Covers the serving plan enumerator, the explorer's inference sweep and
its objectives (tokens/s, TPOT, cost per million tokens), the
Pareto/report surfaces, and — critically — backward compatibility:
training design points, cache fingerprints, and pre-workload
prediction-cache checkpoints must remain byte-identical.
"""

from __future__ import annotations

import json

import pytest

from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.cost.pricing import DEFAULT_PRICING
from repro.dse.cache import PredictionCache, fingerprint
from repro.dse.explorer import DesignPoint, DesignSpaceExplorer
from repro.dse.report import (SERVING_CSV_COLUMNS, load_csv,
                              save_serving_csv, to_serving_csv,
                              to_serving_markdown)
from repro.dse.space import SearchSpace, enumerate_serving_plans
from repro.errors import ConfigError
from repro.graph.builder import Granularity
from repro.sim.estimator import VTrain
from repro.workload import InferenceWorkload

#: The exact fingerprint the pre-workload release computed for
#: (tiny model, t2 d2 p2 m2, B=16 training, one node, OPERATOR). The
#: workload refactor must not move it, or every training cache
#: checkpoint in the wild silently goes cold.
PRE_WORKLOAD_KEY = (
    "296585a1946b64d942fdbfbfaaa0fc0a22092f80050065d1842b73ca978d476f")

#: A prediction-cache checkpoint exactly as the pre-workload release
#: wrote it (no workload fields anywhere in the payload).
PRE_WORKLOAD_CHECKPOINT = {
    "entries": {
        PRE_WORKLOAD_KEY: {
            "feasible": True,
            "infeasible_reason": "",
            "iteration_time": 0.123456,
            "memory_gib": 10.5,
            "plan": {"data": 2, "gradient_bucketing": True,
                     "micro_batch_size": 2, "num_gradient_buckets": 4,
                     "pipeline": 2, "recompute": "selective",
                     "schedule": "1f1b", "sequence_parallel": False,
                     "tensor": 2},
            "utilization": 0.42,
        },
    },
    "version": 1,
}


@pytest.fixture
def workload() -> InferenceWorkload:
    return InferenceWorkload(batch_size=8, prompt_len=128, gen_len=64)


@pytest.fixture
def serving_result(tiny_model, workload):
    explorer = DesignSpaceExplorer(tiny_model, None, workload=workload)
    return explorer.explore(space=SearchSpace(max_tensor=2, max_pipeline=2),
                            max_gpus=8)


class TestServingPlanEnumeration:
    def test_replica_axis_ignores_batch_divisibility(self, tiny_model):
        """d counts server replicas, so an odd serving batch still
        admits multi-replica plans (unlike training's ``d | B``)."""
        workload = InferenceWorkload(batch_size=3, prompt_len=64,
                                     gen_len=16)
        plans = list(enumerate_serving_plans(tiny_model, workload,
                                             max_gpus=8))
        assert any(plan.data == 2 for plan in plans)
        assert all(workload.batch_size % plan.micro_batch_size == 0
                   for plan in plans)

    def test_no_virtual_pipelining(self, tiny_model, workload):
        plans = list(enumerate_serving_plans(tiny_model, workload,
                                             max_gpus=8))
        assert plans
        assert all(plan.virtual_stages == 1 for plan in plans)

    def test_exact_gpu_count_filter(self, tiny_model, workload):
        plans = list(enumerate_serving_plans(tiny_model, workload,
                                             num_gpus=4))
        assert plans
        assert all(plan.total_gpus == 4 for plan in plans)

    def test_needs_exactly_one_budget(self, tiny_model, workload):
        with pytest.raises(ConfigError):
            list(enumerate_serving_plans(tiny_model, workload))
        with pytest.raises(ConfigError):
            list(enumerate_serving_plans(tiny_model, workload,
                                         num_gpus=4, max_gpus=8))


class TestServingExploration:
    def test_points_carry_serving_metrics(self, serving_result):
        assert serving_result.num_feasible > 0
        for point in serving_result.feasible_points:
            assert point.workload == "inference"
            assert point.tokens_per_s > 0
            assert 0 < point.tpot_s <= point.ttft_s or point.ttft_s > 0
            # TPOT mirrors into iteration_time for generic sorting.
            assert point.iteration_time == point.tpot_s

    def test_matches_direct_prediction(self, tiny_model, workload,
                                       serving_result):
        point = serving_result.feasible_points[0]
        vtrain = VTrain(single_node(), granularity=Granularity.STAGE)
        direct = vtrain.predict_inference(tiny_model, point.plan, workload)
        assert point.ttft_s == direct.time_to_first_token
        assert point.tpot_s == direct.time_per_output_token
        assert point.tokens_per_s == direct.tokens_per_second

    def test_tp_buys_latency_replicas_buy_throughput(self, serving_result):
        """The vLLM trade-off at equal GPU count: the TP-heavy plan has
        the lower TPOT, the replica-heavy plan the higher tokens/s."""
        by_way = {point.plan.way: point
                  for point in serving_result.feasible_points
                  if point.plan.pipeline == 1 and point.num_gpus == 2}
        tp_heavy, replica_heavy = by_way[(2, 1, 1)], by_way[(1, 2, 1)]
        assert tp_heavy.tpot_s < replica_heavy.tpot_s
        assert replica_heavy.tokens_per_s > tp_heavy.tokens_per_s

    def test_pareto_frontier_is_nondominated(self, serving_result):
        frontier = serving_result.serving_pareto_frontier()
        assert frontier
        throughputs = [point.tokens_per_s for point in frontier]
        costs = [point.cost_per_million_tokens() for point in frontier]
        # Descending throughput, strictly improving (descending) cost.
        assert throughputs == sorted(throughputs, reverse=True)
        assert costs == sorted(costs, reverse=True)
        for point in frontier:
            dominated = any(
                other.tokens_per_s >= point.tokens_per_s
                and (other.cost_per_million_tokens()
                     < point.cost_per_million_tokens())
                for other in serving_result.feasible_points)
            assert not dominated

    def test_best_by_throughput_respects_gpu_cap(self, serving_result):
        best = serving_result.best_by_throughput()
        capped = serving_result.best_by_throughput(max_gpus=2)
        assert capped.num_gpus <= 2
        assert best.tokens_per_s >= capped.tokens_per_s

    def test_explorer_needs_training_or_workload(self, tiny_model):
        with pytest.raises(ConfigError):
            DesignSpaceExplorer(tiny_model, None)

    def test_serving_checkpoint_round_trip(self, tiny_model, workload,
                                           tmp_path):
        """A serving sweep resumed from its checkpoint returns the
        same points without recomputing."""
        checkpoint = tmp_path / "serving.cache.json"
        space = SearchSpace(max_tensor=2, max_pipeline=1)
        explorer = DesignSpaceExplorer(tiny_model, None, workload=workload)
        first = explorer.explore(space=space, max_gpus=4,
                                 checkpoint_path=checkpoint)
        assert checkpoint.exists()
        resumed = DesignSpaceExplorer(tiny_model, None, workload=workload)
        second = resumed.explore(space=space, max_gpus=4,
                                 checkpoint_path=checkpoint)
        assert ([point.to_dict() for point in second.points]
                == [point.to_dict() for point in first.points])


class TestDesignPointCompat:
    def test_training_payload_has_no_workload_fields(self):
        point = DesignPoint(
            plan=ParallelismConfig(tensor=2, data=2, pipeline=2,
                                   micro_batch_size=2),
            feasible=True, iteration_time=0.5, utilization=0.4,
            memory_gib=10.0)
        payload = point.to_dict()
        for field in ("workload", "tokens_per_s", "ttft_s", "tpot_s"):
            assert field not in payload
        assert DesignPoint.from_dict(payload) == point

    def test_serving_payload_round_trips(self):
        point = DesignPoint(
            plan=ParallelismConfig(tensor=2, data=2, pipeline=1,
                                   micro_batch_size=2),
            feasible=True, iteration_time=0.001, utilization=0.0,
            memory_gib=4.0, workload="inference", tokens_per_s=1000.0,
            ttft_s=0.01, tpot_s=0.001)
        rebuilt = DesignPoint.from_dict(point.to_dict())
        assert rebuilt == point

    def test_pre_workload_fingerprint_is_unmoved(self, tiny_model,
                                                 training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        key = fingerprint(tiny_model, plan, training, single_node(),
                          Granularity.OPERATOR)
        assert key == PRE_WORKLOAD_KEY

    def test_workload_fingerprint_is_distinct(self, tiny_model, training,
                                              workload):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        serving_key = fingerprint(tiny_model, plan, None, single_node(),
                                  Granularity.OPERATOR, workload=workload)
        assert serving_key != PRE_WORKLOAD_KEY

    def test_fingerprint_needs_training_or_workload(self, tiny_model):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        with pytest.raises(ConfigError):
            fingerprint(tiny_model, plan, None, single_node(),
                        Granularity.OPERATOR)

    def test_pre_workload_checkpoint_still_loads_and_hits(
            self, tiny_model, training, tmp_path):
        """A cache checkpoint written before the workload abstraction
        loads cleanly and its entries are found under today's keys."""
        path = tmp_path / "old.cache.json"
        path.write_text(json.dumps(PRE_WORKLOAD_CHECKPOINT))
        cache = PredictionCache.load(path)
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        key = fingerprint(tiny_model, plan, training, single_node(),
                          Granularity.OPERATOR)
        point = cache.get(key)
        assert point is not None
        assert point.feasible
        assert point.iteration_time == 0.123456
        assert point.workload == "training"


class TestServingReports:
    def test_csv_has_serving_columns(self, serving_result):
        text = to_serving_csv(serving_result)
        header = text.splitlines()[0]
        assert header == ",".join(SERVING_CSV_COLUMNS)
        assert "tokens_per_s" in header

    def test_csv_round_trips_through_load(self, serving_result, tmp_path):
        path = tmp_path / "serving.csv"
        save_serving_csv(serving_result, path)
        rows = load_csv(path)
        assert len(rows) == serving_result.num_feasible
        assert all(float(row["tokens_per_s"]) > 0 for row in rows)

    @pytest.mark.parametrize("sort_by", ["cost", "throughput", "latency"])
    def test_markdown_table_renders(self, serving_result, sort_by):
        table = to_serving_markdown(serving_result, sort_by=sort_by)
        assert "$/Mtok" in table.splitlines()[0]
        assert len(table.splitlines()) > 2

    def test_markdown_cost_sort_is_ascending(self, serving_result):
        table = to_serving_markdown(serving_result, sort_by="cost")
        costs = [float(line.split("|")[-2])
                 for line in table.splitlines()[2:]]
        assert costs == sorted(costs)

    def test_markdown_rejects_unknown_sort(self, serving_result):
        with pytest.raises(ConfigError):
            to_serving_markdown(serving_result, sort_by="vibes")

    def test_cost_objective_matches_the_pricing_model(self, serving_result):
        point = serving_result.feasible_points[0]
        expected = (DEFAULT_PRICING.dollars_per_hour(point.num_gpus)
                    / 3600.0 / point.tokens_per_s * 1e6)
        assert point.cost_per_million_tokens() == expected
