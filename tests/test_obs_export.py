"""Tests for Chrome-trace export: exact round-trip and schema validity."""

import json
from pathlib import Path

import pytest

from repro.config.parallelism import ParallelismConfig
from repro.config.system import single_node
from repro.errors import SimulationError
from repro.obs.export import (SIM_PID_OFFSET, combined_trace,
                              events_from_trace, load_trace,
                              simulation_trace_events, write_trace)
from repro.obs.schema import validate
from repro.obs.tracer import ENGINE_PID, SpanTracer
from repro.sim.engine import simulate
from repro.sim.estimator import VTrain

SCHEMA_PATH = (Path(__file__).parent.parent / "schemas"
               / "chrome_trace.schema.json")


@pytest.fixture
def timeline_result(tiny_model, training):
    vtrain = VTrain(single_node(), check_memory_feasibility=False)
    plan = ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2)
    graph = vtrain.build_graph(tiny_model, plan, training)
    return simulate(graph, record_timeline=True)


class TestSimulationExport:
    def test_requires_recorded_timeline(self, tiny_model, training):
        vtrain = VTrain(single_node(), check_memory_feasibility=False)
        plan = ParallelismConfig(tensor=1, data=2, pipeline=2)
        graph = vtrain.build_graph(tiny_model, plan, training)
        result = simulate(graph)  # no timeline
        with pytest.raises(SimulationError):
            simulation_trace_events(result)

    def test_devices_become_offset_pids(self, timeline_result):
        trace = simulation_trace_events(timeline_result)
        sim_pids = {e["pid"] for e in trace if e["ph"] == "X"}
        devices = {e.device for e in timeline_result.events}
        assert sim_pids == {SIM_PID_OFFSET + d for d in devices}

    def test_streams_become_stable_tids(self, timeline_result):
        trace = simulation_trace_events(timeline_result)
        streams = sorted({e.stream for e in timeline_result.events})
        names = {e["args"]["name"]: e["tid"] for e in trace
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {stream: tid for tid, stream in enumerate(streams)}

    def test_kinds_become_categories(self, timeline_result):
        trace = simulation_trace_events(timeline_result)
        kinds = {e.kind for e in timeline_result.events}
        assert {e["cat"] for e in trace if e["ph"] == "X"} == kinds

    def test_round_trip_is_exact(self, timeline_result):
        trace = simulation_trace_events(timeline_result)
        rebuilt = events_from_trace(trace)
        assert rebuilt == timeline_result.events

    def test_round_trip_ignores_engine_spans(self, timeline_result):
        tracer = SpanTracer()
        with tracer.span("replay"):
            pass
        payload = combined_trace(timeline_result,
                                 engine_events=tracer.chrome_trace())
        rebuilt = events_from_trace(payload["traceEvents"])
        assert rebuilt == timeline_result.events


class TestCombinedTrace:
    def test_holds_both_pid_ranges(self, timeline_result):
        tracer = SpanTracer()
        with tracer.span("predict"):
            pass
        payload = combined_trace(timeline_result,
                                 engine_events=tracer.chrome_trace(),
                                 metadata={"model": "tiny"})
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert ENGINE_PID in pids
        assert any(pid >= SIM_PID_OFFSET for pid in pids)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"] == {"model": "tiny"}

    def test_engine_only_trace(self):
        tracer = SpanTracer()
        with tracer.span("structure_build"):
            pass
        payload = combined_trace(engine_events=tracer.chrome_trace())
        assert all(e["pid"] == ENGINE_PID for e in payload["traceEvents"])

    def test_matches_published_schema(self, timeline_result):
        tracer = SpanTracer()
        with tracer.span("replay", tasks=3):
            pass
        payload = combined_trace(timeline_result,
                                 engine_events=tracer.chrome_trace(),
                                 metadata={"granularity": "operator"})
        schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
        validate(payload, schema)  # raises on violation

    def test_write_and_load_round_trip(self, timeline_result, tmp_path):
        payload = combined_trace(timeline_result)
        path = write_trace(tmp_path / "trace.json", payload)
        assert load_trace(path) == json.loads(json.dumps(payload))
        rebuilt = events_from_trace(load_trace(path)["traceEvents"])
        assert rebuilt == timeline_result.events
