"""Unit tests for the validation error-breakdown report."""

import pytest

from repro.errors import ConfigError
from repro.validation.campaigns import run_campaign, single_node_points
from repro.validation.report import (by_data_degree, by_model,
                                     by_node_count, by_pipeline_degree,
                                     by_tensor_degree, render_report,
                                     slice_by, tp_underestimation_gap,
                                     worst_points)


@pytest.fixture(scope="module")
def campaign():
    """A small but diverse single-node campaign slice."""
    return run_campaign(single_node_points()[::40])


class TestSlicing:
    def test_slices_partition_points(self, campaign):
        slices = by_tensor_degree(campaign)
        assert sum(s.accuracy.num_points for s in slices) == \
            len(campaign.points)

    def test_slice_labels(self, campaign):
        labels = [s.label for s in by_tensor_degree(campaign)]
        assert all(label.startswith("t=") for label in labels)

    def test_all_slicers_run(self, campaign):
        for slicer in (by_tensor_degree, by_data_degree,
                       by_pipeline_degree, by_node_count, by_model):
            slices = slicer(campaign)
            assert slices
            for item in slices:
                assert item.accuracy.num_points >= 1

    def test_custom_key(self, campaign):
        slices = slice_by(campaign, lambda p: p.plan.micro_batch_size,
                          label="m=")
        assert {s.label for s in slices} <= {"m=1", "m=2", "m=4"}

    def test_as_row(self, campaign):
        row = by_tensor_degree(campaign)[0].as_row()
        assert set(row) == {"slice", "points", "mape_pct", "bias_pct"}


class TestFindings:
    def test_tp_heavy_underestimated_more(self, campaign):
        """The paper's Section IV observation, reproduced as a metric:
        the bias gap between the highest and lowest tensor degrees is
        negative (more underestimation at high TP)."""
        assert tp_underestimation_gap(campaign) < 0

    def test_worst_points_sorted(self, campaign):
        worst = worst_points(campaign, count=5)
        errors = [error for _, error in worst]
        assert errors == sorted(errors, reverse=True)
        assert len(worst) == 5

    def test_worst_points_validation(self, campaign):
        with pytest.raises(ConfigError):
            worst_points(campaign, count=0)

    def test_render_report_text(self, campaign):
        text = render_report(campaign, title="unit-test")
        assert "unit-test" in text
        assert "by tensor degree" in text
        assert "MAPE" in text
