"""Unit tests for validation metrics and campaign generation."""

import pytest

from repro.errors import ConfigError
from repro.graph.builder import Granularity
from repro.validation.campaigns import (multi_node_points, run_campaign,
                                        single_node_points)
from repro.validation.metrics import (accuracy, mape, mean_signed_error,
                                      r_squared)


class TestMetrics:
    def test_mape_zero_for_perfect_prediction(self):
        assert mape([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_mape_symmetric_magnitude(self):
        assert mape([10.0], [9.0]) == pytest.approx(10.0)
        assert mape([10.0], [11.0]) == pytest.approx(10.0)

    def test_mape_rejects_non_positive_measured(self):
        with pytest.raises(ConfigError):
            mape([0.0], [1.0])

    def test_r_squared_perfect(self):
        assert r_squared([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r_squared_mean_predictor_is_zero(self):
        measured = [1.0, 2.0, 3.0]
        assert r_squared(measured, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_r_squared_constant_measured(self):
        assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r_squared([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_signed_error_shows_bias_direction(self):
        assert mean_signed_error([10.0, 10.0], [9.0, 9.0]) == pytest.approx(
            -10.0)

    def test_accuracy_bundle(self):
        summary = accuracy([1.0, 2.0], [1.1, 1.9])
        assert summary.num_points == 2
        assert summary.mape == pytest.approx(7.5)
        assert "MAPE" in summary.describe()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            mape([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            mape([], [])


class TestCampaignGeneration:
    def test_single_node_campaign_scale(self):
        """The paper collected 1,440 single-node points; our generator
        must produce the same order of magnitude."""
        points = single_node_points()
        assert 1000 <= len(points) <= 1500

    def test_single_node_plans_use_8_gpus(self):
        for point in single_node_points(limit=50):
            assert point.plan.total_gpus == 8
            assert point.num_nodes == 1

    def test_single_node_limit(self):
        assert len(single_node_points(limit=10)) == 10

    def test_multi_node_campaign_has_116_points(self):
        points = multi_node_points()
        assert len(points) == 116

    def test_multi_node_spans_models_and_scales(self):
        points = multi_node_points()
        models = {point.model.name for point in points}
        nodes = {point.num_nodes for point in points}
        assert len(models) >= 3
        assert len(nodes) >= 3

    def test_points_are_structurally_valid(self):
        from repro.config.parallelism import validate_plan
        for point in multi_node_points()[:20]:
            validate_plan(point.model, point.plan, point.training,
                          point.plan.total_gpus)


class TestCampaignRun:
    def test_small_campaign_accuracy_band(self):
        """A slice of the single-node campaign must land in a sane error
        band: prediction below measurement, single-digit-to-low-teens
        MAPE, strong correlation."""
        points = single_node_points()[::40]  # ~30 points
        result = run_campaign(points)
        summary = result.accuracy
        assert summary.num_points == len(points)
        assert 2.0 < summary.mape < 18.0
        assert summary.mean_signed_error < 0  # vTrain underestimates
        assert len(result.scatter()) == len(points)

    def test_campaign_records_pairs(self):
        points = single_node_points(limit=3)
        result = run_campaign(points, granularity=Granularity.OPERATOR)
        assert len(result.predicted) == 3
        assert len(result.measured) == 3
        assert all(m > p for m, p in zip(result.measured, result.predicted))
