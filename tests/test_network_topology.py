"""Unit tests for the network topology graphs and their routing."""

import pytest

from repro.config.system import NetworkSpec, multi_node
from repro.errors import ConfigError
from repro.network.topology import (FatTreeTopology, NvSwitchNodeTopology,
                                    RailOptimizedTopology, Topology,
                                    build_topology, gpu_id)


def rail_topology(num_nodes=4, gpus=8, nics=4):
    return RailOptimizedTopology(num_nodes, gpus, nics,
                                 nvlink_bandwidth=300e9, nic_bandwidth=25e9,
                                 intranode_latency=3e-6,
                                 internode_latency=5e-6)


def fat_tree_topology(num_nodes=8, gpus=8, nics=4, ratio=1.0,
                      nodes_per_leaf=4):
    return FatTreeTopology(num_nodes, gpus, nics,
                           nvlink_bandwidth=300e9, nic_bandwidth=25e9,
                           intranode_latency=3e-6, internode_latency=5e-6,
                           oversubscription=ratio,
                           nodes_per_leaf=nodes_per_leaf)


class TestNetworkSpec:
    def test_parse_flat_rail(self):
        assert NetworkSpec.parse("flat").kind == "flat"
        assert NetworkSpec.parse("rail").kind == "rail"

    def test_parse_fat_tree_ratio(self):
        spec = NetworkSpec.parse("fat-tree:4")
        assert spec.kind == "fat-tree"
        assert spec.oversubscription == 4.0
        assert NetworkSpec.parse("fat-tree").oversubscription == 1.0

    def test_canonical_round_trips(self):
        for text in ("flat", "rail", "fat-tree", "fat-tree:2.5"):
            spec = NetworkSpec.parse(text)
            assert NetworkSpec.parse(spec.canonical()) == spec

    @pytest.mark.parametrize("bad", ["", "mesh", "rail:2", "fat-tree:x",
                                     "fat-tree:0.5", "fat-tree:nan",
                                     "fat-tree:inf"])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigError):
            NetworkSpec.parse(bad)

    def test_canonical_normalizes_unit_ratio(self):
        """fat-tree:1 and fat-tree are the same fabric; to_dict emits
        the canonical spelling so cache fingerprints agree."""
        assert NetworkSpec.parse("fat-tree:1").canonical() == "fat-tree"
        one = multi_node(2, network="fat-tree:1").to_dict()
        bare = multi_node(2, network="fat-tree").to_dict()
        assert one == bare


class TestTopologyGraph:
    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_link("a", "b", 1e9, 1e-6)
        with pytest.raises(ConfigError):
            topo.add_link("a", "b", 1e9, 1e-6)

    def test_missing_link_rejected(self):
        topo = Topology()
        topo.add_link("a", "b", 1e9, 1e-6)
        with pytest.raises(ConfigError):
            topo.link("a", "c")

    def test_bfs_route_finds_shortest_path(self):
        topo = Topology()
        topo.add_link("a", "b", 1e9, 1e-6)
        topo.add_link("b", "c", 1e9, 1e-6)
        topo.add_link("a", "c", 1e9, 1e-6)  # direct shortcut
        route = topo.route("a", "c")
        assert [link.dst for link in route] == ["c"]

    def test_bfs_route_unreachable(self):
        topo = Topology()
        topo.add_link("a", "b", 1e9, 1e-6)
        topo.add_link("c", "d", 1e9, 1e-6)
        with pytest.raises(ConfigError):
            topo.route("a", "d")


class TestNvSwitchNode:
    def test_route_through_switch(self):
        topo = NvSwitchNodeTopology(8, nvlink_bandwidth=300e9,
                                    intranode_latency=3e-6)
        route = topo.route(gpu_id(0, 0), gpu_id(0, 7))
        assert [link.dst for link in route] == ["nvswitch:0", gpu_id(0, 7)]
        assert sum(link.latency for link in route) == pytest.approx(3e-6)

    def test_self_route_is_empty(self):
        topo = NvSwitchNodeTopology(8, nvlink_bandwidth=300e9,
                                    intranode_latency=3e-6)
        assert topo.route(gpu_id(0, 3), gpu_id(0, 3)) == []


class TestRailOptimized:
    def test_channel_selects_rail(self):
        topo = rail_topology()
        for channel in range(4):
            route = topo.route(gpu_id(0, 0), gpu_id(1, 0), channel=channel)
            assert f"rail:{channel}" in [link.dst for link in route]

    def test_rails_are_disjoint(self):
        topo = rail_topology()
        r0 = set(topo.route(gpu_id(0, 0), gpu_id(1, 0), channel=0))
        r1 = set(topo.route(gpu_id(0, 0), gpu_id(1, 0), channel=1))
        inter_r0 = {link for link in r0 if "rail" in link.dst or "rail" in link.src}
        inter_r1 = {link for link in r1 if "rail" in link.dst or "rail" in link.src}
        assert not inter_r0 & inter_r1

    def test_intra_node_route_stays_on_nvswitch(self):
        topo = rail_topology()
        route = topo.route(gpu_id(2, 0), gpu_id(2, 5), channel=3)
        assert [link.dst for link in route] == ["nvswitch:2", gpu_id(2, 5)]

    def test_rejects_non_gpu_endpoints(self):
        topo = rail_topology()
        with pytest.raises(ConfigError):
            topo.route("nvswitch:0", gpu_id(1, 0))


class TestFatTree:
    def test_same_leaf_skips_spine(self):
        topo = fat_tree_topology()
        route = topo.route(gpu_id(0, 0), gpu_id(1, 0))
        assert not any("spine" in link.dst for link in route)

    def test_cross_leaf_goes_through_spine(self):
        topo = fat_tree_topology()
        route = topo.route(gpu_id(0, 0), gpu_id(4, 0), channel=1)
        assert "spine:1" in [link.dst for link in route]

    def test_oversubscription_shrinks_uplinks(self):
        blocking = fat_tree_topology(ratio=4.0)
        nonblocking = fat_tree_topology(ratio=1.0)
        assert blocking.uplink_bandwidth == pytest.approx(
            nonblocking.uplink_bandwidth / 4.0)

    def test_single_leaf_cluster_has_no_spine(self):
        topo = fat_tree_topology(num_nodes=4, nodes_per_leaf=4)
        assert topo.num_leaves == 1
        assert not any(node.startswith("spine") for node in topo.nodes)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            fat_tree_topology(ratio=0.5)


class TestBuildTopology:
    def test_rail_system(self):
        topo = build_topology(multi_node(4, network="rail"))
        assert isinstance(topo, RailOptimizedTopology)
        assert topo.num_nodes == 4
        assert topo.nics_per_node == 4

    def test_fat_tree_system_carries_ratio(self):
        topo = build_topology(multi_node(8, network="fat-tree:2"))
        assert isinstance(topo, FatTreeTopology)
        assert topo.oversubscription == 2.0

    def test_nic_bandwidth_derived_from_aggregate(self):
        system = multi_node(4, network="rail")
        topo = build_topology(system)
        assert topo.nic_bandwidth == pytest.approx(
            system.effective_internode_bandwidth / system.nics_per_node)

    def test_flat_has_no_graph(self):
        with pytest.raises(ConfigError):
            build_topology(multi_node(4))
