"""Unit tests for the persistent prediction cache."""

import pytest

from repro.config.model import ModelConfig
from repro.config.parallelism import ParallelismConfig, TrainingConfig
from repro.config.system import single_node
from repro.dse.cache import (CACHE_FORMAT_VERSION, PredictionCache,
                             fingerprint)
from repro.dse.explorer import DesignPoint
from repro.errors import ConfigError
from repro.graph.builder import Granularity


@pytest.fixture
def plan():
    return ParallelismConfig(tensor=2, data=2, pipeline=2)


@pytest.fixture
def point(plan):
    return DesignPoint(plan=plan, feasible=True, iteration_time=0.25,
                       utilization=0.4, memory_gib=10.0)


A_TRAINING = TrainingConfig(global_batch_size=16)


def a_key(model, plan, training=A_TRAINING):
    return fingerprint(model, plan, training, single_node(),
                       Granularity.STAGE)


class TestFingerprint:
    def test_deterministic(self, tiny_model, plan):
        assert a_key(tiny_model, plan) == a_key(tiny_model, plan)

    def test_equal_configs_share_keys(self, tiny_model, plan):
        clone = ModelConfig(**tiny_model.to_dict())
        assert a_key(clone, plan) == a_key(tiny_model, plan)

    def test_any_component_changes_the_key(self, tiny_model, plan):
        base = a_key(tiny_model, plan)
        assert a_key(tiny_model.scaled(num_layers=8), plan) != base
        assert a_key(tiny_model, plan.replaced(data=4)) != base
        # The training recipe determines micro-batch scheduling and
        # memory feasibility, so it must be part of the key.
        assert a_key(tiny_model, plan,
                     TrainingConfig(global_batch_size=32)) != base
        assert a_key(tiny_model, plan,
                     TrainingConfig(global_batch_size=16,
                                    total_tokens=1)) != base
        system = single_node()
        assert fingerprint(tiny_model, plan, A_TRAINING,
                           system.with_gpus(16), Granularity.STAGE) != base
        assert fingerprint(tiny_model, plan, A_TRAINING, system,
                           Granularity.OPERATOR) != base


class TestCacheAccounting:
    def test_miss_then_hit(self, tiny_model, plan, point):
        cache = PredictionCache()
        key = a_key(tiny_model, plan)
        assert cache.get(key) is None
        cache.put(key, point)
        assert cache.get(key) == point
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}
        assert key in cache
        assert len(cache) == 1


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, tiny_model, plan, point):
        cache = PredictionCache()
        key = a_key(tiny_model, plan)
        cache.put(key, point)
        infeasible = DesignPoint(plan=plan.replaced(data=8), feasible=False,
                                 infeasible_reason="out of memory")
        other = a_key(tiny_model, plan.replaced(data=8))
        cache.put(other, infeasible)
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = PredictionCache.load(path)
        assert len(loaded) == 2
        assert loaded.get(key) == point
        assert loaded.get(other) == infeasible

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"version": %d, "entries": {}}'
                        % (CACHE_FORMAT_VERSION + 1))
        with pytest.raises(ConfigError):
            PredictionCache.load(path)

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            PredictionCache.load(path)

    def test_merge_counts_new_entries(self, tiny_model, plan, point):
        first = PredictionCache()
        first.put(a_key(tiny_model, plan), point)
        second = PredictionCache()
        second.put(a_key(tiny_model, plan), point)
        second.put(a_key(tiny_model, plan.replaced(data=4)),
                   DesignPoint(plan=plan.replaced(data=4), feasible=False,
                               infeasible_reason="nope"))
        assert first.merge(second) == 1
        assert len(first) == 2


class TestExplorerUsesCache:
    def test_serial_explore_populates_cache(self, tiny_model):
        from repro.dse.explorer import DesignSpaceExplorer
        from repro.dse.space import SearchSpace
        training = TrainingConfig(global_batch_size=8)
        explorer = DesignSpaceExplorer(tiny_model, training)
        cache = PredictionCache()
        space = SearchSpace(max_tensor=2, max_data=2, max_pipeline=2,
                            micro_batch_sizes=(1,))
        result = explorer.explore(max_gpus=4, space=space, cache=cache)
        assert len(cache) == len(result.points)
        assert cache.misses == len(result.points)
        assert cache.hits == 0
