"""Tests for the in-repo schema validator and the checked-in schemas.

The validator (``repro.obs.schema``) implements only the draft-07
subset the artifact schemas use; these tests pin both halves — the
validator's semantics, and that the committed artifacts actually
conform to their published schemas (the same check CI runs via
``benchmarks/validate_artifacts.py``).
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.schema import SchemaError, validate

REPO_ROOT = Path(__file__).parent.parent
SCHEMA_DIR = REPO_ROOT / "schemas"
BENCH_STORE = REPO_ROOT / "benchmarks" / "results" / "BENCH_sim_speed.json"


def load_schema(name: str) -> dict:
    return json.loads((SCHEMA_DIR / name).read_text(encoding="utf-8"))


class TestValidator:
    def test_type_mismatch(self):
        with pytest.raises(SchemaError, match="string"):
            validate(3, {"type": "string"})

    def test_type_list_accepts_any_member(self):
        validate(3, {"type": ["string", "integer"]})
        with pytest.raises(SchemaError):
            validate(None, {"type": ["string", "integer"]})

    def test_bool_is_not_a_number(self):
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})
        with pytest.raises(SchemaError):
            validate(True, {"type": "number"})
        validate(True, {"type": "boolean"})

    def test_required_and_additional_properties(self):
        schema = {"type": "object", "required": ["a"],
                  "additionalProperties": False,
                  "properties": {"a": {"type": "integer"}}}
        validate({"a": 1}, schema)
        with pytest.raises(SchemaError, match="missing required"):
            validate({}, schema)
        with pytest.raises(SchemaError, match="unexpected key"):
            validate({"a": 1, "b": 2}, schema)

    def test_additional_properties_schema(self):
        schema = {"type": "object",
                  "additionalProperties": {"type": "number"}}
        validate({"x": 1.5}, schema)
        with pytest.raises(SchemaError):
            validate({"x": "nope"}, schema)

    def test_enum_minimum_min_items(self):
        with pytest.raises(SchemaError, match="not in"):
            validate(3, {"enum": [1, 2]})
        with pytest.raises(SchemaError, match="below minimum"):
            validate(0.5, {"type": "number", "minimum": 1})
        with pytest.raises(SchemaError, match="minItems"):
            validate([], {"type": "array", "minItems": 1})

    def test_items_validated_with_path(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        validate([1, 2], schema)
        with pytest.raises(SchemaError, match=r"\$\[1\]"):
            validate([1, "x"], schema)

    def test_unsupported_keyword_rejected_loudly(self):
        with pytest.raises(SchemaError, match="unsupported keywords"):
            validate({}, {"patternProperties": {}})

    def test_error_names_nested_path(self):
        schema = {"type": "object",
                  "properties": {"a": {"type": "object",
                                       "properties": {
                                           "b": {"type": "string"}}}}}
        with pytest.raises(SchemaError, match=r"\$\.a\.b"):
            validate({"a": {"b": 3}}, schema)


class TestCommittedArtifacts:
    def test_bench_store_matches_schema(self):
        payload = json.loads(BENCH_STORE.read_text(encoding="utf-8"))
        validate(payload, load_schema("bench_sim_speed.schema.json"))

    def test_bench_schema_rejects_wrong_version(self):
        payload = json.loads(BENCH_STORE.read_text(encoding="utf-8"))
        payload["schema"] = 3
        with pytest.raises(SchemaError):
            validate(payload, load_schema("bench_sim_speed.schema.json"))

    def test_trace_schema_rejects_unknown_phase(self):
        payload = {"traceEvents": [
            {"name": "s", "ph": "B", "pid": 1, "tid": 0}]}
        with pytest.raises(SchemaError):
            validate(payload, load_schema("chrome_trace.schema.json"))


class TestValidateArtifactsScript:
    @pytest.fixture
    def tool(self):
        path = REPO_ROOT / "benchmarks" / "validate_artifacts.py"
        spec = importlib.util.spec_from_file_location(
            "validate_artifacts", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_dispatches_by_payload_shape(self, tool):
        assert tool.schema_for({"traceEvents": []}).name \
            == "chrome_trace.schema.json"
        assert tool.schema_for({"schema": 2, "benchmarks": {}}).name \
            == "bench_sim_speed.schema.json"
        with pytest.raises(SchemaError):
            tool.schema_for({"unrelated": 1})

    def test_main_accepts_committed_store(self, tool, capsys):
        assert tool.main([str(BENCH_STORE)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_main_fails_on_invalid_file(self, tool, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        assert tool.main([str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_main_without_args_prints_usage(self, tool, capsys):
        assert tool.main([]) == 2
