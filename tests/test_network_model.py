"""Tests for the topology-aware drop-in NCCL model and its selection."""

import pytest

from repro import ParallelismConfig, TrainingConfig, VTrain, multi_node
from repro.config.presets import MEGATRON_7_5B
from repro.errors import ConfigError
from repro.hardware.interconnect import LinkType
from repro.network.model import (TopologyAwareNcclModel, nccl_model_for,
                                 place_group)
from repro.network.selection import (CollectiveAlgorithm, select_algorithm,
                                     tree_threshold)
from repro.profiling.nccl import NcclModel

MIB = float(1 << 20)


class TestSelection:
    def test_multi_node_multi_rank_groups_go_hierarchical(self):
        assert select_algorithm(256 * MIB, 32, nodes_spanned=8,
                                ranks_per_node=4) is \
            CollectiveAlgorithm.HIERARCHICAL

    def test_small_payloads_go_tree(self):
        assert select_algorithm(64 * 1024, 8, nodes_spanned=8) is \
            CollectiveAlgorithm.TREE

    def test_large_payloads_go_ring(self):
        assert select_algorithm(256 * MIB, 8, nodes_spanned=8) is \
            CollectiveAlgorithm.RING

    def test_threshold_grows_with_group_size(self):
        assert tree_threshold(64) > tree_threshold(4)

    def test_rejects_degenerate_groups(self):
        with pytest.raises(ConfigError):
            select_algorithm(MIB, 1, nodes_spanned=1)


class TestPlacement:
    def test_one_rank_per_node(self):
        placement = place_group(8, 8)
        assert placement.nodes_spanned == 8
        assert placement.ranks_per_node == 1
        assert placement.node_stride == 1

    def test_group_larger_than_machine_stacks_ranks(self):
        placement = place_group(32, 8)
        assert placement.nodes_spanned == 8
        assert placement.ranks_per_node == 4

    def test_indivisible_group_is_not_padded(self):
        """Regression: 8 ranks over 3 nodes must cost exactly 8 members
        (3+3+2, ragged), not a padded 9."""
        placement = place_group(8, 3)
        assert len(placement.members()) == 8
        slots = placement.node_slots()
        assert [len(s) for s in slots] == [3, 3, 2]
        assert len({gpu for node in slots for gpu in node}) == 8

    def test_small_group_strides_across_machine(self):
        """A DP group of 4 on a 16-node job strides 4 nodes apart, the
        way the 3D rank mapping places it."""
        placement = place_group(4, 16)
        assert placement.nodes_spanned == 4
        assert placement.node_stride == 4
        assert [placement.node_of(i) for i in range(4)] == [0, 4, 8, 12]

    def test_node_slots_shape(self):
        slots = place_group(16, 4).node_slots()
        assert len(slots) == 4
        assert all(len(s) == 4 for s in slots)


class TestModelFactory:
    def test_flat_returns_plain_nccl_model(self):
        model = nccl_model_for(multi_node(4))
        assert type(model) is NcclModel

    def test_rail_returns_topology_model(self):
        model = nccl_model_for(multi_node(4, network="rail"))
        assert isinstance(model, TopologyAwareNcclModel)
        assert model.topology.name == "rail"

    def test_flat_system_has_no_topology_model(self):
        with pytest.raises(ConfigError):
            TopologyAwareNcclModel(multi_node(4))


class TestTopologyAwareModel:
    @pytest.fixture
    def rail_model(self):
        return TopologyAwareNcclModel(multi_node(8, network="rail"))

    @pytest.fixture
    def flat_model(self):
        return NcclModel(multi_node(8))

    def test_intra_node_table_is_bit_identical_to_flat(self, rail_model,
                                                       flat_model):
        """The profiled NVLink table is untouched by topology — the
        single-node (hierarchical) case IS the ring table."""
        for size in (MIB, 16 * MIB, 700 * MIB):
            for group in (2, 4, 8):
                assert rail_model.allreduce_time(
                    size, group, LinkType.INTRA_NODE) == \
                    flat_model.allreduce_time(size, group,
                                              LinkType.INTRA_NODE)
        assert rail_model.profile_table(8) == flat_model.profile_table(8)

    def test_inter_node_differs_from_flat(self, rail_model, flat_model):
        rail = rail_model.allreduce_time(256 * MIB, 8, LinkType.INTER_NODE)
        flat = flat_model.allreduce_time(256 * MIB, 8, LinkType.INTER_NODE)
        assert rail != flat
        assert rail == pytest.approx(flat, rel=0.1)  # same aggregate pipe

    def test_oversubscribed_fat_tree_is_slowest(self):
        size, group = 256 * MIB, 32
        times = {}
        for network in ("rail", "fat-tree", "fat-tree:8"):
            model = TopologyAwareNcclModel(multi_node(8, network=network))
            times[network] = model.allreduce_time(size, group,
                                                  LinkType.INTER_NODE)
        assert times["rail"] <= times["fat-tree"] < times["fat-tree:8"]

    def test_sendrecv_rides_one_rail(self, rail_model):
        system = rail_model.system
        time = rail_model.sendrecv_time(64 * MIB, LinkType.INTER_NODE)
        assert time > 64 * MIB / system.nic_bandwidth

    def test_allgather_with_colocated_ranks_tracks_flat(self):
        """Regression: the ring order must keep co-located members
        adjacent — a 16-rank group on 2 nodes crosses the fabric twice,
        not on every hop, so the rail all-gather stays near the flat
        aggregate pipe and below a same-size all-reduce."""
        rail = TopologyAwareNcclModel(multi_node(2, network="rail"))
        flat = NcclModel(multi_node(2))
        size = 256 * MIB
        rail_ag = rail.allgather_time(size, 16, LinkType.INTER_NODE)
        flat_ag = flat.allgather_time(size, 16, LinkType.INTER_NODE)
        assert rail_ag == pytest.approx(flat_ag, rel=0.1)
        assert rail_ag < rail.allreduce_time(size, 16, LinkType.INTER_NODE)

    def test_network_string_canonicalized_on_construction(self):
        system = multi_node(2, network="fat-tree:1")
        assert system.network == "fat-tree"
        assert multi_node(2, network="fat-tree:4.0").network == "fat-tree:4"

    def test_allgather_half_of_ring_allreduce(self, rail_model):
        size = 512 * MIB  # large enough that selection picks ring
        ar = rail_model.allreduce_time(size, 8, LinkType.INTER_NODE)
        ag = rail_model.allgather_time(size, 8, LinkType.INTER_NODE)
        assert ag == pytest.approx(ar / 2)
        assert rail_model.reduce_scatter_time(size, 8,
                                              LinkType.INTER_NODE) == ag

    def test_explain_reports_selection(self, rail_model):
        info = rail_model.explain(256 * MIB, 32)
        assert info["algorithm"] == "hierarchical"
        assert info["topology"] == "rail"
        assert info["time"] > 0

    def test_explain_handles_degenerate_cases(self, rail_model):
        """Regression: explain() must not crash where allreduce_time
        falls back to the base model."""
        assert rail_model.explain(MIB, 1)["algorithm"] == "flat-fallback"

    def test_interference_scales_hierarchical_intra_phases(self):
        system = multi_node(8, network="rail")
        quiet = TopologyAwareNcclModel(system)
        noisy = TopologyAwareNcclModel(system, interference=1.3)
        assert noisy.allreduce_time(256 * MIB, 32, LinkType.INTER_NODE) > \
            quiet.allreduce_time(256 * MIB, 32, LinkType.INTER_NODE)


class TestVTrainIntegration:
    PLAN = ParallelismConfig(tensor=8, data=4, pipeline=2, micro_batch_size=2)
    TRAINING = TrainingConfig(global_batch_size=64)

    def test_flat_default_is_bit_identical_to_explicit_model(self):
        """`network="flat"` must reproduce pre-topology predictions
        exactly (the acceptance criterion protecting old caches)."""
        system = multi_node(8)
        default = VTrain(system).predict(MEGATRON_7_5B, self.PLAN,
                                         self.TRAINING)
        explicit = VTrain(system, nccl=NcclModel(system)).predict(
            MEGATRON_7_5B, self.PLAN, self.TRAINING)
        assert default.iteration_time == explicit.iteration_time

    def test_topology_networks_produce_differing_predictions(self):
        times = {}
        for network in ("flat", "rail", "fat-tree:4"):
            vtrain = VTrain(multi_node(8, network=network))
            times[network] = vtrain.predict(
                MEGATRON_7_5B, self.PLAN, self.TRAINING).iteration_time
        assert len(set(times.values())) == 3
        for time in times.values():  # same cluster, same order of magnitude
            assert time == pytest.approx(times["flat"], rel=0.2)
