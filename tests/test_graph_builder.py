"""Unit and structural tests for the execution-graph builder.

These tests verify the paper's graph-construction semantics: operator
counts, communication-operator insertion (Figures 5, 6), pipeline
dependencies (Figure 8), gradient-bucketing edges, and the exactness of
granularity aggregation.
"""

import pytest

from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode)
from repro.config.system import multi_node, single_node
from repro.errors import ConfigError
from repro.graph.builder import Granularity, GraphBuilder
from repro.graph.structure import (KIND_DP_COMM, KIND_PP_COMM,
                                   KIND_TP_COMM, KIND_WEIGHT_UPDATE)
from repro.profiling.cupti import CuptiTracer
from repro.profiling.lookup import OperatorToTaskTable
from repro.profiling.nccl import NcclModel
from repro.hardware.kernels import DeviceModel
from repro.sim.engine import simulate


def build(model, plan, training, system=None,
          granularity=Granularity.OPERATOR):
    system = system or single_node()
    device = DeviceModel(system.gpu)
    lookup = OperatorToTaskTable(CuptiTracer(device))
    builder = GraphBuilder(model, system, plan, training, lookup,
                           NcclModel(system), granularity)
    return builder.build()


class TestStructure:
    def test_acyclic(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        graph = build(tiny_model, plan, training)
        graph.validate_acyclic()

    def test_num_devices_equals_pipeline_depth(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=4)
        graph = build(tiny_model, plan, training)
        assert graph.num_devices == 4

    def test_weight_update_per_stage(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=1, pipeline=4)
        graph = build(tiny_model, plan, training)
        updates = [n for n in graph.nodes if n.kind == KIND_WEIGHT_UPDATE]
        assert len(updates) == 4
        assert {n.device for n in updates} == {0, 1, 2, 3}

    def test_plan_exceeding_system_rejected(self, tiny_model, training):
        plan = ParallelismConfig(tensor=8, data=2, pipeline=1)
        with pytest.raises(ConfigError):
            build(tiny_model, plan, training, system=single_node())


class TestTensorParallelComm:
    def test_tp_allreduce_count(self, tiny_model, training):
        """2 ARs per layer per direction + 1 after the embedding, per
        micro-batch (Figure 6)."""
        plan = ParallelismConfig(tensor=2, data=1, pipeline=1,
                                 micro_batch_size=4)
        graph = build(tiny_model, plan, training)
        nmb = 16 // 4
        ars = [n for n in graph.nodes if n.kind == KIND_TP_COMM]
        expected = nmb * (4 * tiny_model.num_layers + 1)
        assert len(ars) == expected

    def test_no_tp_comm_when_t_is_1(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1)
        graph = build(tiny_model, plan, training)
        assert not [n for n in graph.nodes if n.kind == KIND_TP_COMM]

    def test_tp_allreduce_is_sequential_dependency(self, tiny_model, training):
        """TP All-Reduce lives on the compute stream (Figure 6: it blocks
        the next block's compute)."""
        plan = ParallelismConfig(tensor=2, data=1, pipeline=1)
        graph = build(tiny_model, plan, training)
        for node in graph.nodes:
            if node.kind == KIND_TP_COMM:
                assert node.stream == "compute"


class TestDataParallelComm:
    def test_bucket_count(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1,
                                 num_gradient_buckets=4)
        graph = build(tiny_model, plan, training)
        ars = [n for n in graph.nodes if n.kind == KIND_DP_COMM]
        assert len(ars) == 4  # min(4 buckets, 4 layers)

    def test_bucketing_disabled_single_allreduce(self, tiny_model, training):
        """Figure 5(b): one All-Reduce at the very end of backward."""
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1,
                                 gradient_bucketing=False)
        graph = build(tiny_model, plan, training)
        ars = [n for n in graph.nodes if n.kind == KIND_DP_COMM]
        assert len(ars) == 1

    def test_no_dp_comm_when_d_is_1(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=1, pipeline=2)
        graph = build(tiny_model, plan, training)
        assert not [n for n in graph.nodes if n.kind == KIND_DP_COMM]

    def test_dp_allreduce_on_comm_stream(self, tiny_model, training):
        """Figure 5(a): bucket All-Reduces overlap backward compute."""
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1)
        graph = build(tiny_model, plan, training)
        for node in graph.nodes:
            if node.kind == KIND_DP_COMM:
                assert node.stream == "comm"

    def test_bucket_sizes_sum_to_stage_gradients(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1,
                                 num_gradient_buckets=3)
        system = single_node()
        device = DeviceModel(system.gpu)
        lookup = OperatorToTaskTable(CuptiTracer(device))
        builder = GraphBuilder(tiny_model, system, plan, training, lookup,
                               NcclModel(system))
        total = sum(builder._bucket_bytes(0, k)
                    for k in range(len(builder.bucket_layers)))
        expected = 2.0 * builder.stage_params[0]
        assert total == pytest.approx(expected)


class TestPipelineComm:
    def test_send_recv_count(self, tiny_model, training):
        """2 x (p-1) x NMB Send-Receives (forward + backward)."""
        plan = ParallelismConfig(tensor=1, data=1, pipeline=4,
                                 micro_batch_size=4)
        graph = build(tiny_model, plan, training)
        nmb = 4
        sends = [n for n in graph.nodes if n.kind == KIND_PP_COMM]
        assert len(sends) == 2 * 3 * nmb

    def test_no_pp_comm_single_stage(self, tiny_model, training):
        plan = ParallelismConfig(tensor=1, data=2, pipeline=1)
        graph = build(tiny_model, plan, training)
        assert not [n for n in graph.nodes if n.kind == KIND_PP_COMM]


class TestGranularityConsistency:
    """Coarser graphs must predict the same iteration time: operator
    durations are exact sums of their kernels (single-stream execution)."""

    @pytest.mark.parametrize("plan", [
        ParallelismConfig(tensor=2, data=2, pipeline=2, micro_batch_size=2),
        ParallelismConfig(tensor=1, data=1, pipeline=4, micro_batch_size=1),
        ParallelismConfig(tensor=4, data=2, pipeline=1, micro_batch_size=4,
                          schedule=PipelineSchedule.GPIPE),
    ])
    def test_kernel_vs_operator_identical(self, tiny_model, training, plan):
        op_time = simulate(build(tiny_model, plan, training,
                                 granularity=Granularity.OPERATOR)).iteration_time
        kernel_time = simulate(build(tiny_model, plan, training,
                                     granularity=Granularity.KERNEL)).iteration_time
        assert kernel_time == pytest.approx(op_time, rel=1e-9)

    def test_stage_close_to_operator(self, tiny_model, training):
        """Stage granularity is an aggregation, not an approximation of
        compute; only comm-overlap timing differs slightly."""
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=2)
        op_time = simulate(build(tiny_model, plan, training,
                                 granularity=Granularity.OPERATOR)).iteration_time
        stage_time = simulate(build(tiny_model, plan, training,
                                    granularity=Granularity.STAGE)).iteration_time
        assert stage_time == pytest.approx(op_time, rel=0.05)

    def test_stage_granularity_much_smaller(self, tiny_model, training):
        plan = ParallelismConfig(tensor=2, data=2, pipeline=2,
                                 micro_batch_size=1)
        op_graph = build(tiny_model, plan, training,
                         granularity=Granularity.OPERATOR)
        stage_graph = build(tiny_model, plan, training,
                            granularity=Granularity.STAGE)
        assert len(stage_graph) < len(op_graph) / 3


class TestRecompute:
    def test_full_recompute_slower_than_selective(self, tiny_model, training):
        base = dict(tensor=1, data=1, pipeline=1, micro_batch_size=2)
        fast = simulate(build(
            tiny_model,
            ParallelismConfig(recompute=RecomputeMode.SELECTIVE, **base),
            training)).iteration_time
        slow = simulate(build(
            tiny_model,
            ParallelismConfig(recompute=RecomputeMode.FULL, **base),
            training)).iteration_time
        assert slow > fast

    def test_none_recompute_fastest(self, tiny_model, training):
        base = dict(tensor=1, data=1, pipeline=1, micro_batch_size=2)
        none = simulate(build(
            tiny_model, ParallelismConfig(recompute=RecomputeMode.NONE, **base),
            training)).iteration_time
        selective = simulate(build(
            tiny_model,
            ParallelismConfig(recompute=RecomputeMode.SELECTIVE, **base),
            training)).iteration_time
        assert none < selective


class TestMultiNode:
    def test_internode_pipeline_hops_slower(self, small_model, training):
        """A pipeline crossing node boundaries pays InfiniBand latency."""
        plan = ParallelismConfig(tensor=8, data=1, pipeline=2)
        intra = simulate(build(small_model,
                               ParallelismConfig(tensor=2, data=1, pipeline=2),
                               training)).iteration_time
        inter_graph = build(small_model, plan, training,
                            system=multi_node(2))
        # Just verifying the build succeeds and produces inter-node sends.
        sends = [n for n in inter_graph.nodes if n.kind == KIND_PP_COMM]
        assert sends and intra > 0
