"""to_dict/from_dict round-trips for every config type.

The parallel sweep engine ships configs to worker processes and persists
predictions to JSON caches, so each config type must round-trip exactly
(including through a strict-JSON encode/decode cycle).
"""

import json

import pytest

from repro.config.model import ModelConfig
from repro.config.parallelism import (ParallelismConfig, PipelineSchedule,
                                      RecomputeMode, TrainingConfig)
from repro.config.system import SystemConfig
from repro.dse.explorer import DesignPoint
from repro.errors import ConfigError
from repro.hardware.gpu import H100_80GB


def json_cycle(payload):
    """Force a strict-JSON encode/decode, as a cache file would."""
    return json.loads(json.dumps(payload))


class TestModelConfig:
    def test_round_trip(self, tiny_model):
        payload = json_cycle(tiny_model.to_dict())
        assert ModelConfig.from_dict(payload) == tiny_model

    def test_bad_field_raises(self):
        with pytest.raises(ConfigError):
            ModelConfig.from_dict({"hidden_size": 64, "bogus": 1})


class TestParallelismConfig:
    def test_round_trip(self):
        plan = ParallelismConfig(tensor=2, data=4, pipeline=2,
                                 micro_batch_size=2,
                                 schedule=PipelineSchedule.GPIPE,
                                 gradient_bucketing=False,
                                 num_gradient_buckets=2,
                                 recompute=RecomputeMode.FULL,
                                 sequence_parallel=True)
        payload = json_cycle(plan.to_dict())
        assert payload["schedule"] == "gpipe"
        assert payload["recompute"] == "full"
        assert ParallelismConfig.from_dict(payload) == plan

    def test_enum_defaults_fill_in(self):
        plan = ParallelismConfig.from_dict({"tensor": 1, "data": 2,
                                            "pipeline": 1})
        assert plan.schedule is PipelineSchedule.ONE_F_ONE_B
        assert plan.recompute is RecomputeMode.SELECTIVE

    def test_bad_enum_raises(self):
        with pytest.raises(ConfigError):
            ParallelismConfig.from_dict({"tensor": 1, "data": 1,
                                         "pipeline": 1,
                                         "schedule": "round-robin"})


class TestTrainingConfig:
    def test_round_trip(self, training):
        payload = json_cycle(training.to_dict())
        assert TrainingConfig.from_dict(payload) == training

    def test_bad_field_raises(self):
        with pytest.raises(ConfigError):
            TrainingConfig.from_dict({"batch": 16})


class TestSystemConfig:
    def test_round_trip(self, cluster_system):
        payload = json_cycle(cluster_system.to_dict())
        assert SystemConfig.from_dict(payload) == cluster_system

    def test_gpu_stored_by_name(self):
        system = SystemConfig(num_gpus=8, gpu=H100_80GB)
        payload = json_cycle(system.to_dict())
        assert payload["gpu"] == H100_80GB.name
        assert SystemConfig.from_dict(payload).gpu is H100_80GB

    def test_unknown_gpu_raises(self, node_system):
        payload = node_system.to_dict()
        payload["gpu"] = "TPU-v9"
        with pytest.raises(ConfigError):
            SystemConfig.from_dict(payload)


class TestDesignPoint:
    def test_feasible_round_trip(self):
        point = DesignPoint(plan=ParallelismConfig(tensor=2, data=2,
                                                   pipeline=2),
                            feasible=True, iteration_time=0.125,
                            utilization=0.5, memory_gib=12.5)
        payload = json_cycle(point.to_dict())
        assert DesignPoint.from_dict(payload) == point

    def test_infeasible_round_trip_keeps_infinite_time(self):
        point = DesignPoint(plan=ParallelismConfig(tensor=1, data=1,
                                                   pipeline=1),
                            feasible=False, infeasible_reason="too big")
        payload = json_cycle(point.to_dict())
        assert payload["iteration_time"] is None  # strict JSON, no Infinity
        restored = DesignPoint.from_dict(payload)
        assert restored == point
        assert restored.iteration_time == float("inf")

    def test_missing_plan_raises(self):
        with pytest.raises(ConfigError):
            DesignPoint.from_dict({"feasible": True})
